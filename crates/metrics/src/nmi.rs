//! Normalized mutual information between two partitions.
//!
//! Not reported in the paper; included as an independent qualitative check
//! alongside Table 3's pair-counting metrics (standard practice in the
//! community-detection literature the paper cites, e.g. Fortunato \[1\]).
//! Normalization: `NMI = 2·I(S;P) / (H(S) + H(P))`, which is 1 for identical
//! partitions (up to label renaming) and 0 for independent ones.

use rustc_hash::FxHashMap;

/// Computes NMI between two equally sized label vectors.
///
/// Degenerate cases: if both partitions are single-cluster (zero entropy),
/// they are identical up to renaming → 1.0; if exactly one has zero entropy,
/// → 0.0.
pub fn normalized_mutual_information(a: &[u32], b: &[u32]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "partitions must cover the same vertex set"
    );
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let nf = n as f64;

    let mut counts_a: FxHashMap<u32, u64> = FxHashMap::default();
    let mut counts_b: FxHashMap<u32, u64> = FxHashMap::default();
    let mut joint: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    for i in 0..n {
        *counts_a.entry(a[i]).or_insert(0) += 1;
        *counts_b.entry(b[i]).or_insert(0) += 1;
        *joint.entry((a[i], b[i])).or_insert(0) += 1;
    }

    let entropy = |counts: &FxHashMap<u32, u64>| -> f64 {
        counts
            .values()
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let h_a = entropy(&counts_a);
    let h_b = entropy(&counts_b);

    if h_a == 0.0 && h_b == 0.0 {
        return 1.0;
    }
    if h_a == 0.0 || h_b == 0.0 {
        return 0.0;
    }

    let mut mi = 0.0;
    for (&(la, lb), &c) in &joint {
        let p_joint = c as f64 / nf;
        let p_a = counts_a[&la] as f64 / nf;
        let p_b = counts_b[&lb] as f64 / nf;
        mi += p_joint * (p_joint / (p_a * p_b)).ln();
    }

    (2.0 * mi / (h_a + h_b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_give_one() {
        let p = vec![0, 0, 1, 1, 2, 2];
        assert!((normalized_mutual_information(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeled_partitions_give_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![7, 7, 3, 3];
        assert!((normalized_mutual_information(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_give_near_zero() {
        // b splits orthogonally to a.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        assert!(normalized_mutual_information(&a, &b) < 1e-12);
    }

    #[test]
    fn partial_agreement_in_between() {
        let a = vec![0, 0, 0, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 1, 1];
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi > 0.2 && nmi < 0.95, "nmi = {nmi}");
    }

    #[test]
    fn degenerate_single_cluster() {
        let one = vec![0, 0, 0];
        let split = vec![0, 1, 2];
        assert_eq!(normalized_mutual_information(&one, &one), 1.0);
        assert_eq!(normalized_mutual_information(&one, &split), 0.0);
        assert_eq!(normalized_mutual_information(&split, &one), 0.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
    }

    #[test]
    fn symmetric() {
        let a = vec![0, 0, 1, 1, 2, 0, 1];
        let b = vec![1, 1, 1, 0, 0, 2, 2];
        let ab = normalized_mutual_information(&a, &b);
        let ba = normalized_mutual_information(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
    }
}
