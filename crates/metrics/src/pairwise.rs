//! Pairwise partition comparison (§6.2.3, Table 3).
//!
//! Vertex pairs `(u, v)` are binned as:
//! * **TP** — same community in both partitions;
//! * **FP** — same community only in the candidate partition `P`;
//! * **FN** — same community only in the benchmark partition `S`;
//! * **TN** — different communities in both.
//!
//! From these: `SP = TP/(TP+FP)`, `SE = TP/(TP+FN)`,
//! `OQ = TP/(TP+FP+FN)`, `Rand = (TP+TN)/(all pairs)`.
//!
//! The paper evaluates these "only for two of the inputs — CNR and MG1"
//! because its implementation enumerates all Θ(n²) pairs. The counts are
//! computable exactly from the contingency table of community-intersection
//! sizes: `TP = Σ_ij C(n_ij, 2)`, `TP+FN = Σ_i C(|S_i|, 2)`,
//! `TP+FP = Σ_j C(|P_j|, 2)` — reducing the cost to sort+scan and removing
//! the paper's scalability caveat.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Pair-counting comparison result.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairwiseMetrics {
    /// Pairs co-clustered in both partitions.
    pub true_positives: u128,
    /// Pairs co-clustered only in the candidate.
    pub false_positives: u128,
    /// Pairs co-clustered only in the benchmark.
    pub false_negatives: u128,
    /// Pairs separated in both.
    pub true_negatives: u128,
}

impl PairwiseMetrics {
    /// Specificity `TP / (TP + FP)`; 1.0 when the candidate proposes no
    /// pairs at all (vacuously specific).
    pub fn specificity(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives,
        )
    }

    /// Sensitivity `TP / (TP + FN)`; 1.0 when the benchmark has no pairs.
    pub fn sensitivity(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_negatives,
        )
    }

    /// Overlap quality `TP / (TP + FP + FN)`.
    pub fn overlap_quality(&self) -> f64 {
        ratio(
            self.true_positives,
            self.true_positives + self.false_positives + self.false_negatives,
        )
    }

    /// Rand index `(TP + TN) / (TP + FP + FN + TN)`.
    pub fn rand_index(&self) -> f64 {
        ratio(
            self.true_positives + self.true_negatives,
            self.total_pairs(),
        )
    }

    /// All vertex pairs `C(n, 2)`.
    pub fn total_pairs(&self) -> u128 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// Adjusted Rand index (Hubert–Arabie): the Rand index corrected for
    /// chance, 1 for identical partitions, ≈0 for independent ones. Not in
    /// the paper's Table 3; included because the raw Rand index saturates
    /// near 1 on many-small-community partitions (visible in Table 3's
    /// 99–100 % column) while ARI stays discriminative.
    pub fn adjusted_rand_index(&self) -> f64 {
        let tp = self.true_positives as f64;
        let fp = self.false_positives as f64;
        let fn_ = self.false_negatives as f64;
        let total = self.total_pairs() as f64;
        if total == 0.0 {
            return 1.0;
        }
        let sum_a = tp + fn_; // Σ C(|S_i|,2)
        let sum_b = tp + fp; // Σ C(|P_j|,2)
        let expected = sum_a * sum_b / total;
        let max = 0.5 * (sum_a + sum_b);
        if (max - expected).abs() < 1e-12 {
            return 1.0; // degenerate: both partitions trivial
        }
        (tp - expected) / (max - expected)
    }
}

fn ratio(num: u128, den: u128) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

fn choose2(x: u128) -> u128 {
    x * x.saturating_sub(1) / 2
}

/// Exact pairwise comparison via the contingency table.
///
/// `benchmark` plays the paper's role of `S` (the serial output), `candidate`
/// the role of `P` (the parallel output). Both must have the same length.
pub fn pairwise_comparison(benchmark: &[u32], candidate: &[u32]) -> PairwiseMetrics {
    assert_eq!(
        benchmark.len(),
        candidate.len(),
        "partitions must cover the same vertex set"
    );
    let n = benchmark.len();

    // Intersection sizes via sort of (s, p) label pairs.
    let mut pairs: Vec<(u32, u32)> = benchmark
        .par_iter()
        .zip(candidate.par_iter())
        .map(|(&s, &p)| (s, p))
        .collect();
    pairs.par_sort_unstable();

    let mut tp: u128 = 0;
    let mut idx = 0;
    while idx < pairs.len() {
        let key = pairs[idx];
        let mut run = 0u128;
        while idx < pairs.len() && pairs[idx] == key {
            run += 1;
            idx += 1;
        }
        tp += choose2(run);
    }

    let tp_fn: u128 = label_counts(benchmark).into_iter().map(choose2).sum();
    let tp_fp: u128 = label_counts(candidate).into_iter().map(choose2).sum();
    let total = choose2(n as u128);

    let false_negatives = tp_fn - tp;
    let false_positives = tp_fp - tp;
    PairwiseMetrics {
        true_positives: tp,
        false_positives,
        false_negatives,
        true_negatives: total - tp - false_positives - false_negatives,
    }
}

fn label_counts(assignment: &[u32]) -> Vec<u128> {
    let mut sorted: Vec<u32> = assignment.to_vec();
    sorted.par_sort_unstable();
    let mut counts = Vec::new();
    let mut idx = 0;
    while idx < sorted.len() {
        let label = sorted[idx];
        let mut run = 0u128;
        while idx < sorted.len() && sorted[idx] == label {
            run += 1;
            idx += 1;
        }
        counts.push(run);
    }
    counts
}

/// The paper's literal Θ(n²) definition — the correctness oracle for
/// [`pairwise_comparison`]. Only use on small inputs.
pub fn pairwise_comparison_bruteforce(benchmark: &[u32], candidate: &[u32]) -> PairwiseMetrics {
    assert_eq!(benchmark.len(), candidate.len());
    let n = benchmark.len();
    let mut m = PairwiseMetrics {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for u in 0..n {
        for v in u + 1..n {
            let same_s = benchmark[u] == benchmark[v];
            let same_p = candidate[u] == candidate[v];
            match (same_s, same_p) {
                (true, true) => m.true_positives += 1,
                (false, true) => m.false_positives += 1,
                (true, false) => m.false_negatives += 1,
                (false, false) => m.true_negatives += 1,
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identical_partitions_score_perfect() {
        let p = vec![0, 0, 1, 1, 2];
        let m = pairwise_comparison(&p, &p);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.specificity(), 1.0);
        assert_eq!(m.sensitivity(), 1.0);
        assert_eq!(m.overlap_quality(), 1.0);
        assert_eq!(m.rand_index(), 1.0);
    }

    #[test]
    fn label_permutation_is_equivalent() {
        // Renaming community labels must not change any metric.
        let s = vec![0, 0, 1, 1, 2, 2];
        let p = vec![9, 9, 4, 4, 7, 7];
        let m = pairwise_comparison(&s, &p);
        assert_eq!(m.rand_index(), 1.0);
        assert_eq!(m.overlap_quality(), 1.0);
    }

    #[test]
    fn disjoint_vs_merged() {
        // Benchmark: all singletons. Candidate: everything together.
        let s = vec![0, 1, 2, 3];
        let p = vec![0, 0, 0, 0];
        let m = pairwise_comparison(&s, &p);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.false_positives, 6);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.true_negatives, 0);
        assert_eq!(m.specificity(), 0.0);
        assert_eq!(m.sensitivity(), 1.0); // no benchmark pairs to miss
        assert_eq!(m.rand_index(), 0.0);
    }

    #[test]
    fn known_small_example() {
        // S = {0,1},{2,3}; P = {0,1,2},{3}.
        let s = vec![0, 0, 1, 1];
        let p = vec![0, 0, 0, 1];
        let m = pairwise_comparison(&s, &p);
        // Pairs: (01):TP, (02):FP, (03):TN, (12):FP, (13):TN, (23):FN.
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 2);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 2);
        assert!((m.rand_index() - 0.5).abs() < 1e-12);
        assert!((m.overlap_quality() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn matches_bruteforce_on_random_partitions() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..10 {
            let n = 60 + trial * 13;
            let s: Vec<u32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
            let p: Vec<u32> = (0..n).map(|_| rng.gen_range(0..5)).collect();
            let fast = pairwise_comparison(&s, &p);
            let slow = pairwise_comparison_bruteforce(&s, &p);
            assert_eq!(fast, slow, "trial {trial}");
        }
    }

    #[test]
    fn total_pairs_invariant() {
        let s = vec![0, 1, 0, 1, 2, 2, 0];
        let p = vec![1, 1, 1, 0, 0, 2, 2];
        let m = pairwise_comparison(&s, &p);
        assert_eq!(m.total_pairs(), (7 * 6 / 2) as u128);
    }

    #[test]
    fn empty_and_single_vertex() {
        let m = pairwise_comparison(&[], &[]);
        assert_eq!(m.total_pairs(), 0);
        assert_eq!(m.rand_index(), 1.0); // vacuous
        let m1 = pairwise_comparison(&[0], &[5]);
        assert_eq!(m1.total_pairs(), 0);
    }

    #[test]
    #[should_panic(expected = "same vertex set")]
    fn mismatched_lengths_panic() {
        pairwise_comparison(&[0, 1], &[0]);
    }

    #[test]
    fn ari_identical_is_one() {
        let p = vec![0, 0, 1, 1, 2];
        assert!((pairwise_comparison(&p, &p).adjusted_rand_index() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_orthogonal_is_worse_than_chance() {
        // Orthogonal split of 4 elements: zero agreement on co-clustered
        // pairs; ARI goes negative (−0.5) while raw Rand sits at 1/3.
        let a = vec![0, 0, 1, 1];
        let b = vec![0, 1, 0, 1];
        let m = pairwise_comparison(&a, &b);
        assert!((m.adjusted_rand_index() + 0.5).abs() < 1e-12);
        assert!(m.adjusted_rand_index() < m.rand_index());
    }

    #[test]
    fn ari_discriminates_where_rand_saturates() {
        // Many small communities: one evicted vertex barely moves Rand but
        // visibly moves ARI.
        let s: Vec<u32> = (0..200).map(|v| v / 2).collect();
        let mut p = s.clone();
        p[0] = 1_000; // fresh singleton label: breaks exactly one pair
        let m = pairwise_comparison(&s, &p);
        assert!(m.rand_index() > 0.9999);
        assert!(m.adjusted_rand_index() < 0.995);
    }

    #[test]
    fn ari_degenerate_single_cluster() {
        let one = vec![0, 0, 0];
        assert_eq!(pairwise_comparison(&one, &one).adjusted_rand_index(), 1.0);
    }

    #[test]
    fn large_input_no_overflow() {
        // 200k vertices in one community each side: C(200k, 2) ≈ 2e10 pairs
        // exceeds u32; u128 arithmetic must hold.
        let s = vec![0u32; 200_000];
        let p = vec![0u32; 200_000];
        let m = pairwise_comparison(&s, &p);
        assert_eq!(m.true_positives, 200_000u128 * 199_999 / 2);
        assert_eq!(m.rand_index(), 1.0);
    }
}
