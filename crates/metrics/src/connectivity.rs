//! Connectivity audit for community assignments.
//!
//! Louvain-style local moving can leave a community **internally
//! disconnected**: its induced subgraph falls apart into two or more
//! components that are only held together by paths through other
//! communities (the flaw Leiden-style refinement repairs). This module
//! measures that pathology directly on a `(graph, assignment)` pair:
//!
//! * the number and fraction of internally disconnected communities
//!   (component count of each induced subgraph, via per-community BFS), and
//! * each community's **internal conductance** — the minimum conductance
//!   over the BFS sweep cuts of its induced subgraph. A disconnected
//!   community scores exactly 0 (the component boundary is a zero-crossing
//!   cut the sweep always finds); for connected communities the sweep
//!   minimum is an *upper bound* on the true minimum conductance (exact
//!   minimization is intractable), which is the standard proxy for "weakly
//!   connected".
//!
//! Everything here is read-only and deterministic: communities are audited
//! in parallel, but each per-community result is a pure function of the
//! input and the reduction (min / sum) is order-independent.

use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;
use serde::Serialize;

/// Audit result for one community with at least one member.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct CommunityConnectivity {
    /// The community's label in the input assignment.
    pub community: u32,
    /// Member count.
    pub size: usize,
    /// Connected components of the induced subgraph (1 = internally
    /// connected; edgeless multi-vertex communities report `size`).
    pub components: usize,
    /// Minimum conductance over the BFS sweep cuts of the induced
    /// subgraph: 0 iff internally disconnected, 1 for singletons and
    /// two-vertex communities (no nontrivial cut), otherwise an upper
    /// bound on the true internal conductance in `(0, 1]`.
    pub internal_conductance: f64,
}

/// Whole-assignment audit: the aggregate the CLI's `audit` subcommand and
/// the paper-claims tests consume.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ConnectivityReport {
    /// Non-empty communities in the assignment.
    pub num_communities: usize,
    /// Communities whose induced subgraph has ≥ 2 connected components.
    pub disconnected: usize,
    /// `disconnected / num_communities` (0 for an empty assignment).
    pub disconnected_fraction: f64,
    /// Minimum [`CommunityConnectivity::internal_conductance`] over all
    /// communities with ≥ 3 members (1.0 when there are none). Exactly 0
    /// iff some such community is internally disconnected.
    pub min_internal_conductance: f64,
    /// A community attaining `min_internal_conductance` (the smallest such
    /// label), when any community with ≥ 3 members exists.
    pub worst_community: Option<u32>,
}

/// Audits one community's induced subgraph. `members` must be the
/// ascending list of vertices with `assignment[v] == label`.
fn audit_community(
    g: &CsrGraph,
    assignment: &[u32],
    label: u32,
    members: &[VertexId],
) -> CommunityConnectivity {
    let size = members.len();
    debug_assert!(size > 0);
    if size == 1 {
        return CommunityConnectivity {
            community: label,
            size,
            components: 1,
            internal_conductance: 1.0,
        };
    }

    // Internal degrees (self loops excluded) and the community volume.
    let internal_degree = |v: VertexId| -> f64 {
        g.neighbors(v)
            .filter(|&(u, _)| u != v && assignment[u as usize] == label)
            .map(|(_, w)| w)
            .sum()
    };
    let d_int: Vec<f64> = members.iter().map(|&v| internal_degree(v)).collect();
    let vol: f64 = d_int.iter().sum();

    // BFS over the induced subgraph, seeding components in ascending
    // vertex order; `order` is the sweep ordering, `rank[local]` marks
    // swept members.
    let local_of = |v: VertexId| members.binary_search(&v).expect("member lookup");
    let mut rank: Vec<usize> = vec![usize::MAX; size];
    let mut order: Vec<VertexId> = Vec::with_capacity(size);
    let mut components = 0usize;
    for seed_local in 0..size {
        if rank[seed_local] != usize::MAX {
            continue;
        }
        components += 1;
        rank[seed_local] = order.len();
        order.push(members[seed_local]);
        let mut head = order.len() - 1;
        while head < order.len() {
            let x = order[head];
            head += 1;
            for &u in g.neighbor_ids(x) {
                if u == x || assignment[u as usize] != label {
                    continue;
                }
                let lu = local_of(u);
                if rank[lu] == usize::MAX {
                    rank[lu] = order.len();
                    order.push(u);
                }
            }
        }
    }

    // Sweep cuts over the BFS order: after sweeping prefix S, the cut
    // weight is Σ_{v∈S} d_int(v) − 2·w(S, S) — maintained incrementally as
    // each vertex brings in d_int(v) new boundary weight and retires
    // 2·w(v, swept prefix). cut ≤ min(vol(S), vol − vol(S)) always, so a
    // zero denominator forces a zero cut: report 0 (the disconnected /
    // internally-isolated case).
    let mut min_cond = 1.0f64;
    let mut cut = 0.0f64;
    let mut vol_s = 0.0f64;
    for (idx, &v) in order.iter().enumerate().take(size - 1) {
        let dv = d_int[local_of(v)];
        let w_back: f64 = g
            .neighbors(v)
            .filter(|&(u, _)| u != v && assignment[u as usize] == label && rank[local_of(u)] < idx)
            .map(|(_, w)| w)
            .sum();
        cut += dv - 2.0 * w_back;
        vol_s += dv;
        let denom = vol_s.min(vol - vol_s);
        let cond = if denom > 0.0 { cut / denom } else { 0.0 };
        if cond < min_cond {
            min_cond = cond;
        }
    }
    if components > 1 {
        // The sweep finds a zero cut at each component boundary; make the
        // invariant explicit even under float noise.
        min_cond = 0.0;
    }
    CommunityConnectivity {
        community: label,
        size,
        components,
        internal_conductance: min_cond,
    }
}

/// Audits every non-empty community of `assignment` on `g`.
///
/// Labels may be sparse (any `u32` values); each distinct label is one
/// community. Panics if `assignment.len() != g.num_vertices()`.
pub fn audit_communities(g: &CsrGraph, assignment: &[u32]) -> Vec<CommunityConnectivity> {
    assert_eq!(
        assignment.len(),
        g.num_vertices(),
        "assignment length must match vertex count"
    );
    // Group members by label: sort (label, vertex) pairs — members come out
    // ascending within each community, labels ascending across them.
    let mut pairs: Vec<(u32, VertexId)> = assignment
        .iter()
        .enumerate()
        .map(|(v, &c)| (c, v as VertexId))
        .collect();
    pairs.par_sort_unstable();
    let mut groups: Vec<(u32, Vec<VertexId>)> = Vec::new();
    for (c, v) in pairs {
        match groups.last_mut() {
            Some((label, members)) if *label == c => members.push(v),
            _ => groups.push((c, vec![v])),
        }
    }
    groups
        .par_iter()
        .map(|(label, members)| audit_community(g, assignment, *label, members))
        .collect()
}

/// The aggregate connectivity report over all communities — see
/// [`ConnectivityReport`].
pub fn connectivity_report(g: &CsrGraph, assignment: &[u32]) -> ConnectivityReport {
    let per_community = audit_communities(g, assignment);
    summarize(&per_community)
}

/// Aggregates per-community audits into a [`ConnectivityReport`].
pub fn summarize(per_community: &[CommunityConnectivity]) -> ConnectivityReport {
    let num_communities = per_community.len();
    let disconnected = per_community.iter().filter(|c| c.components > 1).count();
    let mut min_cond = 1.0f64;
    let mut worst: Option<u32> = None;
    for c in per_community {
        // Size ≤ 2 communities are trivially cohesive; they would pin the
        // minimum at 1.0 without saying anything about cut structure.
        if c.size >= 3 && (worst.is_none() || c.internal_conductance < min_cond) {
            min_cond = c.internal_conductance;
            worst = Some(c.community);
        }
    }
    ConnectivityReport {
        num_communities,
        disconnected,
        disconnected_fraction: if num_communities == 0 {
            0.0
        } else {
            disconnected as f64 / num_communities as f64
        },
        min_internal_conductance: min_cond,
        worst_community: worst,
    }
}

/// Per-level audit of a dendrogram: one [`ConnectivityReport`] per level,
/// where `levels` yields each level's assignment **flattened to the
/// original graph's vertices** (e.g. `Dendrogram::flatten_to_level`),
/// coarsest last.
pub fn dendrogram_report<'a>(
    g: &CsrGraph,
    levels: impl IntoIterator<Item = &'a [u32]>,
) -> Vec<ConnectivityReport> {
    levels
        .into_iter()
        .map(|assignment| connectivity_report(g, assignment))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::from_unweighted_edges;

    #[test]
    fn connected_communities_report_clean() {
        // Two triangles joined by one edge, labeled as two communities.
        let g = from_unweighted_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let assignment = vec![0, 0, 0, 1, 1, 1];
        let report = connectivity_report(&g, &assignment);
        assert_eq!(report.num_communities, 2);
        assert_eq!(report.disconnected, 0);
        assert_eq!(report.disconnected_fraction, 0.0);
        // A triangle's worst sweep cut separates one vertex: cut 2 over
        // min-volume 2 → conductance 1.
        assert_eq!(report.min_internal_conductance, 1.0);
    }

    #[test]
    fn disconnected_community_scores_zero() {
        // Community 0 is two separate edges bridged only through community 1.
        let g = from_unweighted_edges(5, [(0, 1), (3, 4), (1, 2), (2, 3)]).unwrap();
        let assignment = vec![0, 0, 1, 0, 0];
        let audits = audit_communities(&g, &assignment);
        let c0 = audits.iter().find(|c| c.community == 0).unwrap();
        assert_eq!(c0.components, 2);
        assert_eq!(c0.internal_conductance, 0.0);
        let report = summarize(&audits);
        assert_eq!(report.disconnected, 1);
        assert!((report.disconnected_fraction - 0.5).abs() < 1e-12);
        assert_eq!(report.min_internal_conductance, 0.0);
        assert_eq!(report.worst_community, Some(0));
    }

    #[test]
    fn weak_bridge_lowers_conductance() {
        // Two triangles bridged by a single edge, all one community: the
        // sweep finds the bridge cut (1 crossing edge, min side volume 7).
        let g = from_unweighted_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let assignment = vec![0; 6];
        let audits = audit_communities(&g, &assignment);
        assert_eq!(audits.len(), 1);
        assert_eq!(audits[0].components, 1);
        assert!(
            (audits[0].internal_conductance - 1.0 / 7.0).abs() < 1e-12,
            "got {}",
            audits[0].internal_conductance
        );
    }

    #[test]
    fn singletons_and_edgeless_cases() {
        let g = from_unweighted_edges(3, [(0, 1)]).unwrap();
        // Vertex 2 is an isolated singleton; {0,1} is a connected pair.
        let report = connectivity_report(&g, &[0, 0, 1]);
        assert_eq!(report.num_communities, 2);
        assert_eq!(report.disconnected, 0);
        // No community has ≥ 3 members, so the minimum stays at its
        // neutral value with no worst community.
        assert_eq!(report.min_internal_conductance, 1.0);
        assert_eq!(report.worst_community, None);

        // An edgeless multi-vertex community is maximally disconnected.
        let g2 = from_unweighted_edges(4, [(2, 3)]).unwrap();
        let audits = audit_communities(&g2, &[7, 7, 1, 1]);
        let c7 = audits.iter().find(|c| c.community == 7).unwrap();
        assert_eq!(c7.components, 2);
        assert_eq!(c7.internal_conductance, 0.0);
    }

    #[test]
    fn empty_graph_report() {
        let g = from_unweighted_edges(0, std::iter::empty::<(u32, u32)>()).unwrap();
        let report = connectivity_report(&g, &[]);
        assert_eq!(report.num_communities, 0);
        assert_eq!(report.disconnected_fraction, 0.0);
    }

    #[test]
    fn dendrogram_levels_audit_independently() {
        let g = from_unweighted_edges(4, [(0, 1), (2, 3), (1, 2)]).unwrap();
        let fine = vec![0, 0, 1, 1];
        let coarse = vec![0, 0, 0, 0];
        let reports = dendrogram_report(&g, [fine.as_slice(), coarse.as_slice()]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].disconnected, 0);
        assert_eq!(reports[1].num_communities, 1);
        assert_eq!(reports[1].disconnected, 0);
    }
}
