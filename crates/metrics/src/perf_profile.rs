//! Performance profiles (Fig. 10).
//!
//! "The X-axis represents the factor by which a given scheme fares relative
//! to the best performing scheme for that particular input. The Y-axis
//! represents the fraction of problems." Each scheme's curve is the CDF of
//! its ratio-to-best across the input collection; "the closer a heuristic
//! curve is to the Y-axis the more superior its performance".

use serde::{Deserialize, Serialize};

/// Whether larger metric values are better (modularity) or worse (runtime).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Higher values win (e.g. modularity). Ratio = best / value.
    HigherIsBetter,
    /// Lower values win (e.g. runtime). Ratio = value / best.
    LowerIsBetter,
}

/// One scheme's profile curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileCurve {
    /// Scheme name.
    pub name: String,
    /// Sorted ratio-to-best, one entry per input (1.0 = best on that input).
    pub ratios: Vec<f64>,
}

impl ProfileCurve {
    /// Fraction of inputs on which this scheme is within `factor` of the
    /// best scheme.
    pub fn fraction_within(&self, factor: f64) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        let count = self.ratios.iter().filter(|&&r| r <= factor).count();
        count as f64 / self.ratios.len() as f64
    }

    /// Fraction of inputs on which this scheme *is* the best (ratio ≈ 1).
    pub fn fraction_best(&self) -> f64 {
        self.fraction_within(1.0 + 1e-12)
    }

    /// The curve as `(factor, fraction)` steps suitable for plotting.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.ratios.len();
        self.ratios
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, (i + 1) as f64 / n as f64))
            .collect()
    }
}

/// The full profile for a set of schemes over a set of inputs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfProfile {
    /// One curve per scheme, in input order of `values`.
    pub curves: Vec<ProfileCurve>,
}

impl PerfProfile {
    /// Builds profiles from `values[scheme][input]` with scheme `names`.
    ///
    /// Panics if rows are ragged, empty, or contain non-positive values
    /// (ratios are undefined there).
    pub fn compute(names: &[&str], values: &[Vec<f64>], direction: Direction) -> Self {
        assert_eq!(names.len(), values.len(), "one name per scheme row");
        assert!(!values.is_empty(), "need at least one scheme");
        let num_inputs = values[0].len();
        assert!(num_inputs > 0, "need at least one input");
        for row in values {
            assert_eq!(row.len(), num_inputs, "ragged value matrix");
            assert!(row.iter().all(|&v| v > 0.0), "values must be positive");
        }

        let mut curves = Vec::with_capacity(values.len());
        for (s, name) in names.iter().enumerate() {
            let mut ratios: Vec<f64> = (0..num_inputs)
                .map(|i| {
                    let column: Vec<f64> = values.iter().map(|row| row[i]).collect();
                    match direction {
                        Direction::LowerIsBetter => {
                            let best = column.iter().cloned().fold(f64::INFINITY, f64::min);
                            values[s][i] / best
                        }
                        Direction::HigherIsBetter => {
                            let best = column.iter().cloned().fold(0.0, f64::max);
                            best / values[s][i]
                        }
                    }
                })
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
            curves.push(ProfileCurve {
                name: name.to_string(),
                ratios,
            });
        }
        Self { curves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_profile_identifies_winner() {
        // Scheme A is fastest on both inputs; scheme B is 2× slower.
        let values = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let p = PerfProfile::compute(&["A", "B"], &values, Direction::LowerIsBetter);
        assert_eq!(p.curves[0].fraction_best(), 1.0);
        assert_eq!(p.curves[1].fraction_best(), 0.0);
        assert_eq!(p.curves[1].fraction_within(2.0), 1.0);
    }

    #[test]
    fn modularity_profile_higher_better() {
        let values = vec![vec![0.9, 0.5], vec![0.45, 0.75]];
        let p = PerfProfile::compute(&["A", "B"], &values, Direction::HigherIsBetter);
        // A best on input 0, B best on input 1.
        assert_eq!(p.curves[0].fraction_best(), 0.5);
        assert_eq!(p.curves[1].fraction_best(), 0.5);
        // A is 1.5× off the best on input 1 (0.75/0.5).
        assert!((p.curves[0].ratios[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ties_count_as_best_for_both() {
        let values = vec![vec![3.0], vec![3.0]];
        let p = PerfProfile::compute(&["A", "B"], &values, Direction::LowerIsBetter);
        assert_eq!(p.curves[0].fraction_best(), 1.0);
        assert_eq!(p.curves[1].fraction_best(), 1.0);
    }

    #[test]
    fn steps_are_monotone_cdf() {
        let values = vec![vec![1.0, 3.0, 2.0], vec![2.0, 1.0, 4.0]];
        let p = PerfProfile::compute(&["A", "B"], &values, Direction::LowerIsBetter);
        for curve in &p.curves {
            let steps = curve.steps();
            for w in steps.windows(2) {
                assert!(w[0].0 <= w[1].0);
                assert!(w[0].1 <= w[1].1);
            }
            assert_eq!(steps.last().unwrap().1, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_panics() {
        PerfProfile::compute(
            &["A", "B"],
            &[vec![1.0, 2.0], vec![1.0]],
            Direction::LowerIsBetter,
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_values_panic() {
        PerfProfile::compute(&["A"], &[vec![0.0]], Direction::LowerIsBetter);
    }
}
