//! # grappolo-metrics
//!
//! Partition-comparison metrics and performance profiles for the paper's
//! qualitative evaluation:
//!
//! * [`pairwise`] — specificity / sensitivity / overlap quality / Rand index
//!   over vertex pairs (§6.2.3, Table 3), computed exactly in near-linear
//!   time via a contingency table (the paper used the Θ(n²) definition and
//!   could only afford two inputs; the contingency form is algebraically
//!   identical and is cross-checked against the quadratic reference in
//!   tests).
//! * [`nmi`] — normalized mutual information, a standard independent check.
//! * [`perf_profile`] — the ratio-to-best performance profiles of Fig. 10.
//! * [`connectivity`] — the internal-connectivity audit (disconnected-
//!   community fraction, per-community internal conductance) behind the
//!   Leiden-style refinement's acceptance tests and the CLI `audit`
//!   subcommand.

#![warn(missing_docs)]

pub mod connectivity;
pub mod nmi;
pub mod pairwise;
pub mod perf_profile;

pub use connectivity::{
    audit_communities, connectivity_report, dendrogram_report, CommunityConnectivity,
    ConnectivityReport,
};
pub use nmi::normalized_mutual_information;
pub use pairwise::{pairwise_comparison, pairwise_comparison_bruteforce, PairwiseMetrics};
pub use perf_profile::{PerfProfile, ProfileCurve};
