//! # grappolo-coloring
//!
//! Distance-1 and distance-2 graph coloring used to partition vertices into
//! independent sets for the paper's coloring heuristic (§5.2): "vertices of
//! the same color are processed in parallel … no two adjacent vertices will
//! be processed concurrently."
//!
//! The parallel algorithm is the speculative iterative scheme of Çatalyürek,
//! Feo, Gebremedhin, Halappanavar, Pothen, *Graph coloring algorithms for
//! multi-core and massively multithreaded architectures* (Parallel Computing
//! 38(11), 2012) — the paper's reference \[12\] and the implementation Grappolo
//! uses for preprocessing.
//!
//! Also provided: a serial greedy reference, a *balanced* recoloring pass
//! (the paper's §6.2 observes skewed color-class sizes hurt uk-2002 and
//! says "We are exploring an alternative approaches to create balanced
//! coloring sets"), and distance-2 coloring (§5.2 discusses distance-k).

#![warn(missing_docs)]

pub mod balanced;
pub mod batches;
pub mod distance2;
pub mod greedy;
pub mod parallel;
pub mod stats;

pub use balanced::balance_colors;
pub use batches::ColorBatches;
pub use distance2::color_distance2;
pub use greedy::color_greedy_serial;
pub use parallel::{color_parallel, ParallelColoringConfig};
pub use stats::{color_class_sizes, color_classes, is_valid_distance1, ColoringStats};

/// A coloring: `colors[v]` is the color (0-based) of vertex `v`.
pub type Coloring = Vec<u32>;
