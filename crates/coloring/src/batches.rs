//! Stable-order color batches — the iteration contract the deterministic
//! colored sweep builds on.
//!
//! [`ColorBatches`] wraps the `ColorSets` partitioning of Algorithm 1 line 2
//! with two *guaranteed* ordering invariants:
//!
//! 1. batches are iterated in ascending color order, and
//! 2. within a batch, vertex ids are strictly ascending.
//!
//! Together with the distance-1 independence of each batch, this gives the
//! colored sweep a canonical commit order (batch-major, then vertex-ascending)
//! that does not depend on thread count or scheduling — the ordering half of
//! the bitwise-determinism guarantee; the arithmetic half lives in
//! `grappolo_core::modularity` (`det_sum` and the incremental tracker).

use crate::stats::color_classes;
use crate::Coloring;
use grappolo_graph::VertexId;

/// Color classes with a stable, validated iteration order.
///
/// Construction via [`ColorBatches::from_coloring`] always satisfies the
/// invariants; [`ColorBatches::try_from_classes`] validates externally built
/// classes (and accepts empty batches, which the sweep must tolerate).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ColorBatches {
    classes: Vec<Vec<VertexId>>,
}

impl ColorBatches {
    /// Groups `coloring` into batches: `batch k` holds the vertices of color
    /// `k` in ascending id order.
    pub fn from_coloring(coloring: &Coloring) -> Self {
        // `color_classes` scans vertices in ascending id order, so each
        // class is strictly ascending and duplicate-free by construction —
        // the trusted path needs no re-validation.
        Self::from_validated_classes(color_classes(coloring))
    }

    /// Wraps classes **already known** to satisfy the batch contract (each
    /// class strictly ascending, no vertex in two classes) without the
    /// O(n log n) re-validation [`ColorBatches::try_from_classes`] performs
    /// — for classes produced by this crate's own validated colorings
    /// (`greedy`, `parallel`, [`color_classes`]). The contract is still
    /// checked under `debug_assertions`; external or hand-assembled classes
    /// must go through [`ColorBatches::try_from_classes`] instead, because a
    /// contract violation here corrupts the colored sweep's size and
    /// modularity accounting.
    pub fn from_validated_classes(classes: Vec<Vec<VertexId>>) -> Self {
        let batches = Self { classes };
        debug_assert!(
            batches.is_stably_ordered(),
            "from_validated_classes received unsorted classes"
        );
        debug_assert!(
            {
                let mut all: Vec<VertexId> = batches.classes.iter().flatten().copied().collect();
                all.sort_unstable();
                all.windows(2).all(|w| w[0] != w[1])
            },
            "from_validated_classes received a duplicated vertex"
        );
        batches
    }

    /// Wraps externally assembled classes, validating the batch contract the
    /// colored sweep relies on: every batch's vertex ids strictly ascending
    /// (the stable commit order), and no vertex in more than one batch (a
    /// duplicate would commit twice per iteration and corrupt the size and
    /// modularity accounting). Empty batches are legal (a coloring whose
    /// color ids have gaps). Vertex ids are not range-checked — the sweep's
    /// graph defines the valid range.
    pub fn try_from_classes(classes: Vec<Vec<VertexId>>) -> Result<Self, String> {
        for (color, class) in classes.iter().enumerate() {
            if let Some(w) = class.windows(2).find(|w| w[0] >= w[1]) {
                return Err(format!(
                    "batch {color} is not strictly ascending at {}..{}",
                    w[0], w[1]
                ));
            }
        }
        let mut all: Vec<VertexId> = classes.iter().flatten().copied().collect();
        all.sort_unstable();
        if let Some(w) = all.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("vertex {} appears in more than one batch", w[0]));
        }
        Ok(Self { classes })
    }

    /// Number of batches (= number of colors, including empty ones).
    pub fn num_batches(&self) -> usize {
        self.classes.len()
    }

    /// Total number of vertices across all batches.
    pub fn num_vertices(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Iterates batches in ascending color order; each batch's slice is in
    /// ascending vertex order (the stable sweep/commit order).
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> {
        self.classes.iter().map(Vec::as_slice)
    }

    /// The underlying classes, ascending color order.
    pub fn as_classes(&self) -> &[Vec<VertexId>] {
        &self.classes
    }

    /// Copies the vertices of batch `color` that satisfy `keep` into `out`
    /// (cleared first), preserving ascending order — the active-set
    /// filtering hook of the dirty-vertex sweeps. A filtered batch is a
    /// subset of an independent set, so it is itself independent and keeps
    /// the stable commit order.
    pub fn filter_batch_into(
        &self,
        color: usize,
        mut keep: impl FnMut(VertexId) -> bool,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        out.extend(self.classes[color].iter().copied().filter(|&v| keep(v)));
    }

    /// True when every batch is strictly ascending (always holds for
    /// instances built through the public constructors; exposed so tests and
    /// debug assertions can state the invariant).
    pub fn is_stably_ordered(&self) -> bool {
        self.classes
            .iter()
            .all(|class| class.windows(2).all(|w| w[0] < w[1]))
    }
}

impl<'a> IntoIterator for &'a ColorBatches {
    type Item = &'a [VertexId];
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, Vec<VertexId>>,
        fn(&'a Vec<VertexId>) -> &'a [VertexId],
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.classes.iter().map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coloring_is_stably_ordered() {
        let batches = ColorBatches::from_coloring(&vec![1, 0, 1, 2, 0]);
        assert!(batches.is_stably_ordered());
        assert_eq!(batches.num_batches(), 3);
        assert_eq!(batches.num_vertices(), 5);
        let collected: Vec<&[VertexId]> = batches.iter().collect();
        assert_eq!(collected, vec![&[1u32, 4][..], &[0, 2][..], &[3][..]]);
    }

    #[test]
    fn try_from_classes_validates_ordering() {
        assert!(ColorBatches::try_from_classes(vec![vec![0, 2], vec![1]]).is_ok());
        // Empty batches are legal.
        let with_gap = ColorBatches::try_from_classes(vec![vec![0], vec![], vec![1]]).unwrap();
        assert_eq!(with_gap.num_batches(), 3);
        assert_eq!(with_gap.num_vertices(), 2);
        assert!(with_gap.is_stably_ordered());
        // Descending or duplicated ids are rejected.
        assert!(ColorBatches::try_from_classes(vec![vec![2, 0]]).is_err());
        assert!(ColorBatches::try_from_classes(vec![vec![1, 1]]).is_err());
        // A vertex may not belong to two batches.
        assert!(ColorBatches::try_from_classes(vec![vec![0, 7], vec![1], vec![7]]).is_err());
    }

    #[test]
    fn from_validated_classes_trusts_without_sorting() {
        let classes = vec![vec![1u32, 4], vec![0, 2], vec![3]];
        let trusted = ColorBatches::from_validated_classes(classes.clone());
        let checked = ColorBatches::try_from_classes(classes).unwrap();
        assert_eq!(trusted, checked);
        assert!(trusted.is_stably_ordered());
        // Empty classes are fine on the trusted path too.
        let gap = ColorBatches::from_validated_classes(vec![vec![0], vec![], vec![1]]);
        assert_eq!(gap.num_batches(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unsorted")]
    fn from_validated_classes_debug_checks_order() {
        let _ = ColorBatches::from_validated_classes(vec![vec![2, 0]]);
    }

    #[test]
    fn filter_batch_preserves_ascending_order() {
        let batches = ColorBatches::from_coloring(&vec![0, 1, 0, 1, 0, 0]);
        let mut out = vec![99u32]; // must be cleared
        batches.filter_batch_into(0, |v| v % 4 == 0, &mut out);
        assert_eq!(out, vec![0, 4]);
        batches.filter_batch_into(1, |_| true, &mut out);
        assert_eq!(out, vec![1, 3]);
        batches.filter_batch_into(1, |_| false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn into_iterator_matches_iter() {
        let batches = ColorBatches::from_coloring(&vec![0, 1, 0]);
        let a: Vec<&[VertexId]> = batches.iter().collect();
        let b: Vec<&[VertexId]> = (&batches).into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_coloring_has_no_batches() {
        let batches = ColorBatches::from_coloring(&Vec::new());
        assert_eq!(batches.num_batches(), 0);
        assert_eq!(batches.num_vertices(), 0);
        assert!(batches.is_stably_ordered());
    }
}
