//! Serial first-fit greedy coloring — the correctness reference for the
//! parallel algorithm and the fallback for tiny graphs where parallel setup
//! costs dominate.

use crate::Coloring;
use grappolo_graph::{CsrGraph, VertexId};

/// Colors vertices in id order, assigning each the smallest color not used
/// by an already-colored neighbor. Produces at most `max_degree + 1` colors.
pub fn color_greedy_serial(g: &CsrGraph) -> Coloring {
    let n = g.num_vertices();
    let mut colors: Coloring = vec![u32::MAX; n];
    // `forbidden[c] == v` means color c is used by a neighbor of v; using the
    // vertex id as epoch avoids clearing the scratch array per vertex.
    let mut forbidden: Vec<u32> = vec![u32::MAX; g.max_degree() + 2];
    for v in 0..n as VertexId {
        for &u in g.neighbor_ids(v) {
            if u == v {
                continue; // self-loops never constrain coloring
            }
            let cu = colors[u as usize];
            if cu != u32::MAX && (cu as usize) < forbidden.len() {
                forbidden[cu as usize] = v;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == v {
            c += 1;
        }
        colors[v as usize] = c;
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::is_valid_distance1;
    use grappolo_graph::from_unweighted_edges;

    #[test]
    fn path_is_two_colorable() {
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = color_greedy_serial(&g);
        assert!(is_valid_distance1(&g, &c));
        assert_eq!(c.iter().max(), Some(&1));
    }

    #[test]
    fn clique_needs_n_colors() {
        let g = from_unweighted_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let c = color_greedy_serial(&g);
        assert!(is_valid_distance1(&g, &c));
        let mut sorted = c.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_get_color_zero() {
        let g = from_unweighted_edges(3, []).unwrap();
        let c = color_greedy_serial(&g);
        assert_eq!(c, vec![0, 0, 0]);
    }

    #[test]
    fn self_loop_does_not_block() {
        let g = grappolo_graph::from_weighted_edges(2, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let c = color_greedy_serial(&g);
        assert!(is_valid_distance1(&g, &c));
        assert_eq!(c[0], 0);
        assert_eq!(c[1], 1);
    }

    #[test]
    fn star_is_two_colorable() {
        let g = from_unweighted_edges(6, (1..6).map(|v| (0, v))).unwrap();
        let c = color_greedy_serial(&g);
        assert!(is_valid_distance1(&g, &c));
        assert_eq!(*c.iter().max().unwrap(), 1);
    }

    #[test]
    fn color_count_bounded_by_max_degree_plus_one() {
        let g = grappolo_graph::gen::erdos_renyi(&grappolo_graph::gen::ErConfig {
            num_vertices: 500,
            num_edges: 3_000,
            seed: 4,
        });
        let c = color_greedy_serial(&g);
        assert!(is_valid_distance1(&g, &c));
        let num_colors = *c.iter().max().unwrap() as usize + 1;
        assert!(num_colors <= g.max_degree() + 1);
    }
}
