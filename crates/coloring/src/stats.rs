//! Coloring statistics and validity checks.
//!
//! The paper attributes uk-2002's poor colored-scheme speedup to "the highly
//! skewed color size distributions" — "943 colors were used … and the color
//! sets had a high Relative Standard Deviation (RSD) of 18.876 in their
//! sizes" (§6.2). [`ColoringStats`] reports exactly those quantities.

use crate::Coloring;
use grappolo_graph::{stats::relative_std_dev, CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Summary of a coloring's shape.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColoringStats {
    /// Number of distinct colors.
    pub num_colors: usize,
    /// Size of each color class, indexed by color.
    pub class_sizes: Vec<usize>,
    /// Relative standard deviation of the class sizes (σ / mean) — the
    /// paper's skew metric.
    pub size_rsd: f64,
    /// Largest class size.
    pub max_class: usize,
    /// Smallest class size.
    pub min_class: usize,
}

impl ColoringStats {
    /// Computes statistics for `coloring`.
    pub fn compute(coloring: &Coloring) -> Self {
        let class_sizes = color_class_sizes(coloring);
        let size_rsd = relative_std_dev(&class_sizes);
        let max_class = class_sizes.iter().copied().max().unwrap_or(0);
        let min_class = class_sizes.iter().copied().min().unwrap_or(0);
        Self {
            num_colors: class_sizes.len(),
            class_sizes,
            size_rsd,
            max_class,
            min_class,
        }
    }
}

/// Returns `sizes[c]` = number of vertices with color `c`.
pub fn color_class_sizes(coloring: &Coloring) -> Vec<usize> {
    let num_colors = coloring.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut sizes = vec![0usize; num_colors];
    for &c in coloring {
        sizes[c as usize] += 1;
    }
    sizes
}

/// Groups vertex ids by color: `classes[c]` lists the vertices of color `c`
/// in ascending id order. This is the `ColorSets` partitioning consumed by
/// Algorithm 1 line 2.
pub fn color_classes(coloring: &Coloring) -> Vec<Vec<VertexId>> {
    let sizes = color_class_sizes(coloring);
    let mut classes: Vec<Vec<VertexId>> = sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
    for (v, &c) in coloring.iter().enumerate() {
        classes[c as usize].push(v as VertexId);
    }
    classes
}

/// True if no two *distinct* adjacent vertices share a color (self-loops are
/// exempt by definition of distance-1 coloring).
pub fn is_valid_distance1(g: &CsrGraph, coloring: &Coloring) -> bool {
    if coloring.len() != g.num_vertices() {
        return false;
    }
    for v in 0..g.num_vertices() as VertexId {
        for &u in g.neighbor_ids(v) {
            if u != v && coloring[u as usize] == coloring[v as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::from_unweighted_edges;

    #[test]
    fn class_sizes_and_stats() {
        let coloring = vec![0, 1, 0, 2, 0];
        let sizes = color_class_sizes(&coloring);
        assert_eq!(sizes, vec![3, 1, 1]);
        let st = ColoringStats::compute(&coloring);
        assert_eq!(st.num_colors, 3);
        assert_eq!(st.max_class, 3);
        assert_eq!(st.min_class, 1);
        assert!(st.size_rsd > 0.0);
    }

    #[test]
    fn classes_group_vertices() {
        let coloring = vec![1, 0, 1];
        let classes = color_classes(&coloring);
        assert_eq!(classes, vec![vec![1], vec![0, 2]]);
    }

    #[test]
    fn validity_check_detects_conflict() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(is_valid_distance1(&g, &vec![0, 1, 0]));
        assert!(!is_valid_distance1(&g, &vec![0, 0, 1]));
        assert!(!is_valid_distance1(&g, &vec![0, 1])); // wrong length
    }

    #[test]
    fn self_loop_exempt() {
        let g = grappolo_graph::from_weighted_edges(1, [(0, 0, 1.0)]).unwrap();
        assert!(is_valid_distance1(&g, &vec![0]));
    }

    #[test]
    fn empty_coloring() {
        let st = ColoringStats::compute(&Vec::new());
        assert_eq!(st.num_colors, 0);
        assert_eq!(st.size_rsd, 0.0);
    }

    #[test]
    fn uniform_classes_zero_rsd() {
        let st = ColoringStats::compute(&vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(st.size_rsd, 0.0);
    }
}
