//! Distance-2 coloring: no two vertices within two hops share a color.
//!
//! §5.2 of the paper defines distance-k coloring and §5.4 step (2) notes
//! "For this paper, we only explore distance-1 coloring"; distance-2 is
//! implemented here as the natural extension. Under distance-2 processing,
//! two concurrently-processed vertices can never share *any* neighbor, which
//! additionally rules out the two-vertices-join-one-community races of §4.1
//! (though not the negative-gain phenomenon itself — see the paper's \[11\]).

use crate::Coloring;
use grappolo_graph::{CsrGraph, VertexId};
use rustc_hash_shim::FxHashSet;

// rustc-hash is not a declared dependency of this crate; a tiny shim keeps
// the hot path allocation-light without widening the dependency set.
mod rustc_hash_shim {
    pub type FxHashSet = std::collections::BTreeSet<u32>;
}

/// Serial greedy distance-2 coloring (first fit over the 2-hop
/// neighborhood). Returns colors such that [`is_valid_distance2`] holds.
pub fn color_distance2(g: &CsrGraph) -> Coloring {
    let n = g.num_vertices();
    let mut colors: Coloring = vec![u32::MAX; n];
    let mut taken: FxHashSet = FxHashSet::new();
    for v in 0..n as VertexId {
        taken.clear();
        for &u in g.neighbor_ids(v) {
            if u != v && colors[u as usize] != u32::MAX {
                taken.insert(colors[u as usize]);
            }
            for &w in g.neighbor_ids(u) {
                if w != v && colors[w as usize] != u32::MAX {
                    taken.insert(colors[w as usize]);
                }
            }
        }
        let mut c = 0u32;
        while taken.contains(&c) {
            c += 1;
        }
        colors[v as usize] = c;
    }
    colors
}

/// True if no two distinct vertices at distance ≤ 2 share a color.
pub fn is_valid_distance2(g: &CsrGraph, coloring: &Coloring) -> bool {
    if coloring.len() != g.num_vertices() {
        return false;
    }
    for v in 0..g.num_vertices() as VertexId {
        for &u in g.neighbor_ids(v) {
            if u != v && coloring[u as usize] == coloring[v as usize] {
                return false;
            }
            for &w in g.neighbor_ids(u) {
                if w != v && coloring[w as usize] == coloring[v as usize] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{erdos_renyi, ErConfig};

    #[test]
    fn path_distance2() {
        // Path 0-1-2-3: distance-2 pairs (0,2),(1,3) must differ too.
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = color_distance2(&g);
        assert!(is_valid_distance2(&g, &c));
        assert_ne!(c[0], c[2]);
        assert_ne!(c[1], c[3]);
    }

    #[test]
    fn star_needs_spoke_count_colors() {
        // In a star all spokes are pairwise distance-2: k+1 colors needed.
        let g = from_unweighted_edges(5, (1..5).map(|v| (0, v))).unwrap();
        let c = color_distance2(&g);
        assert!(is_valid_distance2(&g, &c));
        let mut distinct = c.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn valid_on_random() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 300,
            num_edges: 900,
            seed: 1,
        });
        let c = color_distance2(&g);
        assert!(is_valid_distance2(&g, &c));
    }

    #[test]
    fn distance2_is_also_distance1_valid() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 200,
            num_edges: 600,
            seed: 2,
        });
        let c = color_distance2(&g);
        assert!(crate::stats::is_valid_distance1(&g, &c));
    }

    #[test]
    fn validity_check_rejects_two_hop_clash() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2)]).unwrap();
        // 0 and 2 are distance-2; same color is distance-1-valid but not d2.
        let c = vec![0, 1, 0];
        assert!(crate::stats::is_valid_distance1(&g, &c));
        assert!(!is_valid_distance2(&g, &c));
    }
}
