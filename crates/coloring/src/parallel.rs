//! Speculative iterative parallel distance-1 coloring (Çatalyürek et al.,
//! the paper's reference \[12\]).
//!
//! Each round has two parallel phases over the currently-uncolored vertices:
//!
//! 1. **Tentative coloring** — every uncolored vertex picks the smallest
//!    color not used by any neighbor (reading possibly-stale neighbor
//!    colors).
//! 2. **Conflict detection** — every just-colored vertex re-checks its
//!    neighbors; if an adjacent pair ended up with equal colors, the
//!    higher-id endpoint is uncolored and re-queued for the next round.
//!
//! The loop terminates because at least one vertex of every conflicting pair
//! keeps its color each round; on real inputs a handful of rounds suffice.

use crate::Coloring;
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Tuning knobs for [`color_parallel`].
#[derive(Clone, Debug)]
pub struct ParallelColoringConfig {
    /// Below this vertex count the serial greedy algorithm is used directly
    /// (parallel setup costs dominate on tiny inputs).
    pub serial_cutoff: usize,
    /// Safety bound on speculative rounds; the algorithm converges long
    /// before this on any input (each round permanently colors ≥ half of
    /// every conflicting pair).
    pub max_rounds: usize,
}

impl Default for ParallelColoringConfig {
    fn default() -> Self {
        Self {
            serial_cutoff: 1_024,
            max_rounds: 10_000,
        }
    }
}

/// Colors `g` with distance-1 semantics using speculation + conflict
/// resolution. Returns the coloring; validity is guaranteed
/// ([`crate::stats::is_valid_distance1`] holds) and tested.
pub fn color_parallel(g: &CsrGraph, cfg: &ParallelColoringConfig) -> Coloring {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if n <= cfg.serial_cutoff {
        return crate::greedy::color_greedy_serial(g);
    }

    const UNCOLORED: u32 = u32::MAX;
    let mut colors: Coloring = vec![UNCOLORED; n];
    let mut worklist: Vec<VertexId> = (0..n as VertexId).collect();

    for _round in 0..cfg.max_rounds {
        if worklist.is_empty() {
            break;
        }

        // Phase 1: tentative speculative coloring.
        let tentative: Vec<u32> = worklist
            .par_iter()
            .map(|&v| {
                let mut taken: Vec<u32> = g
                    .neighbor_ids(v)
                    .iter()
                    .filter(|&&u| u != v)
                    .map(|&u| colors[u as usize])
                    .filter(|&c| c != UNCOLORED)
                    .collect();
                taken.sort_unstable();
                let mut c = 0u32;
                for t in taken {
                    if t == c {
                        c += 1;
                    } else if t > c {
                        break;
                    }
                }
                c
            })
            .collect();
        // Commit tentative colors (distinct indices — no races).
        // A scatter via par_iter over the worklist would race on `colors`
        // borrow; instead commit sequentially (cheap: one store per vertex)
        // then detect conflicts in parallel.
        for (i, &v) in worklist.iter().enumerate() {
            colors[v as usize] = tentative[i];
        }

        // Phase 2: conflict detection — higher id of a conflicting pair
        // loses its color and is retried next round.
        let losers: Vec<VertexId> = worklist
            .par_iter()
            .copied()
            .filter(|&v| {
                g.neighbor_ids(v)
                    .iter()
                    .any(|&u| u != v && colors[u as usize] == colors[v as usize] && v > u)
            })
            .collect();
        for &v in &losers {
            colors[v as usize] = UNCOLORED;
        }
        worklist = losers;
    }
    assert!(
        worklist.is_empty(),
        "speculative coloring failed to converge within max_rounds"
    );
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{color_class_sizes, is_valid_distance1};
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{erdos_renyi, rmat, ErConfig, RmatConfig};

    fn cfg_parallel_always() -> ParallelColoringConfig {
        ParallelColoringConfig {
            serial_cutoff: 0,
            ..Default::default()
        }
    }

    #[test]
    fn valid_on_random_graph() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 5_000,
            num_edges: 30_000,
            seed: 1,
        });
        let c = color_parallel(&g, &cfg_parallel_always());
        assert!(is_valid_distance1(&g, &c));
    }

    #[test]
    fn valid_on_skewed_graph() {
        let g = rmat(&RmatConfig {
            scale: 12,
            num_edges: 50_000,
            ..Default::default()
        });
        let c = color_parallel(&g, &cfg_parallel_always());
        assert!(is_valid_distance1(&g, &c));
    }

    #[test]
    fn all_vertices_colored() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 2_000,
            num_edges: 10_000,
            seed: 2,
        });
        let c = color_parallel(&g, &cfg_parallel_always());
        assert_eq!(c.len(), 2_000);
        assert!(c.iter().all(|&x| x != u32::MAX));
    }

    #[test]
    fn color_count_reasonable() {
        // Parallel speculation may use a few more colors than serial greedy,
        // but stays within max_degree + 1 per round-local first-fit.
        let g = erdos_renyi(&ErConfig {
            num_vertices: 3_000,
            num_edges: 20_000,
            seed: 3,
        });
        let c = color_parallel(&g, &cfg_parallel_always());
        let used = *c.iter().max().unwrap() as usize + 1;
        assert!(used <= g.max_degree() + 1, "used {used} colors");
    }

    #[test]
    fn serial_cutoff_matches_greedy() {
        let g = from_unweighted_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let cfg = ParallelColoringConfig::default(); // cutoff engages
        assert_eq!(
            color_parallel(&g, &cfg),
            crate::greedy::color_greedy_serial(&g)
        );
    }

    #[test]
    fn empty_graph() {
        let g = grappolo_graph::CsrGraph::empty(0);
        assert!(color_parallel(&g, &cfg_parallel_always()).is_empty());
    }

    #[test]
    fn self_loops_ignored() {
        let g = grappolo_graph::from_weighted_edges(3, [(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)])
            .unwrap();
        let c = color_parallel(&g, &cfg_parallel_always());
        assert!(is_valid_distance1(&g, &c));
    }

    #[test]
    fn class_sizes_cover_all_vertices() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 4_000,
            num_edges: 16_000,
            seed: 5,
        });
        let c = color_parallel(&g, &cfg_parallel_always());
        let sizes = color_class_sizes(&c);
        assert_eq!(sizes.iter().sum::<usize>(), 4_000);
    }
}
