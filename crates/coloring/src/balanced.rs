//! Color-class balancing — the extension the paper's §6.2 motivates:
//! "the presence of numerous small color sets could result in an
//! under-utilization of threads … We are exploring an alternative approaches
//! to create balanced coloring sets that are targeted at addressing this
//! performance issue."
//!
//! Strategy (a shared-memory adaptation of the "VFF/scheduled reverse"
//! family from Lu et al.'s follow-on balanced-coloring work): compute the
//! mean class size, then repeatedly move vertices from over-full classes to
//! the *least-full* permissible class (one not used by any neighbor and not
//! itself over-full). Moves never create conflicts, so validity is preserved
//! by construction; the number of colors never increases.

use crate::stats::color_class_sizes;
use crate::Coloring;
use grappolo_graph::{CsrGraph, VertexId};

/// Rebalances `coloring` in place toward equal class sizes.
///
/// `tolerance` is the accepted overshoot above the mean (e.g. 0.1 allows
/// classes up to 1.1 × mean). Returns the number of vertices moved.
pub fn balance_colors(g: &CsrGraph, coloring: &mut Coloring, tolerance: f64) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    assert_eq!(coloring.len(), n);
    let mut sizes = color_class_sizes(coloring);
    let num_colors = sizes.len();
    if num_colors <= 1 {
        return 0;
    }
    let mean = n as f64 / num_colors as f64;
    let cap = (mean * (1.0 + tolerance.max(0.0))).ceil() as usize;

    let mut moved = 0usize;
    // Deterministic sweep: visit vertices in id order; move a vertex only if
    // its class is over cap and a strictly smaller under-cap class admits it.
    // One sweep is usually enough; iterate until fixpoint or bounded passes.
    for _pass in 0..4 {
        let mut changed = false;
        let mut taken: Vec<u32> = Vec::new();
        for v in 0..n as VertexId {
            let c = coloring[v as usize] as usize;
            if sizes[c] <= cap {
                continue;
            }
            taken.clear();
            taken.extend(
                g.neighbor_ids(v)
                    .iter()
                    .filter(|&&u| u != v)
                    .map(|&u| coloring[u as usize]),
            );
            taken.sort_unstable();
            // Least-full permissible class.
            let mut best: Option<(usize, usize)> = None; // (size, color)
            for cand in 0..num_colors {
                if cand == c || taken.binary_search(&(cand as u32)).is_ok() {
                    continue;
                }
                if sizes[cand] + 1 > cap.min(sizes[c] - 1) {
                    continue; // would just shift the imbalance
                }
                match best {
                    Some((sz, _)) if sz <= sizes[cand] => {}
                    _ => best = Some((sizes[cand], cand)),
                }
            }
            if let Some((_, cand)) = best {
                sizes[c] -= 1;
                sizes[cand] += 1;
                coloring[v as usize] = cand as u32;
                moved += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::color_greedy_serial;
    use crate::stats::{is_valid_distance1, ColoringStats};
    use grappolo_graph::gen::{erdos_renyi, rmat, ErConfig, RmatConfig};

    #[test]
    fn preserves_validity() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 2_000,
            num_edges: 8_000,
            seed: 1,
        });
        let mut c = color_greedy_serial(&g);
        balance_colors(&g, &mut c, 0.1);
        assert!(is_valid_distance1(&g, &c));
    }

    #[test]
    fn reduces_skew_on_greedy_coloring() {
        // Greedy first-fit concentrates mass in color 0; balancing must cut
        // the class-size RSD.
        let g = rmat(&RmatConfig {
            scale: 12,
            num_edges: 40_000,
            ..Default::default()
        });
        let mut c = color_greedy_serial(&g);
        let before = ColoringStats::compute(&c).size_rsd;
        let moved = balance_colors(&g, &mut c, 0.05);
        let after = ColoringStats::compute(&c).size_rsd;
        assert!(moved > 0, "expected some moves");
        assert!(is_valid_distance1(&g, &c));
        assert!(
            after < before,
            "balancing should reduce RSD: before {before}, after {after}"
        );
    }

    #[test]
    fn does_not_increase_color_count() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 1_000,
            num_edges: 6_000,
            seed: 2,
        });
        let mut c = color_greedy_serial(&g);
        let before = ColoringStats::compute(&c).num_colors;
        balance_colors(&g, &mut c, 0.1);
        let after = ColoringStats::compute(&c).num_colors;
        assert!(after <= before);
    }

    #[test]
    fn noop_on_single_color() {
        let g = grappolo_graph::from_unweighted_edges(5, []).unwrap();
        let mut c = vec![0u32; 5];
        assert_eq!(balance_colors(&g, &mut c, 0.1), 0);
        assert_eq!(c, vec![0; 5]);
    }

    #[test]
    fn noop_on_empty_graph() {
        let g = grappolo_graph::CsrGraph::empty(0);
        let mut c = Vec::new();
        assert_eq!(balance_colors(&g, &mut c, 0.1), 0);
    }

    #[test]
    fn already_balanced_untouched() {
        // 4-cycle colored 0,1,0,1 is perfectly balanced.
        let g = grappolo_graph::from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut c = vec![0, 1, 0, 1];
        assert_eq!(balance_colors(&g, &mut c, 0.0), 0);
        assert_eq!(c, vec![0, 1, 0, 1]);
    }
}
