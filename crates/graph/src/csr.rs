//! Compressed sparse row (CSR) storage for weighted undirected graphs.
//!
//! This is the substrate the paper's §5.5 describes: "a compressed storage
//! format … that store\[s\] the adjacency lists for all the vertices in a
//! contiguous memory location", with per-vertex offsets kept separately.
//!
//! Conventions (paper §2, restated in DESIGN.md §2):
//! * Each undirected edge `{i, j}` with `i != j` appears in **both** endpoint
//!   adjacency lists.
//! * A self-loop `(i, i)` appears **once** in `i`'s list.
//! * The weighted degree `k_i` is the sum of the weights in `i`'s list, so a
//!   self-loop counts once toward `k_i`.
//! * `m = ½ Σ_i k_i` is the graph's total weight used by all modularity math.

use std::ops::Range;

/// Vertex identifier. `u32` keeps the hot arrays compact (perf-book: smaller
/// integers for indices); graphs up to 4.29 B vertices are out of scope.
pub type VertexId = u32;

/// Default weight assigned to edges of unweighted input (paper §2 footnote 1).
pub const DEFAULT_WEIGHT: f64 = 1.0;

/// A weighted undirected graph in CSR form.
///
/// Immutable once built; construct via [`crate::builder::GraphBuilder`] or
/// [`CsrGraph::from_sorted_adjacency`].
#[derive(Clone, Debug, Default)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets`/`weights` for vertex `v`.
    offsets: Vec<usize>,
    /// Neighbor vertex ids, grouped per source vertex, sorted ascending.
    targets: Vec<VertexId>,
    /// Edge weights parallel to `targets`.
    weights: Vec<f64>,
    /// Cached weighted degrees `k_i`.
    weighted_degrees: Vec<f64>,
    /// Cached `m = ½ Σ k_i`.
    total_weight: f64,
    /// Number of distinct undirected edges (self-loops count once).
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a graph directly from per-vertex sorted adjacency data.
    ///
    /// `offsets` must have length `n + 1`, be non-decreasing, and start at 0;
    /// `targets`/`weights` must have length `offsets[n]`. Every non-loop entry
    /// `(u, v, w)` must have a mirror `(v, u, w)`; self-loops appear once.
    /// These invariants are checked in debug builds and by
    /// [`CsrGraph::validate`].
    pub fn from_sorted_adjacency(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<f64>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must contain at least [0]");
        assert_eq!(*offsets.first().unwrap(), 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must end at targets.len()"
        );
        assert_eq!(targets.len(), weights.len());
        let g = Self::new_unchecked(offsets, targets, weights);
        debug_assert!(g.validate().is_ok(), "{:?}", g.validate());
        g
    }

    /// Fallible variant of [`CsrGraph::from_sorted_adjacency`] for untrusted
    /// input (e.g. binary files): every invariant violation — including the
    /// ones the infallible constructor asserts — comes back as `Err` instead
    /// of a panic, in release and debug builds alike.
    pub fn try_from_sorted_adjacency(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<f64>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must contain at least [0]".into());
        }
        if *offsets.first().unwrap() != 0 {
            return Err("offsets must start at 0".into());
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err("offsets must end at targets.len()".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing".into());
        }
        if targets.len() != weights.len() {
            return Err("targets and weights must have equal length".into());
        }
        let g = Self::new_unchecked(offsets, targets, weights);
        g.validate()?;
        Ok(g)
    }

    /// Replaces the cached total edge weight `m`, leaving every stored array
    /// untouched. This intentionally breaks the `m = ½ Σ k_i` identity: it
    /// exists for component-split detection, where modularity on an extracted
    /// component subgraph must be evaluated against the **parent** graph's
    /// `2m` normalization so per-component decisions reproduce the unsplit
    /// run's. Do not persist or merge a graph carrying an override.
    pub fn with_total_weight_override(mut self, total_weight: f64) -> Self {
        self.total_weight = total_weight;
        self
    }

    /// Computes the cached degree/weight fields without checking invariants.
    fn new_unchecked(offsets: Vec<usize>, targets: Vec<VertexId>, weights: Vec<f64>) -> Self {
        let n = offsets.len() - 1;
        let mut weighted_degrees = vec![0.0; n];
        let mut num_self_loops = 0usize;
        for v in 0..n {
            let mut k = 0.0;
            for e in offsets[v]..offsets[v + 1] {
                k += weights[e];
                if targets[e] as usize == v {
                    num_self_loops += 1;
                }
            }
            weighted_degrees[v] = k;
        }
        let total_weight = 0.5 * weighted_degrees.iter().sum::<f64>();
        let num_edges = (targets.len() - num_self_loops) / 2 + num_self_loops;

        Self {
            offsets,
            targets,
            weights,
            weighted_degrees,
            total_weight,
            num_edges,
        }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Self::from_sorted_adjacency(vec![0; n + 1], Vec::new(), Vec::new())
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of distinct undirected edges `M` (self-loops count once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of stored adjacency entries (`2M` minus the self-loop mirrors).
    #[inline]
    pub fn num_adjacency_entries(&self) -> usize {
        self.targets.len()
    }

    /// Total edge weight `m = ½ Σ_i k_i` (paper §2).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Weighted degree `k_v = Σ_{u ∈ Γ(v)} ω(v, u)`; self-loops count once.
    #[inline]
    pub fn weighted_degree(&self, v: VertexId) -> f64 {
        self.weighted_degrees[v as usize]
    }

    /// All weighted degrees, indexed by vertex.
    #[inline]
    pub fn weighted_degrees(&self) -> &[f64] {
        &self.weighted_degrees
    }

    /// Unweighted degree: the number of adjacency entries of `v`
    /// (a self-loop counts once).
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Range of adjacency-array indices belonging to `v`.
    #[inline]
    pub fn neighbor_range(&self, v: VertexId) -> Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Iterates `(neighbor, weight)` pairs of `v` in ascending neighbor order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let r = self.neighbor_range(v);
        self.targets[r.clone()]
            .iter()
            .copied()
            .zip(self.weights[r].iter().copied())
    }

    /// Neighbor ids of `v` (ascending), without weights.
    #[inline]
    pub fn neighbor_ids(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.neighbor_range(v)]
    }

    /// Neighbor weights of `v`, parallel to [`CsrGraph::neighbor_ids`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[f64] {
        &self.weights[self.neighbor_range(v)]
    }

    /// The raw CSR offset array (`n + 1` entries, starting at 0). Together
    /// with [`CsrGraph::adjacency_targets`] and
    /// [`CsrGraph::adjacency_weights`] this exposes the exact storage for
    /// bitwise comparisons and binary serialization.
    #[inline]
    pub fn adjacency_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw neighbor-id array, grouped per source vertex.
    #[inline]
    pub fn adjacency_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The raw weight array, parallel to [`CsrGraph::adjacency_targets`].
    #[inline]
    pub fn adjacency_weights(&self) -> &[f64] {
        &self.weights
    }

    /// True when the raw CSR storage of `self` and `other` is bitwise
    /// identical: equal offsets, equal neighbor ids, and weights equal *as
    /// bit patterns* (so `-0.0 != 0.0` and NaNs compare by payload). This is
    /// the equivalence the parallel builder and the `.grb` round-trip
    /// guarantee against their serial references.
    pub fn bitwise_eq(&self, other: &CsrGraph) -> bool {
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.weights.len() == other.weights.len()
            && self
                .weights
                .iter()
                .zip(&other.weights)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Weight of the self-loop at `v`, or 0.0 if none.
    pub fn self_loop_weight(&self, v: VertexId) -> f64 {
        match self.neighbor_ids(v).binary_search(&v) {
            Ok(pos) => self.weights[self.neighbor_range(v).start + pos],
            Err(_) => 0.0,
        }
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        match self.neighbor_ids(u).binary_search(&v) {
            Ok(pos) => Some(self.weights[self.neighbor_range(u).start + pos]),
            Err(_) => None,
        }
    }

    /// True if edge `{u, v}` exists (including `u == v` self-loops).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Maximum unweighted degree, 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Iterates every stored adjacency entry as `(source, target, weight)`.
    /// Non-loop edges are yielded twice (once per direction).
    pub fn adjacency_entries(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).map(move |(u, w)| (v, u, w)))
    }

    /// Iterates each distinct undirected edge once as `(u, v, w)` with
    /// `u <= v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f64)> + '_ {
        self.adjacency_entries().filter(|&(u, v, _)| u <= v)
    }

    /// Checks structural invariants; returns a description of the first
    /// violation found.
    // The negated comparison is deliberate: `!(w > 0.0)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets decrease at vertex {v}"));
            }
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err("offsets do not cover targets".into());
        }
        for v in 0..n as VertexId {
            let ids = self.neighbor_ids(v);
            for win in ids.windows(2) {
                if win[0] >= win[1] {
                    return Err(format!("adjacency of {v} not strictly sorted: {win:?}"));
                }
            }
            for (u, w) in self.neighbors(v) {
                if u as usize >= n {
                    return Err(format!("edge ({v},{u}) out of range"));
                }
                if !(w > 0.0) {
                    return Err(format!("edge ({v},{u}) has non-positive weight {w}"));
                }
                if u != v {
                    match self.edge_weight(u, v) {
                        Some(w2) if w2 == w => {}
                        Some(w2) => {
                            return Err(format!("asymmetric weight on ({v},{u}): {w} vs {w2}"))
                        }
                        None => return Err(format!("missing mirror of ({v},{u})")),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Triangle 0-1-2 plus a self-loop on 2.
    fn triangle_with_loop() -> CsrGraph {
        GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(0, 2, 3.0)
            .add_edge(2, 2, 4.0)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_vertices_and_edges() {
        let g = triangle_with_loop();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_adjacency_entries(), 7); // 3 non-loops × 2 + 1 loop
    }

    #[test]
    fn weighted_degree_counts_self_loop_once() {
        let g = triangle_with_loop();
        assert_eq!(g.weighted_degree(0), 4.0); // 1 + 3
        assert_eq!(g.weighted_degree(1), 3.0); // 1 + 2
        assert_eq!(g.weighted_degree(2), 9.0); // 2 + 3 + 4
    }

    #[test]
    fn total_weight_is_half_degree_sum() {
        let g = triangle_with_loop();
        assert_eq!(g.total_weight(), 8.0); // (4 + 3 + 9) / 2
    }

    #[test]
    fn neighbors_sorted_with_weights() {
        let g = triangle_with_loop();
        let nbrs: Vec<_> = g.neighbors(2).collect();
        assert_eq!(nbrs, vec![(0, 3.0), (1, 2.0), (2, 4.0)]);
    }

    #[test]
    fn self_loop_lookup() {
        let g = triangle_with_loop();
        assert_eq!(g.self_loop_weight(2), 4.0);
        assert_eq!(g.self_loop_weight(0), 0.0);
    }

    #[test]
    fn edge_weight_lookup_both_directions() {
        let g = triangle_with_loop();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 0), Some(1.0));
        assert_eq!(g.edge_weight(1, 1), None);
        assert!(g.has_edge(2, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn degrees_and_max_degree() {
        let g = triangle_with_loop();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn undirected_edges_yields_each_once() {
        let g = triangle_with_loop();
        let mut edges: Vec<_> = g.undirected_edges().collect();
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            edges,
            vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0), (2, 2, 4.0)]
        );
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_weight(), 0.0);
        assert_eq!(g.degree(3), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn validate_detects_asymmetry() {
        // Hand-build a broken graph: edge 0->1 without mirror.
        let g = CsrGraph {
            offsets: vec![0, 1, 1],
            targets: vec![1],
            weights: vec![1.0],
            weighted_degrees: vec![1.0, 0.0],
            total_weight: 0.5,
            num_edges: 1,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_detects_nonpositive_weight() {
        let g = CsrGraph {
            offsets: vec![0, 1, 2],
            targets: vec![1, 0],
            weights: vec![0.0, 0.0],
            weighted_degrees: vec![0.0, 0.0],
            total_weight: 0.0,
            num_edges: 1,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn adjacency_entries_double_counts_non_loops() {
        let g = triangle_with_loop();
        let total: f64 = g.adjacency_entries().map(|(_, _, w)| w).sum();
        // Non-loop weights twice (1+2+3)*2, self-loop once (4) = 16 = 2m.
        assert_eq!(total, 2.0 * g.total_weight());
    }
}
