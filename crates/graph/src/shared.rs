//! A raw view of a slice written at provably disjoint indices by parallel
//! workers — the scatter idiom shared by the graph builder's histogram /
//! scatter stages and the core crate's flat rebuild assembly.

/// Raw view of a slice written at provably disjoint indices by parallel
/// workers. Every use site must state its disjointness argument: no index
/// may be read or written by more than one worker while the view is live.
pub struct SharedSlice<T> {
    ptr: *mut T,
}

unsafe impl<T: Send> Send for SharedSlice<T> {}
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T: Copy> SharedSlice<T> {
    /// Wraps `slice`; the view must not outlive it (the borrow checker
    /// enforces this at the use sites, which keep the `&mut` borrow alive
    /// for the scatter's duration).
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
        }
    }

    /// # Safety
    /// `i` must be in bounds and not concurrently written.
    pub unsafe fn read(&self, i: usize) -> T {
        *self.ptr.add(i)
    }

    /// # Safety
    /// `i` must be in bounds and not concurrently read or written.
    pub unsafe fn write(&self, i: usize, value: T) {
        *self.ptr.add(i) = value;
    }
}
