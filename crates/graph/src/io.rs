//! Graph serialization: whitespace edge-list text, METIS (the DIMACS10
//! distribution format of the paper's inputs), the versioned `.grb` binary
//! graph format, and a legacy compact binary format (`.bin`).
//!
//! `.grb` ([`write_grb`]/[`read_grb`], [`save_binary`]/[`load_binary`])
//! serializes the CSR arrays directly, so big benchmark graphs load in
//! O(read) instead of re-parsing and re-sorting an edge list.
//!
//! All readers produce graphs satisfying [`crate::csr::CsrGraph::validate`];
//! all writers round-trip exactly with their readers (under test).

use crate::builder::{BuildError, GraphBuilder};
use crate::csr::{CsrGraph, VertexId, DEFAULT_WEIGHT};
use crate::shared::SharedSlice;
use bytes::{Buf, BufMut, BytesMut};
use rayon::prelude::*;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O and parse errors.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed input at a given 1-based line (0 for binary formats).
    Parse {
        /// 1-based line number, or 0 for binary formats.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The parsed edge list failed graph validation.
    Build(BuildError),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<BuildError> for IoError {
    fn from(e: BuildError) -> Self {
        IoError::Build(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error (line {line}): {message}"),
            IoError::Build(e) => write!(f, "graph build error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Edge-list text format
// ---------------------------------------------------------------------------

/// Reads a whitespace-separated edge list: `u v [w]` per line, 0-based vertex
/// ids, optional weight (default 1). Lines starting with `#` or `%` are
/// comments. The vertex count is `1 + max id` unless a larger `n` is given.
pub fn read_edge_list<R: Read>(reader: R, n: Option<usize>) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u64 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad source id: {e}")))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target id"))?
            .parse()
            .map_err(|e| parse_err(lineno, format!("bad target id: {e}")))?;
        let w: f64 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|e| parse_err(lineno, format!("bad weight: {e}")))?,
            None => DEFAULT_WEIGHT,
        };
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens after weight"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let inferred = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let n = n.unwrap_or(inferred).max(inferred);
    Ok(GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()?)
}

/// Writes the graph as an edge list (`u v w` per undirected edge, once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# grappolo edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, wt) in g.undirected_edges() {
        writeln!(w, "{u} {v} {wt}")?;
    }
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// METIS format (DIMACS10 distribution format)
// ---------------------------------------------------------------------------

/// Reads a METIS graph file.
///
/// Header: `n m [fmt]` where `fmt` ∈ {`0`/absent: unweighted, `1`: edge
/// weights}; vertex-weighted variants (`10`, `11`) are accepted and vertex
/// weights skipped. Vertex ids in the body are 1-based. Self-loops appear
/// once; mutual entries are merged by the builder (METIS lists each edge in
/// both endpoints' lines, so `MergePolicy::Max` keeps the weight as-is).
pub fn read_metis<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    // Header: first non-comment line.
    let (n, _m, has_edge_weights, has_vertex_weights) = loop {
        let (idx, line) = lines
            .next()
            .ok_or_else(|| parse_err(0, "empty METIS file"))?;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let toks: Vec<&str> = t.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(parse_err(idx + 1, "METIS header needs `n m [fmt]`"));
        }
        let n: usize = toks[0]
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad n: {e}")))?;
        let m: usize = toks[1]
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad m: {e}")))?;
        let fmt = toks.get(2).copied().unwrap_or("0");
        let (vw, ew) = match fmt {
            "0" | "00" => (false, false),
            "1" | "01" => (false, true),
            "10" => (true, false),
            "11" => (true, true),
            other => return Err(parse_err(idx + 1, format!("unsupported fmt `{other}`"))),
        };
        break (n, m, ew, vw);
    };

    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    let mut vertex = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        if vertex >= n {
            if t.is_empty() {
                continue;
            }
            return Err(parse_err(idx + 1, "more vertex lines than n"));
        }
        let u = vertex as VertexId;
        vertex += 1;
        let mut toks = t.split_whitespace();
        if has_vertex_weights {
            toks.next(); // skip the vertex weight
        }
        while let Some(vt) = toks.next() {
            let v: usize = vt
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad neighbor id: {e}")))?;
            if v == 0 || v > n {
                return Err(parse_err(
                    idx + 1,
                    format!("neighbor id {v} out of 1..={n}"),
                ));
            }
            let w = if has_edge_weights {
                let wt = toks
                    .next()
                    .ok_or_else(|| parse_err(idx + 1, "missing edge weight"))?;
                wt.parse()
                    .map_err(|e| parse_err(idx + 1, format!("bad edge weight: {e}")))?
            } else {
                DEFAULT_WEIGHT
            };
            let v = (v - 1) as VertexId;
            // Each undirected edge occurs in both endpoint lines: keep the
            // occurrence with u <= v only (self-loops occur once per line
            // they appear on; METIS semantics list a loop on its own line).
            if u <= v {
                edges.push((u, v, w));
            }
        }
    }
    if vertex != n {
        return Err(parse_err(
            0,
            format!("expected {n} vertex lines, found {vertex}"),
        ));
    }
    Ok(GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()?)
}

/// Writes the graph in METIS format with edge weights (`fmt = 1`). Weights
/// are written with full float precision (a superset of classic integer
/// METIS, accepted by our reader).
pub fn write_metis<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{} {} 1", g.num_vertices(), g.num_edges())?;
    for v in 0..g.num_vertices() as VertexId {
        let mut first = true;
        for (u, wt) in g.neighbors(v) {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{} {}", u + 1, wt)?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// .grb — versioned binary graph format
// ---------------------------------------------------------------------------

/// Magic prefix of a `.grb` file.
pub const GRB_MAGIC: &[u8; 8] = b"GRPLGRB\0";
/// The legacy single-section `.grb` layout (one contiguous run per array).
pub const GRB_VERSION_V1: u16 = 1;
/// The sectioned `.grb` layout: vertex-range chunks behind a chunk table,
/// written streamed and decoded in parallel.
pub const GRB_VERSION_V2: u16 = 2;
/// The version [`save_binary`] writes.
pub const GRB_VERSION: u16 = GRB_VERSION_V2;
/// Fixed v1 header size: magic (8) + version (2) + flags (2) + n (8) +
/// entries (8).
const GRB_HEADER_LEN: usize = 28;
/// Fixed v2 header size: the v1 header + chunk size (8) + chunk count (8).
const GRB_V2_HEADER_LEN: usize = 44;
/// Bytes per chunk-table record: first vertex, vertex count, first adjacency
/// entry, entry count, payload checksum — each `u64`.
const GRB_V2_TABLE_RECORD: usize = 40;

/// Incremental FNV-1a-64 over `u64` words — the v2 per-chunk checksum.
///
/// Hashing the chunk's *decoded logical words* (each `offsets[v+1]`, each
/// neighbor id zero-extended, each weight's bit pattern) rather than raw
/// bytes lets the writer fold the hash over the CSR arrays directly and the
/// reader fold it into its decode loop; the two are equivalent because every
/// word maps bijectively to its little-endian byte run.
#[derive(Clone, Copy)]
struct GrbChecksum(u64);

impl GrbChecksum {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET_BASIS)
    }

    #[inline]
    fn push(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(Self::PRIME);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Serializes the CSR arrays into the versioned `.grb` layout — all
/// little-endian:
///
/// | bytes          | field                          |
/// |----------------|--------------------------------|
/// | 0..8           | magic `"GRPLGRB\0"`            |
/// | 8..10          | version (`u16`, currently 1)   |
/// | 10..12         | flags (`u16`, reserved, 0)     |
/// | 12..20         | vertex count `n` (`u64`)       |
/// | 20..28         | adjacency entry count (`u64`)  |
/// | …              | offsets: `(n+1) × u64`         |
/// | …              | neighbor ids: `entries × u32`  |
/// | …              | weights: `entries × f64`       |
///
/// Loading is O(read): the arrays deserialize straight back into CSR form
/// with no re-parsing, re-sorting, or duplicate merging.
///
/// This writes the **legacy v1** layout, kept for compatibility tests and
/// for pinning the v1 read path; [`save_binary`] writes the sectioned v2
/// layout ([`write_grb_v2`]).
pub fn write_grb<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    let n = g.num_vertices();
    let entries = g.num_adjacency_entries();
    let mut out = Vec::with_capacity(GRB_HEADER_LEN + (n + 1) * 8 + entries * 12);
    out.extend_from_slice(GRB_MAGIC);
    out.extend_from_slice(&GRB_VERSION_V1.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(entries as u64).to_le_bytes());
    for &off in g.adjacency_offsets() {
        out.extend_from_slice(&(off as u64).to_le_bytes());
    }
    for &t in g.adjacency_targets() {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for &w in g.adjacency_weights() {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    let mut w = BufWriter::new(writer);
    w.write_all(&out)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a `.grb` buffer in either layout — the version field
/// selects the decoder, so v1 files written before the sectioned format stay
/// fully readable (and bitwise stable, under test). The resulting graph is
/// bitwise identical to the one serialized (offsets, neighbor ids and weight
/// bits round-trip exactly).
pub fn read_grb<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut data = Vec::new();
    BufReader::new(reader).read_to_end(&mut data)?;
    parse_grb(&data)
}

fn parse_grb(data: &[u8]) -> Result<CsrGraph, IoError> {
    if data.len() < GRB_HEADER_LEN {
        return Err(parse_err(0, ".grb truncated: incomplete header"));
    }
    if &data[0..8] != GRB_MAGIC {
        return Err(parse_err(0, "bad magic; not a .grb graph file"));
    }
    let version = u16::from_le_bytes(data[8..10].try_into().unwrap());
    match version {
        GRB_VERSION_V1 => parse_grb_v1(data),
        GRB_VERSION_V2 => parse_grb_v2(data),
        _ => Err(parse_err(
            0,
            format!(
                ".grb version {version} unsupported (expected {GRB_VERSION_V1} or {GRB_VERSION_V2})"
            ),
        )),
    }
}

fn parse_grb_v1(data: &[u8]) -> Result<CsrGraph, IoError> {
    let n = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
    let entries = u64::from_le_bytes(data[20..28].try_into().unwrap()) as usize;
    // Fully checked size arithmetic: a crafted header (e.g. n = u64::MAX)
    // must come back as an error, never an overflow panic.
    let need = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| entries.checked_mul(12).and_then(|e| o.checked_add(e)))
        .and_then(|body| body.checked_add(GRB_HEADER_LEN))
        .ok_or_else(|| parse_err(0, ".grb header sizes overflow"))?;
    if data.len() != need {
        return Err(parse_err(
            0,
            format!(
                ".grb truncated or oversized: have {} bytes, need {need}",
                data.len()
            ),
        ));
    }
    let mut at = GRB_HEADER_LEN;
    let offsets: Vec<usize> = data[at..at + (n + 1) * 8]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
        .collect();
    at += (n + 1) * 8;
    let targets: Vec<VertexId> = data[at..at + entries * 4]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    at += entries * 4;
    let weights: Vec<f64> = data[at..at + entries * 8]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    // The fallible constructor turns every invariant violation (corrupt
    // offsets, unsorted or asymmetric adjacency, non-positive weights) into
    // an error instead of a panic.
    CsrGraph::try_from_sorted_adjacency(offsets, targets, weights)
        .map_err(|m| parse_err(0, format!(".grb payload invalid: {m}")))
}

/// Vertices per chunk [`write_grb_v2`] sections a graph into: about 64
/// chunks on large graphs (plenty of parallel decode slack for any realistic
/// pool, with stealing absorbing degree skew between vertex ranges), floored
/// so tiny graphs don't pay table overhead per handful of vertices.
pub fn grb_v2_chunk_vertices(n: usize) -> usize {
    n.div_ceil(64).max(4096)
}

/// Serializes the CSR arrays into the sectioned v2 `.grb` layout — all
/// little-endian:
///
/// | bytes          | field                                        |
/// |----------------|----------------------------------------------|
/// | 0..8           | magic `"GRPLGRB\0"`                          |
/// | 8..10          | version (`u16`, 2)                           |
/// | 10..12         | flags (`u16`, reserved, 0)                   |
/// | 12..20         | vertex count `n` (`u64`)                     |
/// | 20..28         | adjacency entry count (`u64`)                |
/// | 28..36         | vertices per chunk (`u64`)                   |
/// | 36..44         | chunk count (`u64`)                          |
/// | …              | chunk table: per chunk, 5 × `u64` —          |
/// |                | first vertex, vertex count, first entry,     |
/// |                | entry count, payload checksum (FNV-1a-64     |
/// |                | over the chunk's decoded words)              |
/// | …              | per chunk, in order: offsets (`count × u64`, |
/// |                | the absolute `offsets[v+1]` run), neighbor   |
/// |                | ids (`entries × u32`), weights (`entries ×   |
/// |                | f64` bit patterns)                           |
///
/// The write is **streamed**: header and table first, then one chunk's
/// sections at a time through a reused buffer, so peak transient memory is
/// one chunk rather than the whole serialized graph. The chunk table gives
/// the reader an independent byte range and entry range per chunk, which is
/// what lets [`read_grb`] decode and bounds-check chunks in parallel.
///
/// The per-chunk checksum carries the writer's validity guarantee across the
/// round-trip: only already-validated [`CsrGraph`]s are ever serialized, so a
/// checksum-verified chunk needs just the linear structural checks on load
/// (offsets monotone and range-closing, neighbor ids in range and strictly
/// ascending per vertex, weights finite and positive) — the O(m log deg)
/// mirror-symmetry search the v1 loader must re-run is skipped. Corrupted
/// bytes that survive the linear checks fail the checksum with a
/// chunk-indexed error.
pub fn write_grb_v2<W: Write>(g: &CsrGraph, writer: W) -> Result<(), IoError> {
    write_grb_v2_chunked(g, writer, grb_v2_chunk_vertices(g.num_vertices()))
}

/// [`write_grb_v2`] with an explicit chunk granularity (exposed for tests;
/// any `chunk_vertices ≥ 1` produces a valid, bitwise round-tripping file).
pub fn write_grb_v2_chunked<W: Write>(
    g: &CsrGraph,
    writer: W,
    chunk_vertices: usize,
) -> Result<(), IoError> {
    let n = g.num_vertices();
    let entries = g.num_adjacency_entries();
    let chunk_vertices = chunk_vertices.max(1);
    let num_chunks = n.div_ceil(chunk_vertices);
    let offsets = g.adjacency_offsets();

    let mut w = BufWriter::new(writer);
    let mut head = Vec::with_capacity(GRB_V2_HEADER_LEN + num_chunks * GRB_V2_TABLE_RECORD);
    head.extend_from_slice(GRB_MAGIC);
    head.extend_from_slice(&GRB_VERSION_V2.to_le_bytes());
    head.extend_from_slice(&0u16.to_le_bytes());
    head.extend_from_slice(&(n as u64).to_le_bytes());
    head.extend_from_slice(&(entries as u64).to_le_bytes());
    head.extend_from_slice(&(chunk_vertices as u64).to_le_bytes());
    head.extend_from_slice(&(num_chunks as u64).to_le_bytes());
    for c in 0..num_chunks {
        let first_v = c * chunk_vertices;
        let last_v = (first_v + chunk_vertices).min(n);
        let (e_lo, e_hi) = (offsets[first_v], offsets[last_v]);
        head.extend_from_slice(&(first_v as u64).to_le_bytes());
        head.extend_from_slice(&((last_v - first_v) as u64).to_le_bytes());
        head.extend_from_slice(&(e_lo as u64).to_le_bytes());
        head.extend_from_slice(&((e_hi - e_lo) as u64).to_le_bytes());
        let mut sum = GrbChecksum::new();
        for &off in &offsets[first_v + 1..=last_v] {
            sum.push(off as u64);
        }
        for &t in &g.adjacency_targets()[e_lo..e_hi] {
            sum.push(t as u64);
        }
        for &wt in &g.adjacency_weights()[e_lo..e_hi] {
            sum.push(wt.to_bits());
        }
        head.extend_from_slice(&sum.finish().to_le_bytes());
    }
    w.write_all(&head)?;

    let mut buf = Vec::new();
    for c in 0..num_chunks {
        let first_v = c * chunk_vertices;
        let last_v = (first_v + chunk_vertices).min(n);
        let (e_lo, e_hi) = (offsets[first_v], offsets[last_v]);
        buf.clear();
        buf.reserve((last_v - first_v) * 8 + (e_hi - e_lo) * 12);
        for &off in &offsets[first_v + 1..=last_v] {
            buf.extend_from_slice(&(off as u64).to_le_bytes());
        }
        for &t in &g.adjacency_targets()[e_lo..e_hi] {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        for &wt in &g.adjacency_weights()[e_lo..e_hi] {
            buf.extend_from_slice(&wt.to_bits().to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// One parsed chunk-table record of a v2 file.
#[derive(Clone, Copy)]
struct GrbChunk {
    first_vertex: usize,
    num_vertices: usize,
    first_entry: usize,
    num_entries: usize,
    /// Stored payload checksum ([`GrbChecksum`] over the decoded words).
    checksum: u64,
    /// Byte offset of this chunk's payload within the file.
    payload_at: usize,
}

impl GrbChunk {
    fn payload_len(&self) -> Option<usize> {
        let v = self.num_vertices.checked_mul(8)?;
        let e = self.num_entries.checked_mul(12)?;
        v.checked_add(e)
    }
}

fn parse_grb_v2(data: &[u8]) -> Result<CsrGraph, IoError> {
    let chunk_err = |c: usize, msg: String| parse_err(0, format!(".grb v2 chunk {c}: {msg}"));
    if data.len() < GRB_V2_HEADER_LEN {
        return Err(parse_err(0, ".grb v2 truncated: incomplete header"));
    }
    let n = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
    let entries = u64::from_le_bytes(data[20..28].try_into().unwrap()) as usize;
    let chunk_vertices = u64::from_le_bytes(data[28..36].try_into().unwrap()) as usize;
    let num_chunks = u64::from_le_bytes(data[36..44].try_into().unwrap()) as usize;
    if n > 0 && chunk_vertices == 0 {
        return Err(parse_err(0, ".grb v2 chunk size must be positive"));
    }
    if num_chunks != n.div_ceil(chunk_vertices.max(1)) {
        return Err(parse_err(
            0,
            format!(
                ".grb v2 chunk count {num_chunks} inconsistent with {n} vertices / {chunk_vertices} per chunk"
            ),
        ));
    }
    // Fully checked size arithmetic, as in v1: a crafted header must come
    // back as an error, never an overflow panic.
    let need = num_chunks
        .checked_mul(GRB_V2_TABLE_RECORD)
        .and_then(|t| t.checked_add(GRB_V2_HEADER_LEN))
        .and_then(|h| n.checked_mul(8).and_then(|o| h.checked_add(o)))
        .and_then(|h| entries.checked_mul(12).and_then(|e| h.checked_add(e)))
        .ok_or_else(|| parse_err(0, ".grb v2 header sizes overflow"))?;
    if data.len() != need {
        return Err(parse_err(
            0,
            format!(
                ".grb v2 truncated or oversized: have {} bytes, need {need}",
                data.len()
            ),
        ));
    }

    // The chunk table must tile 0..n and 0..entries contiguously; every
    // violation names the offending chunk.
    let mut chunks = Vec::with_capacity(num_chunks);
    let mut payload_at = GRB_V2_HEADER_LEN + num_chunks * GRB_V2_TABLE_RECORD;
    let (mut next_vertex, mut next_entry) = (0usize, 0usize);
    for c in 0..num_chunks {
        let at = GRB_V2_HEADER_LEN + c * GRB_V2_TABLE_RECORD;
        let field =
            |i: usize| u64::from_le_bytes(data[at + i * 8..at + (i + 1) * 8].try_into().unwrap());
        let chunk = GrbChunk {
            first_vertex: field(0) as usize,
            num_vertices: field(1) as usize,
            first_entry: field(2) as usize,
            num_entries: field(3) as usize,
            checksum: field(4),
            payload_at,
        };
        if chunk.first_vertex != next_vertex {
            return Err(chunk_err(
                c,
                format!(
                    "first vertex {} does not continue the previous chunk (expected {next_vertex})",
                    chunk.first_vertex
                ),
            ));
        }
        if chunk.first_entry != next_entry {
            return Err(chunk_err(
                c,
                format!(
                    "first entry {} does not continue the previous chunk (expected {next_entry})",
                    chunk.first_entry
                ),
            ));
        }
        if chunk.num_vertices == 0 || chunk.num_vertices > chunk_vertices {
            return Err(chunk_err(
                c,
                format!(
                    "vertex count {} outside 1..={chunk_vertices}",
                    chunk.num_vertices
                ),
            ));
        }
        next_vertex = chunk
            .first_vertex
            .checked_add(chunk.num_vertices)
            .ok_or_else(|| chunk_err(c, "vertex range overflows".into()))?;
        next_entry = chunk
            .first_entry
            .checked_add(chunk.num_entries)
            .ok_or_else(|| chunk_err(c, "entry range overflows".into()))?;
        let len = chunk
            .payload_len()
            .ok_or_else(|| chunk_err(c, "payload size overflows".into()))?;
        payload_at = payload_at
            .checked_add(len)
            .ok_or_else(|| chunk_err(c, "payload offset overflows".into()))?;
        if payload_at > data.len() {
            return Err(chunk_err(
                c,
                format!(
                    "payload truncated: section ends at byte {payload_at}, file has {}",
                    data.len()
                ),
            ));
        }
        chunks.push(chunk);
    }
    if next_vertex != n {
        return Err(parse_err(
            0,
            format!(".grb v2 chunk table covers {next_vertex} of {n} vertices"),
        ));
    }
    if next_entry != entries {
        return Err(parse_err(
            0,
            format!(".grb v2 chunk table covers {next_entry} of {entries} adjacency entries"),
        ));
    }

    // Parallel chunk decode: every chunk owns a disjoint slice of each CSR
    // array (its vertex range / entry range from the validated table), so
    // workers scatter through raw views and any thread may decode any chunk.
    let mut offsets = vec![0usize; n + 1];
    let mut targets = vec![0 as VertexId; entries];
    let mut weights = vec![0.0f64; entries];
    let offsets_view = SharedSlice::new(&mut offsets);
    let targets_view = SharedSlice::new(&mut targets);
    let weights_view = SharedSlice::new(&mut weights);
    let errors: Vec<Option<(usize, String)>> = (0..num_chunks)
        .into_par_iter()
        .map(|c| {
            let chunk = &chunks[c];
            let mut at = chunk.payload_at;
            let mut sum = GrbChecksum::new();
            // Chunk-local offsets (closing boundary of each vertex's
            // adjacency run) — kept so the target scan below can check
            // per-vertex sorted order without re-reading the shared array.
            let mut local_off = Vec::with_capacity(chunk.num_vertices + 1);
            local_off.push(chunk.first_entry);
            let mut prev = chunk.first_entry;
            for i in 0..chunk.num_vertices {
                let off = u64::from_le_bytes(data[at..at + 8].try_into().unwrap()) as usize;
                sum.push(off as u64);
                if off < prev || off > chunk.first_entry + chunk.num_entries {
                    return Some((
                        c,
                        format!(
                            "offset {off} for vertex {} outside its entry range \
                             {}..={} or non-monotonic",
                            chunk.first_vertex + i,
                            chunk.first_entry,
                            chunk.first_entry + chunk.num_entries,
                        ),
                    ));
                }
                // SAFETY: slot first_vertex+i+1 belongs to this chunk alone
                // (the table tiles vertex ranges disjointly).
                unsafe { offsets_view.write(chunk.first_vertex + i + 1, off) };
                local_off.push(off);
                prev = off;
                at += 8;
            }
            if prev != chunk.first_entry + chunk.num_entries {
                return Some((
                    c,
                    format!(
                        "last offset {prev} does not close the chunk's entry range at {}",
                        chunk.first_entry + chunk.num_entries
                    ),
                ));
            }
            let mut v_idx = 0usize;
            let mut prev_t: Option<VertexId> = None;
            for i in 0..chunk.num_entries {
                let e = chunk.first_entry + i;
                while e >= local_off[v_idx + 1] {
                    v_idx += 1;
                    prev_t = None;
                }
                let t = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
                sum.push(t as u64);
                if t as usize >= n {
                    return Some((
                        c,
                        format!(
                            "neighbor id {t} of vertex {} out of range (n = {n})",
                            chunk.first_vertex + v_idx
                        ),
                    ));
                }
                if prev_t.is_some_and(|p| t <= p) {
                    return Some((
                        c,
                        format!(
                            "adjacency of vertex {} not strictly ascending at entry {e}",
                            chunk.first_vertex + v_idx
                        ),
                    ));
                }
                prev_t = Some(t);
                // SAFETY: entry slot belongs to this chunk alone.
                unsafe { targets_view.write(e, t) };
                at += 4;
            }
            for i in 0..chunk.num_entries {
                let bits = u64::from_le_bytes(data[at..at + 8].try_into().unwrap());
                sum.push(bits);
                let w = f64::from_bits(bits);
                if !(w.is_finite() && w > 0.0) {
                    return Some((
                        c,
                        format!(
                            "weight {w} at entry {} not finite and positive",
                            chunk.first_entry + i
                        ),
                    ));
                }
                // SAFETY: entry slot belongs to this chunk alone.
                unsafe { weights_view.write(chunk.first_entry + i, w) };
                at += 8;
            }
            if sum.finish() != chunk.checksum {
                return Some((
                    c,
                    format!(
                        "payload checksum mismatch (stored {:#018x}, computed {:#018x})",
                        chunk.checksum,
                        sum.finish()
                    ),
                ));
            }
            None
        })
        .collect();
    if let Some((c, msg)) = errors.into_iter().flatten().min_by_key(|(c, _)| *c) {
        return Err(chunk_err(c, msg));
    }

    // Trust model: the decode above already enforced every CSR invariant a
    // linear scan can see (offsets tile and close, neighbor ids in range and
    // strictly ascending per vertex, weights finite and positive), and the
    // per-chunk checksums tie the payload back to the writer — which only
    // ever serializes validated graphs. The one remaining v1-loader check,
    // the O(m log deg) mirror-symmetry search, is therefore skipped here; it
    // dominates the v1 load path and is exactly what makes checksum-verified
    // v2 loads fast. All downstream access is bounds-checked, so even an
    // adversarial file that forged its checksums stays memory-safe.
    Ok(CsrGraph::from_sorted_adjacency(offsets, targets, weights))
}

/// Saves `g` to `path` in the current sectioned `.grb` format (see
/// [`write_grb_v2`]); [`load_binary`] reads either version. The write is
/// crash-safe: it streams into a temp sibling and atomically renames over
/// `path` (see [`write_atomic`]), so a crash mid-write can never leave a
/// truncated `.grb` behind.
pub fn save_binary(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    write_atomic(path, |w| write_grb_v2(g, w))
}

/// Loads a `.grb` file in O(read) time — v2 sections decode in parallel
/// across the resident pool; legacy v1 files use the original single-shot
/// decoder unchanged.
pub fn load_binary(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    read_grb(std::fs::File::open(path)?)
}

// ---------------------------------------------------------------------------
// Legacy binary format (.bin)
// ---------------------------------------------------------------------------

const BINARY_MAGIC: &[u8; 8] = b"GRPPOLO1";

/// Serializes the CSR arrays to a compact little-endian binary buffer:
/// magic, n, entry count, offsets (u64), targets (u32), weights (f64).
pub fn to_binary(g: &CsrGraph) -> Vec<u8> {
    let n = g.num_vertices();
    let entries = g.num_adjacency_entries();
    let mut buf = BytesMut::with_capacity(8 + 16 + (n + 1) * 8 + entries * 12);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(entries as u64);
    for v in 0..=n {
        let off = if v == 0 {
            0
        } else {
            g.neighbor_range((v - 1) as VertexId).end
        };
        buf.put_u64_le(off as u64);
    }
    for v in 0..n as VertexId {
        for &t in g.neighbor_ids(v) {
            buf.put_u32_le(t);
        }
    }
    for v in 0..n as VertexId {
        for &wt in g.neighbor_weights(v) {
            buf.put_f64_le(wt);
        }
    }
    buf.to_vec()
}

/// Deserializes a buffer produced by [`to_binary`].
pub fn from_binary(data: &[u8]) -> Result<CsrGraph, IoError> {
    let mut buf = data;
    if buf.remaining() < 24 {
        return Err(parse_err(0, "binary graph truncated (header)"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(parse_err(0, "bad magic; not a grappolo binary graph"));
    }
    let n = buf.get_u64_le() as usize;
    let entries = buf.get_u64_le() as usize;
    let need = (n + 1) * 8 + entries * 12;
    if buf.remaining() != need {
        return Err(parse_err(
            0,
            format!(
                "binary graph size mismatch: have {}, need {need}",
                buf.remaining()
            ),
        ));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    let mut targets = Vec::with_capacity(entries);
    for _ in 0..entries {
        targets.push(buf.get_u32_le());
    }
    let mut weights = Vec::with_capacity(entries);
    for _ in 0..entries {
        weights.push(buf.get_f64_le());
    }
    CsrGraph::try_from_sorted_adjacency(offsets, targets, weights)
        .map_err(|m| parse_err(0, format!("binary graph offsets corrupt: {m}")))
}

// ---------------------------------------------------------------------------
// Path helpers
// ---------------------------------------------------------------------------

/// Monotone discriminator for temp-file names, so concurrent writers in one
/// process never collide on the same sibling.
static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// A hidden temp sibling in the same directory as `path` (same filesystem,
/// so the final rename is atomic). The name carries the pid and a counter;
/// collisions across crashed runs are harmless because the temp is always
/// recreated with `File::create` (truncate).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_string());
    let k = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    path.with_file_name(format!(".{name}.tmp.{}.{k}", std::process::id()))
}

/// Crash-safe file replacement: `write` streams into a temp sibling, the
/// temp is flushed and fsynced, and only then renamed over `path`. A crash,
/// power cut, or injected fault at any point leaves either the old file
/// intact or no file — never a truncated one. On any error the temp is
/// removed before the error propagates.
///
/// The containing directory is fsynced after the rename (best effort) so
/// the new directory entry is durable too.
pub fn write_atomic(
    path: impl AsRef<Path>,
    write: impl FnOnce(&mut BufWriter<std::fs::File>) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let path = path.as_ref();
    let tmp = temp_sibling(path);
    let result = (|| -> Result<(), IoError> {
        let f = std::fs::File::create(&tmp)?;
        let mut w = BufWriter::new(f);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`write_atomic`] for a prepared byte buffer — the crash-safe replacement
/// for `std::fs::write` used by assignment/trace emitters.
pub fn write_bytes_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), IoError> {
    write_atomic(path, |w| Ok(w.write_all(bytes)?))
}

/// Test/CI support: names of [`write_atomic`] temp siblings left in `dir`.
/// A clean run — even one whose writes were crashed or fault-injected —
/// leaves this empty.
pub fn list_tmp_siblings(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect()
}

/// Loads a graph, dispatching on extension: `.txt`/`.edges` edge list,
/// `.graph`/`.metis` METIS, `.grb` versioned binary, `.bin` legacy binary.
pub fn load_path(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("graph") | Some("metis") => read_metis(f),
        Some("grb") => read_grb(f),
        Some("bin") => {
            let mut data = Vec::new();
            BufReader::new(f).read_to_end(&mut data)?;
            from_binary(&data)
        }
        _ => read_edge_list(f, None),
    }
}

/// Saves a graph, dispatching on extension like [`load_path`]. Every
/// format goes through [`write_atomic`]: the bytes land in a temp sibling
/// that is fsynced and atomically renamed over `path`, so a crash or an
/// injected fault mid-write leaves the previous file (or nothing), never a
/// truncated graph.
pub fn save_path(g: &CsrGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    match path.extension().and_then(|e| e.to_str()) {
        Some("graph") | Some("metis") => write_atomic(path, |w| write_metis(g, w)),
        Some("grb") => write_atomic(path, |w| write_grb_v2(g, w)),
        Some("bin") => write_atomic(path, |w| Ok(w.write_all(&to_binary(g))?)),
        _ => write_atomic(path, |w| write_edge_list(g, w)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_weighted_edges;

    fn sample() -> CsrGraph {
        from_weighted_edges(
            4,
            [
                (0, 1, 1.0),
                (1, 2, 2.5),
                (2, 3, 0.75),
                (3, 0, 1.0),
                (1, 1, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], None).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..4 {
            let a: Vec<_> = g.neighbors(v).collect();
            let b: Vec<_> = g2.neighbors(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn edge_list_comments_and_defaults() {
        let text = "# comment\n% another\n0 1\n1 2 2.5\n\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.5));
    }

    #[test]
    fn edge_list_explicit_n_pads_isolated() {
        let g = read_edge_list("0 1\n".as_bytes(), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), None).is_err());
        assert!(read_edge_list("0\n".as_bytes(), None).is_err());
        assert!(read_edge_list("0 1 2 3\n".as_bytes(), None).is_err());
    }

    #[test]
    fn metis_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_weight(), g.total_weight());
        assert_eq!(g2.self_loop_weight(1), 3.0);
    }

    #[test]
    fn metis_unweighted_parse() {
        // 3-path: 1-2-3 in 1-based METIS ids.
        let text = "3 2\n2\n1 3\n2\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn metis_with_comments() {
        let text = "% hello\n3 2\n% mid comment\n2\n1 3\n2\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn metis_rejects_bad_ids() {
        let text = "3 2\n4\n1 3\n2\n"; // neighbor 4 > n=3
        assert!(read_metis(text.as_bytes()).is_err());
        let text2 = "3 2\n0\n1 3\n2\n"; // neighbor 0 invalid (1-based)
        assert!(read_metis(text2.as_bytes()).is_err());
    }

    #[test]
    fn metis_wrong_line_count() {
        assert!(read_metis("3 1\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let bytes = to_binary(&g);
        let g2 = from_binary(&bytes).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in 0..4 {
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                g2.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let mut bytes = to_binary(&g);
        bytes[0] = b'X';
        assert!(from_binary(&bytes).is_err());
        let bytes2 = to_binary(&g);
        assert!(from_binary(&bytes2[..bytes2.len() - 4]).is_err());
        assert!(from_binary(&[1, 2, 3]).is_err());
    }

    #[test]
    fn path_dispatch_round_trip() {
        let dir = std::env::temp_dir().join("grappolo_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        for name in ["g.edges", "g.graph", "g.bin", "g.grb"] {
            let p = dir.join(name);
            save_path(&g, &p).unwrap();
            let g2 = load_path(&p).unwrap();
            assert_eq!(g2.num_edges(), g.num_edges(), "format {name}");
            assert!((g2.total_weight() - g.total_weight()).abs() < 1e-12);
        }
    }

    fn assert_grb_bitwise_equal(a: &CsrGraph, b: &CsrGraph) {
        assert!(a.bitwise_eq(b), "CSR storage not bitwise equal");
    }

    #[test]
    fn grb_round_trip_is_bitwise_exact() {
        // Edge list → CSR → .grb → CSR with awkward weights (subnormal-ish
        // fractions, repeated values) and a self-loop.
        let g = from_weighted_edges(
            5,
            [
                (0, 1, 0.1),
                (1, 2, 1.0 / 3.0),
                (2, 3, 2.5e-13),
                (3, 4, 7.0),
                (4, 0, 0.1),
                (2, 2, 1.5),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_grb(&g, &mut buf).unwrap();
        let g2 = read_grb(&buf[..]).unwrap();
        assert_grb_bitwise_equal(&g, &g2);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_weight().to_bits(), g.total_weight().to_bits());
    }

    #[test]
    fn grb_save_load_binary_path_helpers() {
        let dir = std::env::temp_dir().join("grappolo_io_test_grb");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("sample.grb");
        let g = sample();
        save_binary(&g, &p).unwrap();
        let g2 = load_binary(&p).unwrap();
        assert_grb_bitwise_equal(&g, &g2);
    }

    #[test]
    fn grb_empty_graph_round_trip() {
        let g = CsrGraph::empty(3);
        let mut buf = Vec::new();
        write_grb(&g, &mut buf).unwrap();
        let g2 = read_grb(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn grb_zero_vertex_graph_round_trip() {
        let g = CsrGraph::empty(0);
        let mut buf = Vec::new();
        write_grb(&g, &mut buf).unwrap();
        let g2 = read_grb(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
        assert_grb_bitwise_equal(&g, &g2);
        // Truncating any prefix of the (header + single offset) payload
        // errors instead of panicking.
        for keep in 0..buf.len() {
            assert!(read_grb(&buf[..keep]).is_err(), "keep={keep}");
        }
        // Trailing garbage is rejected: the format is exact-size even at n=0.
        let mut padded = buf.clone();
        padded.push(0);
        assert!(read_grb(&padded[..]).is_err());
    }

    #[test]
    fn binary_zero_vertex_graph_round_trip() {
        let g = CsrGraph::empty(0);
        let bytes = to_binary(&g);
        let g2 = from_binary(&bytes).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_edges(), 0);
        for keep in 0..bytes.len() {
            assert!(from_binary(&bytes[..keep]).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn binary_rejects_nonmonotonic_offsets_without_panicking() {
        // Decreasing interior offsets pass the old first/last sentinel check;
        // the reader must return a parse error, not panic downstream.
        let g = from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let mut bytes = to_binary(&g);
        // Offsets section starts after the 8-byte magic + two u64 counts.
        let offsets_at = 8 + 16;
        bytes[offsets_at + 8..offsets_at + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = from_binary(&bytes).unwrap_err();
        assert!(err.to_string().contains("offsets"), "{err}");
    }

    #[test]
    fn grb_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_grb(&sample(), &mut buf).unwrap();
        buf[3] ^= 0xFF;
        let err = read_grb(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn grb_rejects_unsupported_version() {
        let mut buf = Vec::new();
        write_grb(&sample(), &mut buf).unwrap();
        buf[8] = 0xEE; // version LSB
        let err = read_grb(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn grb_rejects_truncation_at_every_section() {
        let mut buf = Vec::new();
        write_grb(&sample(), &mut buf).unwrap();
        // Header, offsets, targets and weights truncations all fail cleanly.
        for keep in [0, 10, 27, 40, buf.len() - 1] {
            assert!(read_grb(&buf[..keep]).is_err(), "keep={keep}");
        }
        // Trailing garbage is also rejected (exact-size format).
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0u8; 3]);
        assert!(read_grb(&padded[..]).is_err());
    }

    #[test]
    fn grb_rejects_overflowing_header_sizes() {
        // Valid magic/version but n = u64::MAX: size arithmetic must error,
        // not overflow-panic (debug builds) or allocate absurdly.
        let mut buf = Vec::new();
        buf.extend_from_slice(GRB_MAGIC);
        buf.extend_from_slice(&GRB_VERSION_V1.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_grb(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    #[test]
    fn grb_v2_rejects_overflowing_header_sizes() {
        // A v2 header whose chunk table alone would overflow usize.
        let mut buf = Vec::new();
        buf.extend_from_slice(GRB_MAGIC);
        buf.extend_from_slice(&GRB_VERSION_V2.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // entries
        buf.extend_from_slice(&1u64.to_le_bytes()); // chunk_vertices
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // num_chunks
        let err = read_grb(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("overflow"), "{err}");
    }

    /// A multi-chunk v2 sample: enough vertices that `chunk_vertices = 3`
    /// sections it into several chunks with uneven entry counts.
    fn chain(n: usize) -> CsrGraph {
        let edges: Vec<(VertexId, VertexId, f64)> = (0..n - 1)
            .map(|i| (i as VertexId, (i + 1) as VertexId, 1.0 + i as f64 * 0.25))
            .collect();
        from_weighted_edges(n, edges).unwrap()
    }

    #[test]
    fn grb_v2_round_trip_is_bitwise_exact() {
        let g = chain(11);
        for chunk_vertices in [1, 2, 3, 11, 64] {
            let mut buf = Vec::new();
            write_grb_v2_chunked(&g, &mut buf, chunk_vertices).unwrap();
            let g2 = read_grb(&buf[..]).unwrap();
            assert_grb_bitwise_equal(&g, &g2);
            assert_eq!(g.total_weight().to_bits(), g2.total_weight().to_bits());
        }
    }

    #[test]
    fn grb_v2_matches_v1_bitwise() {
        // The same graph through either writer decodes to bitwise-identical
        // storage — the convert-upgrade guarantee.
        let g = chain(10);
        let (mut v1, mut v2) = (Vec::new(), Vec::new());
        write_grb(&g, &mut v1).unwrap();
        write_grb_v2_chunked(&g, &mut v2, 4).unwrap();
        let g1 = read_grb(&v1[..]).unwrap();
        let g2 = read_grb(&v2[..]).unwrap();
        assert_grb_bitwise_equal(&g1, &g2);
        assert_eq!(g1.total_weight().to_bits(), g2.total_weight().to_bits());
    }

    #[test]
    fn grb_v2_zero_vertex_round_trip() {
        let g = CsrGraph::empty(0);
        let mut buf = Vec::new();
        write_grb_v2(&g, &mut buf).unwrap();
        let g2 = read_grb(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        for keep in 0..buf.len() {
            assert!(read_grb(&buf[..keep]).is_err(), "keep={keep}");
        }
    }

    #[test]
    fn grb_v2_rejects_truncation_at_every_length() {
        let mut buf = Vec::new();
        write_grb_v2_chunked(&chain(9), &mut buf, 3).unwrap();
        for keep in 0..buf.len() {
            assert!(read_grb(&buf[..keep]).is_err(), "keep={keep}");
        }
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0u8; 5]);
        assert!(read_grb(&padded[..]).is_err());
    }

    #[test]
    fn grb_v2_corrupt_chunk_errors_name_the_chunk() {
        let g = chain(9); // chunk_vertices = 3 → chunks 0, 1, 2
        let mut buf = Vec::new();
        write_grb_v2_chunked(&g, &mut buf, 3).unwrap();

        // Corrupt chunk 1's table record: its first-vertex no longer
        // continues chunk 0.
        let mut bad = buf.clone();
        let table1 = GRB_V2_HEADER_LEN + GRB_V2_TABLE_RECORD;
        bad[table1..table1 + 8].copy_from_slice(&7u64.to_le_bytes());
        let err = read_grb(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("chunk 1"), "{err}");

        // Corrupt an offset inside chunk 2's payload: error names chunk 2.
        let offsets = g.adjacency_offsets();
        let chunk2_payload = GRB_V2_HEADER_LEN
            + 3 * GRB_V2_TABLE_RECORD
            + (3 * 8 + (offsets[3] - offsets[0]) * 12)
            + (3 * 8 + (offsets[6] - offsets[3]) * 12);
        let mut bad = buf.clone();
        bad[chunk2_payload..chunk2_payload + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_grb(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("chunk 2"), "{err}");

        // A well-framed but structurally broken payload (weight bits zeroed,
        // so a non-positive weight) is rejected by the chunk's linear checks,
        // again naming the chunk.
        let mut bad = buf.clone();
        let len = bad.len();
        bad[len - 8..].copy_from_slice(&0u64.to_le_bytes());
        let err = read_grb(&bad[..]).unwrap_err();
        assert!(err.to_string().contains("chunk 2"), "{err}");
    }

    #[test]
    fn grb_v2_checksum_catches_structurally_plausible_corruption() {
        // Flip the lowest mantissa bit of the final weight: still a finite
        // positive weight and framing stays intact, so only the per-chunk
        // checksum can tell the payload no longer matches what was written.
        let mut buf = Vec::new();
        write_grb_v2_chunked(&chain(9), &mut buf, 3).unwrap();
        let len = buf.len();
        buf[len - 8] ^= 0x01;
        let err = read_grb(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("chunk 2"), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn save_binary_writes_v2_load_reads_both() {
        let dir = std::env::temp_dir().join("grappolo_io_v2_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = chain(12);
        let v2_path = dir.join("g.grb");
        save_binary(&g, &v2_path).unwrap();
        let head = std::fs::read(&v2_path).unwrap();
        assert_eq!(
            u16::from_le_bytes(head[8..10].try_into().unwrap()),
            GRB_VERSION_V2
        );
        let v1_path = dir.join("g_v1.grb");
        write_grb(&g, std::fs::File::create(&v1_path).unwrap()).unwrap();
        let from_v2 = load_binary(&v2_path).unwrap();
        let from_v1 = load_binary(&v1_path).unwrap();
        assert_grb_bitwise_equal(&from_v1, &from_v2);
    }

    #[test]
    fn grb_rejects_corrupt_offsets() {
        let mut buf = Vec::new();
        write_grb(&sample(), &mut buf).unwrap();
        // First offset must be 0; make it huge.
        buf[GRB_HEADER_LEN..GRB_HEADER_LEN + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_grb(&buf[..]).is_err());
    }

    #[test]
    fn grb_rejects_asymmetric_payload() {
        // Valid framing, structurally broken graph: validate() must catch it.
        let g = sample();
        let mut buf = Vec::new();
        write_grb(&g, &mut buf).unwrap();
        // Flip one neighbor id inside the targets section to break symmetry.
        let targets_at = GRB_HEADER_LEN + (g.num_vertices() + 1) * 8;
        buf[targets_at] ^= 0x01;
        assert!(read_grb(&buf[..]).is_err());
    }

    #[test]
    fn write_atomic_leaves_no_temp_on_success() {
        let dir = std::env::temp_dir().join("grappolo_io_atomic_ok");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        for name in ["a.grb", "a.bin", "a.graph", "a.edges"] {
            let p = dir.join(name);
            save_path(&g, &p).unwrap();
            assert!(
                load_path(&p).unwrap().num_edges() == g.num_edges(),
                "{name}"
            );
        }
        assert!(
            list_tmp_siblings(&dir).is_empty(),
            "temp siblings leaked: {:?}",
            list_tmp_siblings(&dir)
        );
    }

    #[test]
    fn write_atomic_failed_write_preserves_old_file_and_cleans_temp() {
        // A writer that fails mid-stream must leave the previous contents
        // bitwise intact and remove its temp sibling — the crash-safety
        // contract `grappolo_serve`'s failpoint tests lean on.
        let dir = std::env::temp_dir().join("grappolo_io_atomic_fail");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("keep.grb");
        save_binary(&sample(), &p).unwrap();
        let before = std::fs::read(&p).unwrap();
        let err = write_atomic(&p, |w| {
            // Partial bytes, then a failure — simulating a torn write.
            w.write_all(b"partial garbage")?;
            Err(parse_err(0, "injected mid-write failure"))
        })
        .unwrap_err();
        assert!(err.to_string().contains("injected mid-write failure"));
        assert_eq!(std::fs::read(&p).unwrap(), before, "target was touched");
        assert!(
            list_tmp_siblings(&dir).is_empty(),
            "failed write leaked temp files"
        );
        // The surviving file still loads.
        assert!(load_binary(&p).is_ok());
    }

    #[test]
    fn write_bytes_atomic_round_trip_and_replace() {
        let dir = std::env::temp_dir().join("grappolo_io_atomic_bytes");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("assign.txt");
        write_bytes_atomic(&p, b"0 0\n1 1\n").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"0 0\n1 1\n");
        // Replacement is whole-file: no blend of old and new.
        write_bytes_atomic(&p, b"0 7\n").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"0 7\n");
        assert!(list_tmp_siblings(&dir).is_empty());
    }

    #[test]
    fn write_atomic_errors_on_missing_directory() {
        let p = std::env::temp_dir()
            .join("grappolo_io_atomic_missing")
            .join("no_such_subdir")
            .join("x.grb");
        assert!(save_binary(&sample(), &p).is_err());
    }
}
