//! Batched edge deltas: insert / delete / reweight against an existing
//! [`CsrGraph`], rebuilt through the same flat count → prefix → scatter
//! path as [`crate::builder::GraphBuilder`] so the resulting arrays are
//! bitwise deterministic regardless of batch order or thread count.
//!
//! A batch is resolved *per undirected edge* before anything touches the
//! CSR arrays: deltas are canonicalised to `(min, max)` endpoints, grouped,
//! and replayed in batch order against the edge's current weight. Inserting
//! on top of an existing edge follows the caller's [`MergePolicy`], exactly
//! like duplicate edges fed to the builder. The net per-edge outcome (and
//! nothing else) is then applied in one serial merge pass over the old
//! adjacency — untouched vertices get a straight `memcpy` of their rows.

use crate::builder::{merge_weight, MergePolicy};
use crate::csr::{CsrGraph, VertexId, DEFAULT_WEIGHT};

/// One edge mutation in a dynamic batch. Endpoints are unordered (the graph
/// is undirected); `(u, v)` and `(v, u)` address the same edge, and a
/// self-loop is addressed as `(v, v)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeDelta {
    /// Add an edge with the given weight. If the edge already exists (in the
    /// graph or earlier in the batch) the weights merge per [`MergePolicy`].
    /// Endpoints beyond the current vertex count grow the graph.
    Insert {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
        /// Edge weight; must be finite and positive.
        weight: f64,
    },
    /// Remove an existing edge. Deleting an edge that does not exist (and was
    /// not inserted earlier in the same batch) is an error.
    Delete {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
    },
    /// Replace the weight of an existing edge. Reweighting an absent edge is
    /// an error.
    Reweight {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
        /// New edge weight; must be finite and positive.
        weight: f64,
    },
}

impl EdgeDelta {
    /// Unweighted insert at [`DEFAULT_WEIGHT`].
    pub fn insert_unweighted(u: VertexId, v: VertexId) -> Self {
        EdgeDelta::Insert {
            u,
            v,
            weight: DEFAULT_WEIGHT,
        }
    }

    /// Canonical `(min, max)` endpoints.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        let (u, v) = match *self {
            EdgeDelta::Insert { u, v, .. }
            | EdgeDelta::Delete { u, v }
            | EdgeDelta::Reweight { u, v, .. } => (u, v),
        };
        (u.min(v), u.max(v))
    }
}

/// Why a batch could not be applied. `index` is the 0-based position of the
/// offending delta in the batch; `edge` is its canonical endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// Insert or reweight with a non-finite or non-positive weight.
    InvalidWeight {
        /// Position of the offending delta in the batch.
        index: usize,
        /// Canonical endpoints.
        edge: (VertexId, VertexId),
        /// The rejected weight.
        weight: f64,
    },
    /// Delete or reweight of an edge that exists neither in the graph nor
    /// earlier in the batch.
    MissingEdge {
        /// Position of the offending delta in the batch.
        index: usize,
        /// Canonical endpoints.
        edge: (VertexId, VertexId),
        /// `"delete"` or `"reweight"`.
        op: &'static str,
    },
    /// Insert collided with an existing weight under [`MergePolicy::Reject`].
    DuplicateEdge {
        /// Position of the offending delta in the batch.
        index: usize,
        /// Canonical endpoints.
        edge: (VertexId, VertexId),
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::InvalidWeight {
                index,
                edge: (u, v),
                weight,
            } => write!(
                f,
                "delta {index}: edge ({u}, {v}) has invalid weight {weight} (must be finite and > 0)"
            ),
            DeltaError::MissingEdge {
                index,
                edge: (u, v),
                op,
            } => write!(f, "delta {index}: cannot {op} edge ({u}, {v}): no such edge"),
            DeltaError::DuplicateEdge {
                index,
                edge: (u, v),
            } => write!(
                f,
                "delta {index}: duplicate insert of edge ({u}, {v}) rejected by merge policy"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Line-anchored parse error from [`parse_edge_batch`]. `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for BatchParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BatchParseError {}

/// Parses the textual edge-delta batch format shared by `grappolo update`
/// and `grappolo serve`: one operation per line, `#` comments and blank
/// lines skipped.
///
/// ```text
/// + u v [w]   insert (weight defaults to 1; duplicates of an existing
///             edge merge per the caller's MergePolicy)
/// - u v       delete an existing edge
/// = u v w     set the weight of an existing edge
/// ```
pub fn parse_edge_batch(text: &str) -> Result<Vec<EdgeDelta>, BatchParseError> {
    let mut batch = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let at = |message: String| BatchParseError {
            line: lineno,
            message,
        };
        let mut it = line.split_whitespace();
        let op = it.next().unwrap();
        let mut vertex = |name: &str| -> Result<VertexId, BatchParseError> {
            it.next()
                .ok_or_else(|| at(format!("missing {name} vertex")))?
                .parse()
                .map_err(|e| at(format!("bad {name} vertex: {e}")))
        };
        let u = vertex("source")?;
        let v = vertex("target")?;
        let mut weight = |required: bool| -> Result<Option<f64>, BatchParseError> {
            match it.next() {
                Some(tok) => tok
                    .parse()
                    .map(Some)
                    .map_err(|e| at(format!("bad weight: {e}"))),
                None if required => Err(at("missing weight".into())),
                None => Ok(None),
            }
        };
        let delta = match op {
            "+" => EdgeDelta::Insert {
                u,
                v,
                weight: weight(false)?.unwrap_or(DEFAULT_WEIGHT),
            },
            "-" => EdgeDelta::Delete { u, v },
            "=" => EdgeDelta::Reweight {
                u,
                v,
                weight: weight(true)?.unwrap(),
            },
            other => {
                return Err(at(format!(
                    "unknown operation `{other}` (expected `+`, `-`, or `=`)"
                )))
            }
        };
        if it.next().is_some() {
            return Err(at("trailing tokens after operation".into()));
        }
        batch.push(delta);
    }
    Ok(batch)
}

/// Net outcome for one undirected edge after a batch resolves: `old` is the
/// weight before the batch (`None` if absent), `new` the weight after.
/// Changes are reported in ascending `(u, v)` order with `u <= v`, and only
/// for edges whose weight actually changed bitwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeChange {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Weight before the batch; `None` if the edge did not exist.
    pub old: Option<f64>,
    /// Weight after the batch; `None` if the edge was deleted.
    pub new: Option<f64>,
}

impl EdgeChange {
    /// Net weight delta contributed by this change (`new - old`, with absent
    /// treated as zero).
    pub fn weight_delta(&self) -> f64 {
        self.new.unwrap_or(0.0) - self.old.unwrap_or(0.0)
    }
}

impl CsrGraph {
    /// Applies a batch of edge deltas, returning the updated graph. See
    /// [`apply_edge_batch_diff`](CsrGraph::apply_edge_batch_diff) for the
    /// variant that also reports the net per-edge changes.
    pub fn apply_edge_batch(
        &self,
        batch: &[EdgeDelta],
        policy: MergePolicy,
    ) -> Result<CsrGraph, DeltaError> {
        self.apply_edge_batch_diff(batch, policy).map(|(g, _)| g)
    }

    /// Applies a batch of edge deltas, returning the updated graph plus the
    /// net per-edge changes (ascending canonical order, no-ops elided).
    ///
    /// Semantics:
    /// * deltas addressing the same undirected edge resolve in batch order
    ///   against the edge's pre-batch weight;
    /// * `Insert` onto an existing weight merges per `policy`
    ///   ([`MergePolicy::Reject`] errors); onto an absent edge it creates it;
    /// * `Delete` / `Reweight` of an absent edge errors — but an edge
    ///   inserted earlier in the same batch counts as existing, so
    ///   insert-then-delete of a new edge cancels to a no-op;
    /// * `Insert` endpoints past the current vertex count grow the graph;
    ///   the result is well-defined starting from [`CsrGraph::empty`]`(0)`;
    /// * an empty batch returns a bitwise-identical copy.
    pub fn apply_edge_batch_diff(
        &self,
        batch: &[EdgeDelta],
        policy: MergePolicy,
    ) -> Result<(CsrGraph, Vec<EdgeChange>), DeltaError> {
        let old_n = self.num_vertices();

        // Canonicalise and group by edge, keeping batch order within a group
        // (stable sort on the canonical key).
        let mut keyed: Vec<(VertexId, VertexId, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let (u, v) = d.endpoints();
                (u, v, i)
            })
            .collect();
        keyed.sort_by_key(|&(u, v, _)| (u, v));

        // Replay each group against the pre-batch weight to get the net
        // per-edge outcome.
        let mut changes: Vec<EdgeChange> = Vec::new();
        let mut new_n = old_n;
        let mut i = 0;
        while i < keyed.len() {
            let (u, v, _) = keyed[i];
            let mut j = i;
            let old = if (v as usize) < old_n {
                self.edge_weight(u, v)
            } else {
                None
            };
            let mut cur = old;
            while j < keyed.len() && keyed[j].0 == u && keyed[j].1 == v {
                let index = keyed[j].2;
                match batch[index] {
                    EdgeDelta::Insert { weight, .. } => {
                        if !weight.is_finite() || weight <= 0.0 {
                            return Err(DeltaError::InvalidWeight {
                                index,
                                edge: (u, v),
                                weight,
                            });
                        }
                        match cur {
                            None => cur = Some(weight),
                            Some(ref mut acc) => {
                                if merge_weight(acc, weight, policy).is_err() {
                                    return Err(DeltaError::DuplicateEdge {
                                        index,
                                        edge: (u, v),
                                    });
                                }
                            }
                        }
                    }
                    EdgeDelta::Delete { .. } => {
                        if cur.is_none() {
                            return Err(DeltaError::MissingEdge {
                                index,
                                edge: (u, v),
                                op: "delete",
                            });
                        }
                        cur = None;
                    }
                    EdgeDelta::Reweight { weight, .. } => {
                        if !weight.is_finite() || weight <= 0.0 {
                            return Err(DeltaError::InvalidWeight {
                                index,
                                edge: (u, v),
                                weight,
                            });
                        }
                        if cur.is_none() {
                            return Err(DeltaError::MissingEdge {
                                index,
                                edge: (u, v),
                                op: "reweight",
                            });
                        }
                        cur = Some(weight);
                    }
                }
                j += 1;
            }
            if old.map(f64::to_bits) != cur.map(f64::to_bits) {
                if cur.is_some() {
                    new_n = new_n.max(v as usize + 1);
                }
                changes.push(EdgeChange {
                    u,
                    v,
                    old,
                    new: cur,
                });
            }
            i = j;
        }

        if changes.is_empty() {
            // Bitwise no-op: hand back an identical copy of the arrays.
            return Ok((
                CsrGraph::from_sorted_adjacency(
                    self.adjacency_offsets().to_vec(),
                    self.adjacency_targets().to_vec(),
                    self.adjacency_weights().to_vec(),
                ),
                changes,
            ));
        }

        // Directed view of the changes: each non-loop change appears for both
        // endpoints, self-loops once — mirroring CSR storage. Sorted by
        // (src, tgt); per-edge resolution already deduplicated targets.
        let mut directed: Vec<(VertexId, VertexId, Option<f64>, bool)> = Vec::new();
        for c in &changes {
            directed.push((c.u, c.v, c.new, c.old.is_some()));
            if c.u != c.v {
                directed.push((c.v, c.u, c.new, c.old.is_some()));
            }
        }
        directed.sort_unstable_by_key(|&(s, t, _, _)| (s, t));

        // Count pass: per-vertex adjacency length after the batch.
        let mut counts = vec![0usize; new_n];
        for (v, c) in counts.iter_mut().enumerate().take(old_n) {
            *c = self.degree(v as VertexId);
        }
        for &(s, _, new, existed) in &directed {
            match (existed, new.is_some()) {
                (false, true) => counts[s as usize] += 1,
                (true, false) => counts[s as usize] -= 1,
                _ => {}
            }
        }

        // Prefix pass.
        let mut offsets = vec![0usize; new_n + 1];
        for v in 0..new_n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        let entries = offsets[new_n];

        // Scatter pass: merge each vertex's old sorted row with its sorted
        // slice of directed changes. Vertices with no changes copy straight
        // through.
        let mut targets = vec![0 as VertexId; entries];
        let mut weights = vec![0.0f64; entries];
        let mut d = 0usize;
        for src in 0..new_n {
            let mut out = offsets[src];
            let d_end = {
                let mut k = d;
                while k < directed.len() && directed[k].0 as usize == src {
                    k += 1;
                }
                k
            };
            let (old_ids, old_ws): (&[VertexId], &[f64]) = if src < old_n {
                (
                    self.neighbor_ids(src as VertexId),
                    self.neighbor_weights(src as VertexId),
                )
            } else {
                (&[], &[])
            };
            let mut oi = 0usize;
            let mut di = d;
            while oi < old_ids.len() || di < d_end {
                let old_t = old_ids.get(oi).copied();
                let delta_t = if di < d_end {
                    Some(directed[di].1)
                } else {
                    None
                };
                match (old_t, delta_t) {
                    (Some(ot), Some(dt)) if ot < dt => {
                        targets[out] = ot;
                        weights[out] = old_ws[oi];
                        out += 1;
                        oi += 1;
                    }
                    (Some(ot), Some(dt)) if ot == dt => {
                        // Reweight or delete of an existing entry.
                        if let Some(w) = directed[di].2 {
                            targets[out] = ot;
                            weights[out] = w;
                            out += 1;
                        }
                        oi += 1;
                        di += 1;
                    }
                    (_, Some(dt)) => {
                        // Pure insert (no matching old entry).
                        debug_assert!(!directed[di].3);
                        targets[out] = dt;
                        weights[out] = directed[di].2.expect("insert carries a weight");
                        out += 1;
                        di += 1;
                    }
                    (Some(ot), None) => {
                        targets[out] = ot;
                        weights[out] = old_ws[oi];
                        out += 1;
                        oi += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            debug_assert_eq!(out, offsets[src + 1]);
            d = d_end;
        }

        Ok((
            CsrGraph::from_sorted_adjacency(offsets, targets, weights),
            changes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_weighted_edges;

    fn triangle() -> CsrGraph {
        from_weighted_edges(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn empty_batch_is_bitwise_noop() {
        let g = triangle();
        let (h, changes) = g.apply_edge_batch_diff(&[], MergePolicy::Sum).unwrap();
        assert!(changes.is_empty());
        assert!(g.bitwise_eq(&h));
    }

    #[test]
    fn noop_reweight_is_bitwise_noop() {
        let g = triangle();
        let batch = [EdgeDelta::Reweight {
            u: 0,
            v: 1,
            weight: 1.0,
        }];
        let (h, changes) = g.apply_edge_batch_diff(&batch, MergePolicy::Sum).unwrap();
        assert!(changes.is_empty());
        assert!(g.bitwise_eq(&h));
    }

    #[test]
    fn insert_matches_builder_result() {
        let g = triangle();
        let h = g
            .apply_edge_batch(
                &[EdgeDelta::Insert {
                    u: 3,
                    v: 1,
                    weight: 4.0,
                }],
                MergePolicy::Sum,
            )
            .unwrap();
        let direct =
            from_weighted_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (1, 3, 4.0)]).unwrap();
        assert!(h.bitwise_eq(&direct));
        h.validate().unwrap();
    }

    #[test]
    fn delete_matches_builder_result() {
        let g = triangle();
        let h = g
            .apply_edge_batch(&[EdgeDelta::Delete { u: 2, v: 1 }], MergePolicy::Sum)
            .unwrap();
        let direct = from_weighted_edges(3, [(0, 1, 1.0), (0, 2, 3.0)]).unwrap();
        assert!(h.bitwise_eq(&direct));
    }

    #[test]
    fn reweight_and_self_loop() {
        let g = triangle();
        let h = g
            .apply_edge_batch(
                &[
                    EdgeDelta::Reweight {
                        u: 1,
                        v: 0,
                        weight: 7.5,
                    },
                    EdgeDelta::Insert {
                        u: 2,
                        v: 2,
                        weight: 5.0,
                    },
                ],
                MergePolicy::Sum,
            )
            .unwrap();
        assert_eq!(h.edge_weight(0, 1), Some(7.5));
        assert_eq!(h.self_loop_weight(2), 5.0);
        // Self-loop counts once in k_i, so it adds w/2 to m = ½Σk_i.
        assert!((h.total_weight() - (triangle().total_weight() + 6.5 + 2.5)).abs() < 1e-12);
        h.validate().unwrap();
    }

    #[test]
    fn delete_nonexistent_edge_errors() {
        let g = triangle();
        let err = g
            .apply_edge_batch(&[EdgeDelta::Delete { u: 0, v: 5 }], MergePolicy::Sum)
            .unwrap_err();
        assert_eq!(
            err,
            DeltaError::MissingEdge {
                index: 0,
                edge: (0, 5),
                op: "delete"
            }
        );
    }

    #[test]
    fn reweight_nonexistent_edge_errors() {
        let g = from_weighted_edges(4, [(0, 1, 1.0)]).unwrap();
        let err = g
            .apply_edge_batch(
                &[EdgeDelta::Reweight {
                    u: 2,
                    v: 3,
                    weight: 1.0,
                }],
                MergePolicy::Sum,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DeltaError::MissingEdge {
                index: 0,
                op: "reweight",
                ..
            }
        ));
    }

    #[test]
    fn duplicate_inserts_follow_merge_policy() {
        let g = CsrGraph::empty(2);
        let batch = [
            EdgeDelta::Insert {
                u: 0,
                v: 1,
                weight: 2.0,
            },
            EdgeDelta::Insert {
                u: 1,
                v: 0,
                weight: 3.0,
            },
        ];
        let sum = g.apply_edge_batch(&batch, MergePolicy::Sum).unwrap();
        assert_eq!(sum.edge_weight(0, 1), Some(5.0));
        let max = g.apply_edge_batch(&batch, MergePolicy::Max).unwrap();
        assert_eq!(max.edge_weight(0, 1), Some(3.0));
        let err = g.apply_edge_batch(&batch, MergePolicy::Reject).unwrap_err();
        assert_eq!(
            err,
            DeltaError::DuplicateEdge {
                index: 1,
                edge: (0, 1)
            }
        );
        // Insert colliding with a pre-existing edge also follows the policy.
        let err = sum
            .apply_edge_batch(&[EdgeDelta::insert_unweighted(0, 1)], MergePolicy::Reject)
            .unwrap_err();
        assert!(matches!(err, DeltaError::DuplicateEdge { .. }));
    }

    #[test]
    fn insert_then_delete_cancels() {
        let g = triangle();
        let batch = [
            EdgeDelta::Insert {
                u: 0,
                v: 9,
                weight: 1.0,
            },
            EdgeDelta::Delete { u: 9, v: 0 },
        ];
        let (h, changes) = g.apply_edge_batch_diff(&batch, MergePolicy::Sum).unwrap();
        assert!(changes.is_empty());
        assert!(g.bitwise_eq(&h));
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn delete_then_reinsert_reports_net_change() {
        let g = triangle();
        let batch = [
            EdgeDelta::Delete { u: 0, v: 1 },
            EdgeDelta::Insert {
                u: 0,
                v: 1,
                weight: 6.0,
            },
        ];
        let (h, changes) = g
            .apply_edge_batch_diff(&batch, MergePolicy::Reject)
            .unwrap();
        assert_eq!(
            changes,
            vec![EdgeChange {
                u: 0,
                v: 1,
                old: Some(1.0),
                new: Some(6.0)
            }]
        );
        assert_eq!(h.edge_weight(0, 1), Some(6.0));
    }

    #[test]
    fn invalid_weight_errors() {
        let g = triangle();
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = g
                .apply_edge_batch(
                    &[EdgeDelta::Insert {
                        u: 0,
                        v: 4,
                        weight: w,
                    }],
                    MergePolicy::Sum,
                )
                .unwrap_err();
            assert!(matches!(err, DeltaError::InvalidWeight { index: 0, .. }));
        }
    }

    #[test]
    fn empty_graph_batch_is_well_defined() {
        let g = CsrGraph::empty(0);
        let (same, changes) = g.apply_edge_batch_diff(&[], MergePolicy::Sum).unwrap();
        assert!(changes.is_empty());
        assert_eq!(same.num_vertices(), 0);
        assert_eq!(same.num_edges(), 0);

        let h = g
            .apply_edge_batch(
                &[
                    EdgeDelta::Insert {
                        u: 0,
                        v: 1,
                        weight: 2.0,
                    },
                    EdgeDelta::Insert {
                        u: 2,
                        v: 1,
                        weight: 1.0,
                    },
                ],
                MergePolicy::Sum,
            )
            .unwrap();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        let direct = from_weighted_edges(3, [(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        assert!(h.bitwise_eq(&direct));
        // Deleting from an empty graph errors cleanly.
        let err = CsrGraph::empty(0)
            .apply_edge_batch(&[EdgeDelta::Delete { u: 0, v: 1 }], MergePolicy::Sum)
            .unwrap_err();
        assert!(matches!(err, DeltaError::MissingEdge { .. }));
    }

    #[test]
    fn grown_vertices_are_isolated_unless_touched() {
        let g = triangle();
        let h = g
            .apply_edge_batch(
                &[EdgeDelta::Insert {
                    u: 6,
                    v: 2,
                    weight: 1.0,
                }],
                MergePolicy::Sum,
            )
            .unwrap();
        assert_eq!(h.num_vertices(), 7);
        for v in 3..6 {
            assert_eq!(h.degree(v), 0);
        }
        assert_eq!(h.degree(6), 1);
        h.validate().unwrap();
    }

    #[test]
    fn interleaved_ops_on_one_edge_resolve_in_batch_order() {
        let g = triangle();
        // reweight → delete → insert: net result is the final insert.
        let batch = [
            EdgeDelta::Reweight {
                u: 1,
                v: 2,
                weight: 9.0,
            },
            EdgeDelta::Delete { u: 1, v: 2 },
            EdgeDelta::Insert {
                u: 2,
                v: 1,
                weight: 0.5,
            },
        ];
        let h = g.apply_edge_batch(&batch, MergePolicy::Reject).unwrap();
        assert_eq!(h.edge_weight(1, 2), Some(0.5));
    }
}
