//! Weakly connected components: deterministic labeling and per-component
//! subgraph extraction.
//!
//! Real-world inputs decompose into many connected components, and every
//! component is an **independent** community-detection problem: no edge —
//! hence no modularity term, no Louvain move — ever crosses a component
//! boundary. `grappolo_core`'s component splitter builds on the two halves
//! here:
//!
//! * [`connected_components`] labels vertices with dense component ids in
//!   **ascending-minimum-vertex order** (component 0 contains vertex 0's
//!   component, component 1 the smallest vertex not in it, …). The labeling
//!   is computed by a serial seeded BFS, so it is bitwise identical for any
//!   thread count by construction.
//! * [`extract_components`] materializes one CSR subgraph per component with
//!   a local→global vertex remap table. Local ids preserve ascending global
//!   order, so every order-based tie-break downstream (minimum-label moves,
//!   ascending-vertex commits) behaves identically on the subgraph and on
//!   the component embedded in the parent graph.

use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Dense weakly-connected-component labeling of a graph.
///
/// Component ids are `0..num_components()` in ascending order of each
/// component's minimum vertex id.
#[derive(Clone, Debug)]
pub struct ComponentLabeling {
    labels: Vec<u32>,
    sizes: Vec<usize>,
}

impl ComponentLabeling {
    /// Number of weakly connected components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Per-vertex component ids.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Component id of `v`.
    pub fn component_of(&self, v: VertexId) -> u32 {
        self.labels[v as usize]
    }

    /// Vertex count per component, indexed by component id.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Id and size of the largest component (ties to the lower id), or
    /// `None` for the empty graph.
    pub fn largest(&self) -> Option<(u32, usize)> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, &s)| (i as u32, s))
    }

    /// Number of single-vertex components.
    pub fn num_isolated(&self) -> usize {
        self.sizes.iter().filter(|&&s| s == 1).count()
    }
}

/// Labels the weakly connected components of `g`.
///
/// Seeds are scanned in ascending vertex order and each component is grown
/// by BFS, so component ids come out in ascending-minimum-vertex order and
/// the result is a pure function of the graph — no thread-count or schedule
/// dependence. O(n + m) time, O(n) scratch.
pub fn connected_components(g: &CsrGraph) -> ComponentLabeling {
    let n = g.num_vertices();
    const UNLABELED: u32 = u32::MAX;
    let mut labels = vec![UNLABELED; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<VertexId> = Vec::new();
    for seed in 0..n {
        if labels[seed] != UNLABELED {
            continue;
        }
        let comp = sizes.len() as u32;
        labels[seed] = comp;
        queue.clear();
        queue.push(seed as VertexId);
        let mut size = 0usize;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            size += 1;
            for &u in g.neighbor_ids(v) {
                if labels[u as usize] == UNLABELED {
                    labels[u as usize] = comp;
                    queue.push(u);
                }
            }
        }
        sizes.push(size);
    }
    ComponentLabeling { labels, sizes }
}

/// One extracted component: a local CSR subgraph plus its vertex remap
/// table.
#[derive(Clone, Debug)]
pub struct ComponentSubgraph {
    /// The component's id in the parent labeling.
    pub id: u32,
    /// The component as a standalone graph over local ids `0..size`.
    pub graph: CsrGraph,
    /// Local→global remap: `vertices[local]` is the parent-graph vertex.
    /// Ascending, because local ids preserve ascending global order.
    pub vertices: Vec<VertexId>,
}

/// Extracts every component of `g` as a standalone subgraph, in component-id
/// order (singletons included — their subgraphs are single isolated
/// vertices, or a lone self-loop).
///
/// Components are materialized in parallel — each one's arrays are written
/// by exactly one task, so the output is independent of thread count.
pub fn extract_components(g: &CsrGraph, labeling: &ComponentLabeling) -> Vec<ComponentSubgraph> {
    let n = g.num_vertices();
    let labels = labeling.labels();
    let k = labeling.num_components();
    // Local id of every vertex: its rank within its component, in one
    // ascending scan (deterministic by construction).
    let mut local_of = vec![0 as VertexId; n];
    let mut next = vec![0 as VertexId; k];
    for v in 0..n {
        let c = labels[v] as usize;
        local_of[v] = next[c];
        next[c] += 1;
    }
    // Gather each component's member list (ascending, by the same scan).
    let mut members: Vec<Vec<VertexId>> = labeling
        .sizes()
        .iter()
        .map(|&s| Vec::with_capacity(s))
        .collect();
    for v in 0..n {
        members[labels[v] as usize].push(v as VertexId);
    }
    members
        .into_par_iter()
        .enumerate()
        .map(|(c, vertices)| {
            let mut offsets = Vec::with_capacity(vertices.len() + 1);
            offsets.push(0usize);
            let mut targets = Vec::new();
            let mut weights = Vec::new();
            for &v in &vertices {
                for (u, w) in g.neighbors(v) {
                    debug_assert_eq!(labels[u as usize] as usize, c, "edge crosses components");
                    targets.push(local_of[u as usize]);
                    weights.push(w);
                }
                offsets.push(targets.len());
            }
            ComponentSubgraph {
                id: c as u32,
                // Invariants hold by construction: neighbors stay in the
                // component and the monotone remap preserves sorted
                // adjacency and mirror symmetry.
                graph: CsrGraph::from_sorted_adjacency(offsets, targets, weights),
                vertices,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Two triangles (0-1-2 and 5-6-7), an edge 3-4, and isolated vertex 8.
    fn multi() -> CsrGraph {
        GraphBuilder::new(9)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(3, 4, 2.0)
            .add_edge(5, 6, 1.0)
            .add_edge(6, 7, 1.0)
            .add_edge(5, 7, 1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn labels_ascending_min_vertex_order() {
        let g = multi();
        let l = connected_components(&g);
        assert_eq!(l.num_components(), 4);
        assert_eq!(l.labels(), &[0, 0, 0, 1, 1, 2, 2, 2, 3]);
        assert_eq!(l.sizes(), &[3, 2, 3, 1]);
        assert_eq!(l.largest(), Some((0, 3)));
        assert_eq!(l.num_isolated(), 1);
    }

    #[test]
    fn connected_graph_is_one_component() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .build()
            .unwrap();
        let l = connected_components(&g);
        assert_eq!(l.num_components(), 1);
        assert_eq!(l.sizes(), &[3]);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = CsrGraph::empty(0);
        let l = connected_components(&g);
        assert_eq!(l.num_components(), 0);
        assert_eq!(l.largest(), None);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = CsrGraph::empty(4);
        let l = connected_components(&g);
        assert_eq!(l.num_components(), 4);
        assert_eq!(l.num_isolated(), 4);
    }

    #[test]
    fn extraction_remaps_and_preserves_weights() {
        let g = multi();
        let l = connected_components(&g);
        let subs = extract_components(&g, &l);
        assert_eq!(subs.len(), 4);
        // Component 1 is the 3-4 edge with weight 2.0.
        let s = &subs[1];
        assert_eq!(s.vertices, vec![3, 4]);
        assert_eq!(s.graph.num_vertices(), 2);
        assert_eq!(s.graph.edge_weight(0, 1), Some(2.0));
        // Component 3 is the isolated vertex.
        assert_eq!(subs[3].vertices, vec![8]);
        assert_eq!(subs[3].graph.num_vertices(), 1);
        assert_eq!(subs[3].graph.num_edges(), 0);
        // Every subgraph validates and total sizes cover the parent.
        let total: usize = subs.iter().map(|s| s.graph.num_vertices()).sum();
        assert_eq!(total, g.num_vertices());
        for s in &subs {
            s.graph.validate().unwrap();
        }
    }

    #[test]
    fn extraction_keeps_self_loops() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 2, 4.0)
            .build()
            .unwrap();
        let l = connected_components(&g);
        let subs = extract_components(&g, &l);
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[1].graph.self_loop_weight(0), 4.0);
    }
}
