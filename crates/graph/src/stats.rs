//! Graph statistics matching the columns of the paper's Table 1:
//! number of vertices, number of edges, and max / average / RSD of the
//! (unweighted) vertex degree. "RSD represents the relative standard
//! deviation of vertex degrees … the ratio between the standard deviation of
//! the degree and its mean."

use crate::csr::{CsrGraph, VertexId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Summary statistics for one graph (one row of Table 1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of distinct undirected edges `M`.
    pub num_edges: usize,
    /// Maximum unweighted degree.
    pub max_degree: usize,
    /// Mean unweighted degree.
    pub avg_degree: f64,
    /// Relative standard deviation of the degree (σ / mean).
    pub degree_rsd: f64,
    /// Total edge weight `m`.
    pub total_weight: f64,
    /// Number of single-degree vertices (exactly one incident non-loop edge
    /// and no self-loop) — the vertices the VF heuristic removes (§5.3).
    pub num_single_degree: usize,
    /// Number of isolated vertices (degree 0).
    pub num_isolated: usize,
}

impl GraphStats {
    /// Computes statistics for `g` (parallel over vertices).
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return Self {
                num_vertices: 0,
                num_edges: 0,
                max_degree: 0,
                avg_degree: 0.0,
                degree_rsd: 0.0,
                total_weight: 0.0,
                num_single_degree: 0,
                num_isolated: 0,
            };
        }
        // Single pass folding (sum, sum of squares, max, singles, isolated).
        let (sum, sum_sq, max, singles, isolated) = (0..n as VertexId)
            .into_par_iter()
            .fold(
                || (0u64, 0u128, 0usize, 0usize, 0usize),
                |(s, sq, mx, single, iso), v| {
                    let d = g.degree(v);
                    let is_single = is_single_degree(g, v) as usize;
                    (
                        s + d as u64,
                        sq + (d as u128) * (d as u128),
                        mx.max(d),
                        single + is_single,
                        iso + (d == 0) as usize,
                    )
                },
            )
            .reduce(
                || (0u64, 0u128, 0usize, 0usize, 0usize),
                |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2), a.3 + b.3, a.4 + b.4),
            );

        let mean = sum as f64 / n as f64;
        let var = (sum_sq as f64 / n as f64) - mean * mean;
        let sd = var.max(0.0).sqrt();
        Self {
            num_vertices: n,
            num_edges: g.num_edges(),
            max_degree: max,
            avg_degree: mean,
            degree_rsd: if mean > 0.0 { sd / mean } else { 0.0 },
            total_weight: g.total_weight(),
            num_single_degree: singles,
            num_isolated: isolated,
        }
    }
}

/// True if `v` is a *single degree* vertex in the paper's §5.3 sense: its only
/// incident edge is one non-loop edge `(v, j)`.
///
/// (A *single neighbor* vertex may additionally carry a self-loop; that case
/// is handled by the recursive chain-compression extension, not here.)
pub fn is_single_degree(g: &CsrGraph, v: VertexId) -> bool {
    g.degree(v) == 1 && g.neighbor_ids(v)[0] != v
}

/// Degree histogram: `hist[d]` = number of vertices of unweighted degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Relative standard deviation of an arbitrary set of sizes (used for the
/// color-class-size RSD the paper reports for uk-2002, §6.2).
pub fn relative_std_dev(sizes: &[usize]) -> f64 {
    if sizes.is_empty() {
        return 0.0;
    }
    let n = sizes.len() as f64;
    let mean = sizes.iter().sum::<usize>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = sizes
        .iter()
        .map(|&s| {
            let d = s as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Number of connected components (iterative BFS; diagnostic for generators).
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut components = 0;
    let mut stack = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        components += 1;
        visited[start] = true;
        stack.push(start as VertexId);
        while let Some(v) = stack.pop() {
            for &u in g.neighbor_ids(v) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    stack.push(u);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_unweighted_edges;

    fn star(n: usize) -> CsrGraph {
        from_unweighted_edges(n, (1..n as VertexId).map(|v| (0, v))).unwrap()
    }

    #[test]
    fn star_stats() {
        let g = star(5); // hub 0 with 4 spokes
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.avg_degree, 8.0 / 5.0);
        assert_eq!(s.num_single_degree, 4);
        assert_eq!(s.num_isolated, 0);
        // degrees 4,1,1,1,1: mean 1.6, var (4-1.6)^2+4*(1-1.6)^2 over 5 = 1.44
        assert!((s.degree_rsd - 1.2 / 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::empty(0);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.degree_rsd, 0.0);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = from_unweighted_edges(4, [(0, 1)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_isolated, 2);
        assert_eq!(s.num_single_degree, 2);
    }

    #[test]
    fn uniform_degree_has_zero_rsd() {
        // 4-cycle: all degrees 2.
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.degree_rsd, 0.0);
        assert_eq!(s.avg_degree, 2.0);
    }

    #[test]
    fn self_loop_is_not_single_degree() {
        let g = crate::builder::from_weighted_edges(2, [(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        // vertex 1 has only edge (1,0): single degree. vertex 0 has loop+edge.
        assert!(is_single_degree(&g, 1));
        assert!(!is_single_degree(&g, 0));
        // A vertex whose only entry is its own loop is not single-degree.
        let g2 = crate::builder::from_weighted_edges(1, [(0, 0, 1.0)]).unwrap();
        assert!(!is_single_degree(&g2, 0));
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = star(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[1], 6);
        assert_eq!(h[6], 1);
    }

    #[test]
    fn rsd_of_equal_sizes_is_zero() {
        assert_eq!(relative_std_dev(&[5, 5, 5]), 0.0);
        assert_eq!(relative_std_dev(&[]), 0.0);
    }

    #[test]
    fn rsd_of_skewed_sizes_positive() {
        assert!(relative_std_dev(&[1, 1, 98]) > 1.0);
    }

    #[test]
    fn connected_components_counts() {
        let g = from_unweighted_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(connected_components(&g), 3); // {0,1,2}, {3,4}, {5}
        let g2 = star(4);
        assert_eq!(connected_components(&g2), 1);
    }
}
