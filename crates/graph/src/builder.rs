//! Edge-list → CSR graph construction.
//!
//! The builder symmetrizes, sorts, and merges duplicate edges in parallel
//! (rayon), since input preparation is itself a scalability concern for the
//! billion-edge graphs the paper targets. Multi-edges are not allowed in the
//! paper's model (§2); the builder resolves duplicates according to a
//! [`MergePolicy`].

use crate::csr::{CsrGraph, VertexId, DEFAULT_WEIGHT};
use rayon::prelude::*;

/// How duplicate occurrences of the same undirected edge are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Sum the duplicate weights (natural for multigraph collapsing).
    #[default]
    Sum,
    /// Keep the maximum weight.
    Max,
    /// Reject the input with [`BuildError::DuplicateEdge`].
    Reject,
}

/// Errors produced by [`GraphBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending edge.
        edge: (VertexId, VertexId),
        /// Declared vertex count.
        n: usize,
    },
    /// A weight was zero, negative, NaN or infinite (paper §2 requires
    /// non-zero positive weights).
    InvalidWeight {
        /// The offending edge.
        edge: (VertexId, VertexId),
        /// The rejected weight value.
        weight: f64,
    },
    /// Duplicate edge under [`MergePolicy::Reject`].
    DuplicateEdge {
        /// The duplicated edge.
        edge: (VertexId, VertexId),
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange { edge, n } => {
                write!(f, "edge ({},{}) references vertex >= n={n}", edge.0, edge.1)
            }
            BuildError::InvalidWeight { edge, weight } => write!(
                f,
                "edge ({},{}) has invalid weight {weight}; weights must be finite and > 0",
                edge.0, edge.1
            ),
            BuildError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({},{})", edge.0, edge.1)
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates an undirected edge list and produces a [`CsrGraph`].
///
/// ```
/// use grappolo_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 0.5)
///     .add_edge(2, 3, 2.0)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, f64)>,
    merge_policy: MergePolicy,
}

impl GraphBuilder {
    /// A builder for a graph over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::new(),
            merge_policy: MergePolicy::default(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::with_capacity(m),
            merge_policy: MergePolicy::default(),
        }
    }

    /// Sets the duplicate-edge resolution policy (default: sum).
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Adds an undirected weighted edge `{u, v}`; `u == v` adds a self-loop.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, w: f64) -> Self {
        self.edges.push((u, v, w));
        self
    }

    /// Adds an undirected edge with [`DEFAULT_WEIGHT`].
    pub fn add_unweighted_edge(self, u: VertexId, v: VertexId) -> Self {
        self.add_edge(u, v, DEFAULT_WEIGHT)
    }

    /// Bulk-extends from `(u, v, w)` triples.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId, f64)>>(
        mut self,
        iter: I,
    ) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Bulk-extends from unweighted `(u, v)` pairs.
    pub fn extend_unweighted<I: IntoIterator<Item = (VertexId, VertexId)>>(
        mut self,
        iter: I,
    ) -> Self {
        self.edges
            .extend(iter.into_iter().map(|(u, v)| (u, v, DEFAULT_WEIGHT)));
        self
    }

    /// Number of raw (pre-merge) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validates, symmetrizes, merges duplicates, and builds the CSR graph.
    pub fn build(self) -> Result<CsrGraph, BuildError> {
        let n = self.num_vertices;
        for &(u, v, w) in &self.edges {
            if u as usize >= n || v as usize >= n {
                return Err(BuildError::VertexOutOfRange { edge: (u, v), n });
            }
            if !w.is_finite() || w <= 0.0 {
                return Err(BuildError::InvalidWeight { edge: (u, v), weight: w });
            }
        }

        // Expand to directed entries: {u,v} u≠v → (u,v) and (v,u); loop once.
        let mut entries: Vec<(VertexId, VertexId, f64)> =
            Vec::with_capacity(self.edges.len() * 2);
        for &(u, v, w) in &self.edges {
            entries.push((u, v, w));
            if u != v {
                entries.push((v, u, w));
            }
        }
        // Sorting by weight too makes duplicate runs merge in the same order
        // for both directions of an edge, so float summation stays exactly
        // symmetric (CsrGraph::validate checks mirror weights bit-for-bit).
        entries.par_sort_unstable_by(|a, b| {
            (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2))
        });

        // Merge duplicate (u, v) runs according to policy. Duplicates of the
        // same undirected edge appear as identical consecutive directed pairs,
        // so the policy applies symmetrically.
        let mut merged: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(entries.len());
        for e in entries {
            match merged.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => match self.merge_policy {
                    MergePolicy::Sum => last.2 += e.2,
                    MergePolicy::Max => last.2 = last.2.max(e.2),
                    MergePolicy::Reject => {
                        return Err(BuildError::DuplicateEdge { edge: (e.0, e.1) })
                    }
                },
                _ => merged.push(e),
            }
        }

        // Offsets by counting per-vertex entries, then fill.
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &merged {
            offsets[u as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut targets = Vec::with_capacity(merged.len());
        let mut weights = Vec::with_capacity(merged.len());
        for (_, v, w) in merged {
            targets.push(v);
            weights.push(w);
        }

        Ok(CsrGraph::from_sorted_adjacency(offsets, targets, weights))
    }
}

/// Convenience: builds a graph from an unweighted edge list.
pub fn from_unweighted_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Result<CsrGraph, BuildError> {
    GraphBuilder::new(n).extend_unweighted(edges).build()
}

/// Convenience: builds a graph from a weighted edge list.
pub fn from_weighted_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
) -> Result<CsrGraph, BuildError> {
    GraphBuilder::new(n).extend_edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.weighted_degree(1), 2.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn merges_duplicates_by_sum() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 0, 2.5)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.edge_weight(1, 0), Some(3.5));
    }

    #[test]
    fn merges_duplicates_by_max() {
        let g = GraphBuilder::new(2)
            .merge_policy(MergePolicy::Max)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .build()
            .unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn rejects_duplicates_when_asked() {
        let err = GraphBuilder::new(2)
            .merge_policy(MergePolicy::Reject)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 0, 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::DuplicateEdge { .. }));
    }

    #[test]
    fn duplicate_self_loops_merge() {
        let g = GraphBuilder::new(1)
            .add_edge(0, 0, 1.0)
            .add_edge(0, 0, 2.0)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.self_loop_weight(0), 3.0);
        assert_eq!(g.weighted_degree(0), 3.0);
        assert_eq!(g.total_weight(), 1.5);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = from_unweighted_edges(2, [(0, 2)]).unwrap_err();
        assert!(matches!(err, BuildError::VertexOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_weights() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = from_weighted_edges(2, [(0, 1, w)]).unwrap_err();
            assert!(matches!(err, BuildError::InvalidWeight { .. }), "w={w}");
        }
    }

    #[test]
    fn empty_builder_builds_isolated_vertices() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_is_sorted_after_build() {
        let g = from_unweighted_edges(5, [(4, 0), (2, 0), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbor_ids(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn large_random_graph_symmetry() {
        // Deterministic pseudo-random multigraph; checks symmetrization +
        // merge at a scale where parallel sort paths actually engage.
        let n = 2_000u32;
        let mut edges = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..20_000 {
            let u = next() % n;
            let v = next() % n;
            edges.push((u, v, 1.0 + (next() % 5) as f64));
        }
        let g = from_weighted_edges(n as usize, edges).unwrap();
        assert!(g.validate().is_ok());
    }
}
