//! Edge-list → CSR graph construction.
//!
//! The builder symmetrizes, sorts, and merges duplicate edges in parallel
//! (rayon), since input preparation is itself a scalability concern for the
//! billion-edge graphs the paper targets — Staudt & Meyerhenke treat graph
//! construction as a first-class parallel phase, and this builder follows
//! suit. Multi-edges are not allowed in the paper's model (§2); the builder
//! resolves duplicates according to a [`MergePolicy`].
//!
//! [`GraphBuilder::build`] runs a chunked parallel pipeline (per-chunk degree
//! histograms → prefix-sum offsets → parallel scatter → per-vertex sort +
//! duplicate merge) that produces a CSR **bitwise identical** to the retained
//! sort-based reference path [`GraphBuilder::build_serial`]; the equivalence
//! is property-tested across thread counts.

use crate::csr::{CsrGraph, VertexId, DEFAULT_WEIGHT};
use crate::shared::SharedSlice;
use rayon::prelude::*;

/// How duplicate occurrences of the same undirected edge are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Sum the duplicate weights (natural for multigraph collapsing).
    #[default]
    Sum,
    /// Keep the maximum weight.
    Max,
    /// Reject the input with [`BuildError::DuplicateEdge`].
    Reject,
}

/// Errors produced by [`GraphBuilder::build`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// An endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending edge.
        edge: (VertexId, VertexId),
        /// Declared vertex count.
        n: usize,
    },
    /// A weight was zero, negative, NaN or infinite (paper §2 requires
    /// non-zero positive weights).
    InvalidWeight {
        /// The offending edge.
        edge: (VertexId, VertexId),
        /// The rejected weight value.
        weight: f64,
    },
    /// Duplicate edge under [`MergePolicy::Reject`].
    DuplicateEdge {
        /// The duplicated edge.
        edge: (VertexId, VertexId),
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::VertexOutOfRange { edge, n } => {
                write!(f, "edge ({},{}) references vertex >= n={n}", edge.0, edge.1)
            }
            BuildError::InvalidWeight { edge, weight } => write!(
                f,
                "edge ({},{}) has invalid weight {weight}; weights must be finite and > 0",
                edge.0, edge.1
            ),
            BuildError::DuplicateEdge { edge } => {
                write!(f, "duplicate edge ({},{})", edge.0, edge.1)
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Accumulates an undirected edge list and produces a [`CsrGraph`].
///
/// ```
/// use grappolo_graph::GraphBuilder;
/// let g = GraphBuilder::new(4)
///     .add_edge(0, 1, 1.0)
///     .add_edge(1, 2, 0.5)
///     .add_edge(2, 3, 2.0)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, f64)>,
    merge_policy: MergePolicy,
}

impl GraphBuilder {
    /// A builder for a graph over vertices `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::new(),
            merge_policy: MergePolicy::default(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            num_vertices: n,
            edges: Vec::with_capacity(m),
            merge_policy: MergePolicy::default(),
        }
    }

    /// Sets the duplicate-edge resolution policy (default: sum).
    pub fn merge_policy(mut self, policy: MergePolicy) -> Self {
        self.merge_policy = policy;
        self
    }

    /// Adds an undirected weighted edge `{u, v}`; `u == v` adds a self-loop.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, w: f64) -> Self {
        self.edges.push((u, v, w));
        self
    }

    /// Adds an undirected edge with [`DEFAULT_WEIGHT`].
    pub fn add_unweighted_edge(self, u: VertexId, v: VertexId) -> Self {
        self.add_edge(u, v, DEFAULT_WEIGHT)
    }

    /// Bulk-extends from `(u, v, w)` triples.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId, f64)>>(
        mut self,
        iter: I,
    ) -> Self {
        self.edges.extend(iter);
        self
    }

    /// Bulk-extends from unweighted `(u, v)` pairs.
    pub fn extend_unweighted<I: IntoIterator<Item = (VertexId, VertexId)>>(
        mut self,
        iter: I,
    ) -> Self {
        self.edges
            .extend(iter.into_iter().map(|(u, v)| (u, v, DEFAULT_WEIGHT)));
        self
    }

    /// Number of raw (pre-merge) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Validates, symmetrizes, merges duplicates, and builds the CSR graph.
    ///
    /// Large inputs take the chunked parallel path (per-chunk degree
    /// histograms, prefix-sum offsets, parallel scatter, per-vertex sort +
    /// merge); small inputs or single-thread budgets fall back to
    /// [`GraphBuilder::build_serial`]. Both paths produce bitwise-identical
    /// CSR arrays, independent of the thread count.
    pub fn build(self) -> Result<CsrGraph, BuildError> {
        // The parallel path keeps one dense n-sized histogram per chunk, so
        // it only pays off when the edge count dominates the vertex count;
        // extremely sparse id spaces (n ≫ m) stay serial.
        if self.edges.len() < PARALLEL_EDGE_CUTOFF
            || self.num_vertices > self.edges.len().saturating_mul(4)
            || rayon::current_num_threads() <= 1
        {
            self.build_serial()
        } else {
            self.build_parallel()
        }
    }

    /// Sequential reference path: global sort of the symmetrized entries,
    /// then a single merge scan. Retained as the cross-check oracle for the
    /// parallel path (the two must agree bitwise; see the tests).
    pub fn build_serial(self) -> Result<CsrGraph, BuildError> {
        let n = self.num_vertices;
        validate_edges(&self.edges, n)?;

        // Expand to directed entries: {u,v} u≠v → (u,v) and (v,u); loop once.
        let mut entries: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v, w) in &self.edges {
            entries.push((u, v, w));
            if u != v {
                entries.push((v, u, w));
            }
        }
        // Sorting by weight too makes duplicate runs merge in the same order
        // for both directions of an edge, so float summation stays exactly
        // symmetric (CsrGraph::validate checks mirror weights bit-for-bit).
        entries.sort_unstable_by(entry_order);

        // Merge duplicate (u, v) runs according to policy. Duplicates of the
        // same undirected edge appear as identical consecutive directed pairs,
        // so the policy applies symmetrically.
        let mut merged: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(entries.len());
        for e in entries {
            match merged.last_mut() {
                Some(last) if last.0 == e.0 && last.1 == e.1 => {
                    merge_weight(&mut last.2, e.2, self.merge_policy)
                        .map_err(|()| BuildError::DuplicateEdge { edge: (e.0, e.1) })?
                }
                _ => merged.push(e),
            }
        }

        // Offsets by counting per-vertex entries, then fill.
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &merged {
            offsets[u as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut targets = Vec::with_capacity(merged.len());
        let mut weights = Vec::with_capacity(merged.len());
        for (_, v, w) in merged {
            targets.push(v);
            weights.push(w);
        }

        Ok(CsrGraph::from_sorted_adjacency(offsets, targets, weights))
    }

    /// Chunked parallel construction. Stages (edge chunks are contiguous
    /// input ranges of size `⌈m / threads⌉` — the layout therefore **varies
    /// with the thread count**; see the determinism note below for why the
    /// output does not):
    ///
    /// 1. chunked validation (first input-order error, matching serial);
    /// 2. per-chunk degree histograms of the symmetrized directed entries;
    /// 3. a column pass turning the histograms into per-chunk write cursors
    ///    plus the pre-merge CSR offsets (prefix sum);
    /// 4. parallel scatter of every directed entry into its vertex's slot
    ///    range (chunks own disjoint sub-ranges, so writes never race);
    /// 5. per-vertex sort by `(target, weight-bits)` + duplicate merge in
    ///    place, yielding merged degrees;
    /// 6. prefix sum of merged degrees + parallel compaction into the final
    ///    arrays.
    ///
    /// Determinism: scatter order *within* a vertex's range depends on the
    /// thread-count-dependent chunk layout, so cross-thread-count
    /// reproducibility rests **entirely** on stage 5 sorting each range by
    /// the full `(target, total_cmp(weight))` key: entries comparing equal
    /// under that key are bitwise identical, so every thread count yields
    /// the same sorted sequence, the same merge order, and therefore
    /// bitwise-identical output (equal to [`GraphBuilder::build_serial`],
    /// which sorts by the same key globally). Do not weaken that sort key —
    /// dropping the weight component would break the §5.4-style determinism
    /// contract that CI's determinism job and `tests/ingest.rs` enforce.
    fn build_parallel(self) -> Result<CsrGraph, BuildError> {
        let n = self.num_vertices;
        let edges = &self.edges[..];
        let m = edges.len();
        let threads = rayon::current_num_threads().max(1);
        let chunk = m.div_ceil(threads).max(1);

        // 1. Validation, first error in input order (chunks are in input
        // order and each chunk reports its first offender).
        let errors: Vec<Option<BuildError>> = edges
            .par_chunks(chunk)
            .map(|c| validate_edges(c, n).err())
            .collect();
        if let Some(e) = errors.into_iter().flatten().next() {
            return Err(e);
        }

        // 2. Per-chunk histograms of directed-entry counts per source vertex.
        let mut hists: Vec<Vec<u32>> = edges
            .par_chunks(chunk)
            .map(|c| {
                let mut h = vec![0u32; n];
                for &(u, v, _) in c {
                    h[u as usize] += 1;
                    if u != v {
                        h[v as usize] += 1;
                    }
                }
                h
            })
            .collect();

        // 3. Column pass: rewrite hists[c][v] into the exclusive prefix of
        // counts over chunks (the chunk's first write slot, relative to the
        // vertex start) and collect total pre-merge degrees.
        let rows: Vec<SharedSlice<u32>> = hists.iter_mut().map(|h| SharedSlice::new(h)).collect();
        let degrees: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut running = 0u32;
                for row in &rows {
                    // SAFETY: each column v is touched by exactly one closure
                    // invocation; rows outlive the loop.
                    let count = unsafe { row.read(v) };
                    unsafe { row.write(v, running) };
                    running += count;
                }
                running
            })
            .collect();
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v] as usize;
        }
        let total = offsets[n];

        // 4. Scatter each chunk's directed entries into its reserved slots.
        let mut scratch_targets = vec![0 as VertexId; total];
        let mut scratch_weights = vec![0f64; total];
        {
            let st = SharedSlice::new(&mut scratch_targets);
            let sw = SharedSlice::new(&mut scratch_weights);
            let offsets = &offsets[..];
            hists
                .into_par_iter()
                .enumerate()
                .with_min_len(1)
                .for_each(|(ci, mut cursor)| {
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(m);
                    let mut put = |x: VertexId, y: VertexId, w: f64| {
                        let slot = offsets[x as usize] + cursor[x as usize] as usize;
                        cursor[x as usize] += 1;
                        // SAFETY: slot lies in the sub-range of vertex x's
                        // slots reserved for chunk ci by the column pass;
                        // ranges of distinct chunks are disjoint.
                        unsafe {
                            st.write(slot, y);
                            sw.write(slot, w);
                        }
                    };
                    for &(u, v, w) in &edges[lo..hi] {
                        put(u, v, w);
                        if u != v {
                            put(v, u, w);
                        }
                    }
                });
        }

        // 5. Per-vertex sort + duplicate merge, in place in the scratch
        // arrays; collect merged degrees. Duplicate handling under
        // `MergePolicy::Reject` is deferred to a shrinkage scan below so the
        // hot loop stays branch-light.
        let merged_degrees: Vec<u32> = {
            let st = SharedSlice::new(&mut scratch_targets);
            let sw = SharedSlice::new(&mut scratch_weights);
            let offsets = &offsets[..];
            let policy = self.merge_policy;
            (0..n)
                .into_par_iter()
                .map_init(Vec::new, move |buf: &mut Vec<(VertexId, u64)>, v| {
                    let (start, end) = (offsets[v], offsets[v + 1]);
                    buf.clear();
                    for slot in start..end {
                        // SAFETY: vertex ranges are disjoint across closure
                        // invocations; the scatter stage has finished.
                        unsafe { buf.push((st.read(slot), sw.read(slot).to_bits())) };
                    }
                    // Same key as the serial global sort restricted to this
                    // vertex: (target, weight by total order). total_cmp
                    // agrees with the lexicographic order of sign-flipped
                    // bits, but all builder weights are validated > 0, so
                    // plain bit order suffices.
                    buf.sort_unstable();
                    let mut out = start;
                    for &(t, wbits) in buf.iter() {
                        let w = f64::from_bits(wbits);
                        // SAFETY: in-place rewrite of this vertex's range;
                        // `out` never overtakes the read position.
                        unsafe {
                            if out > start && st.read(out - 1) == t {
                                let mut acc = sw.read(out - 1);
                                // Reject is resolved later via shrinkage.
                                let _ = merge_weight(&mut acc, w, policy);
                                sw.write(out - 1, acc);
                            } else {
                                st.write(out, t);
                                sw.write(out, w);
                                out += 1;
                            }
                        }
                    }
                    (out - start) as u32
                })
                .collect()
        };

        // Reject policy: a vertex whose list shrank saw a duplicate. The
        // smallest such vertex `u` is the first duplicate run's source in the
        // serial path's global sort (the mirror of any duplicate with a
        // smaller endpoint would have shrunk that endpoint instead), so a
        // recount of u's incident edges recovers the exact serial error.
        if self.merge_policy == MergePolicy::Reject {
            if let Some(u) =
                (0..n).find(|&v| (merged_degrees[v] as usize) < offsets[v + 1] - offsets[v])
            {
                let mut counts = std::collections::BTreeMap::new();
                for &(a, b, _) in edges {
                    if a as usize == u || b as usize == u {
                        *counts.entry((a.min(b), a.max(b))).or_insert(0u32) += 1;
                    }
                }
                // Every duplicate partner t satisfies t >= u (u is minimal),
                // so BTreeMap order yields the smallest t first.
                let t = counts
                    .iter()
                    .find(|&(_, &c)| c > 1)
                    .map(|(&(x, y), _)| if x as usize == u { y } else { x })
                    .expect("shrunk vertex must have a duplicate incident edge");
                return Err(BuildError::DuplicateEdge {
                    edge: (u as VertexId, t),
                });
            }
        }

        // 6. Final offsets + parallel compaction.
        let mut final_offsets = vec![0usize; n + 1];
        for v in 0..n {
            final_offsets[v + 1] = final_offsets[v] + merged_degrees[v] as usize;
        }
        let final_total = final_offsets[n];
        let mut targets = vec![0 as VertexId; final_total];
        let mut weights = vec![0f64; final_total];
        {
            let ft = SharedSlice::new(&mut targets);
            let fw = SharedSlice::new(&mut weights);
            let scratch_targets = &scratch_targets[..];
            let scratch_weights = &scratch_weights[..];
            let offsets = &offsets[..];
            let final_offsets = &final_offsets[..];
            (0..n).into_par_iter().for_each(|v| {
                let deg = final_offsets[v + 1] - final_offsets[v];
                let (src, dst) = (offsets[v], final_offsets[v]);
                for i in 0..deg {
                    // SAFETY: destination ranges are disjoint per vertex.
                    unsafe {
                        ft.write(dst + i, scratch_targets[src + i]);
                        fw.write(dst + i, scratch_weights[src + i]);
                    }
                }
            });
        }

        Ok(CsrGraph::from_sorted_adjacency(
            final_offsets,
            targets,
            weights,
        ))
    }
}

/// Edge count below which [`GraphBuilder::build`] stays on the serial path:
/// the parallel pipeline's histogram/scatter setup only pays for itself on
/// inputs big enough to amortize it.
const PARALLEL_EDGE_CUTOFF: usize = 1 << 14;

/// The serial path's global entry order: `(source, target)` then the weight
/// under IEEE total order, so duplicate runs merge identically for both
/// directions of an edge.
fn entry_order(a: &(VertexId, VertexId, f64), b: &(VertexId, VertexId, f64)) -> std::cmp::Ordering {
    (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2))
}

/// Shared validation: first offending edge in input order.
fn validate_edges(edges: &[(VertexId, VertexId, f64)], n: usize) -> Result<(), BuildError> {
    for &(u, v, w) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(BuildError::VertexOutOfRange { edge: (u, v), n });
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(BuildError::InvalidWeight {
                edge: (u, v),
                weight: w,
            });
        }
    }
    Ok(())
}

/// Applies the duplicate policy to an accumulator; `Err(())` means the
/// policy rejects duplicates. Shared with the delta path so batched
/// inserts merge exactly like builder input.
pub(crate) fn merge_weight(acc: &mut f64, w: f64, policy: MergePolicy) -> Result<(), ()> {
    match policy {
        MergePolicy::Sum => *acc += w,
        MergePolicy::Max => *acc = acc.max(w),
        MergePolicy::Reject => return Err(()),
    }
    Ok(())
}

/// Convenience: builds a graph from an unweighted edge list.
pub fn from_unweighted_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Result<CsrGraph, BuildError> {
    GraphBuilder::new(n).extend_unweighted(edges).build()
}

/// Convenience: builds a graph from a weighted edge list.
pub fn from_weighted_edges(
    n: usize,
    edges: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
) -> Result<CsrGraph, BuildError> {
    GraphBuilder::new(n).extend_edges(edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.weighted_degree(1), 2.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn merges_duplicates_by_sum() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 0, 2.5)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.edge_weight(1, 0), Some(3.5));
    }

    #[test]
    fn merges_duplicates_by_max() {
        let g = GraphBuilder::new(2)
            .merge_policy(MergePolicy::Max)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .build()
            .unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
    }

    #[test]
    fn rejects_duplicates_when_asked() {
        let err = GraphBuilder::new(2)
            .merge_policy(MergePolicy::Reject)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 0, 1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::DuplicateEdge { .. }));
    }

    #[test]
    fn duplicate_self_loops_merge() {
        let g = GraphBuilder::new(1)
            .add_edge(0, 0, 1.0)
            .add_edge(0, 0, 2.0)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.self_loop_weight(0), 3.0);
        assert_eq!(g.weighted_degree(0), 3.0);
        assert_eq!(g.total_weight(), 1.5);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = from_unweighted_edges(2, [(0, 2)]).unwrap_err();
        assert!(matches!(err, BuildError::VertexOutOfRange { .. }));
    }

    #[test]
    fn rejects_bad_weights() {
        for w in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = from_weighted_edges(2, [(0, 1, w)]).unwrap_err();
            assert!(matches!(err, BuildError::InvalidWeight { .. }), "w={w}");
        }
    }

    #[test]
    fn empty_builder_builds_isolated_vertices() {
        let g = GraphBuilder::new(4).build().unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_is_sorted_after_build() {
        let g = from_unweighted_edges(5, [(4, 0), (2, 0), (0, 3), (0, 1)]).unwrap();
        assert_eq!(g.neighbor_ids(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn large_random_graph_symmetry() {
        // Deterministic pseudo-random multigraph; checks symmetrization +
        // merge at a scale where parallel sort paths actually engage.
        let n = 2_000u32;
        let mut edges = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..20_000 {
            let u = next() % n;
            let v = next() % n;
            edges.push((u, v, 1.0 + (next() % 5) as f64));
        }
        let g = from_weighted_edges(n as usize, edges).unwrap();
        assert!(g.validate().is_ok());
    }

    /// Deterministic multigraph big enough to engage the parallel path
    /// (≥ `PARALLEL_EDGE_CUTOFF` edges), with duplicate edges, self-loops,
    /// and repeated identical weights.
    fn dense_multigraph_edges(n: u32, m: usize, seed: u64) -> Vec<(VertexId, VertexId, f64)> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        (0..m)
            .map(|_| {
                let u = next() % n;
                // Bias towards collisions so duplicate runs are common.
                let v = if next() % 8 == 0 {
                    u
                } else {
                    next() % (n / 4).max(1)
                };
                (u, v, 0.25 + (next() % 7) as f64 * 0.5)
            })
            .collect()
    }

    fn assert_bitwise_equal(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.adjacency_offsets(), b.adjacency_offsets());
        assert_eq!(a.adjacency_targets(), b.adjacency_targets());
        assert!(a.bitwise_eq(b), "weight bit patterns differ");
    }

    #[test]
    fn parallel_build_bitwise_matches_serial_across_thread_counts() {
        let n = 1_500u32;
        let edges = dense_multigraph_edges(n, 50_000, 42);
        let reference = GraphBuilder::new(n as usize)
            .extend_edges(edges.iter().copied())
            .build_serial()
            .unwrap();
        assert!(reference.validate().is_ok());
        for threads in [1usize, 2, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel = pool.install(|| {
                GraphBuilder::new(n as usize)
                    .extend_edges(edges.iter().copied())
                    .build()
                    .unwrap()
            });
            assert_bitwise_equal(&reference, &parallel);
        }
    }

    #[test]
    fn parallel_build_max_policy_matches_serial() {
        let n = 800u32;
        let edges = dense_multigraph_edges(n, 30_000, 7);
        let serial = GraphBuilder::new(n as usize)
            .merge_policy(MergePolicy::Max)
            .extend_edges(edges.iter().copied())
            .build_serial()
            .unwrap();
        let parallel = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                GraphBuilder::new(n as usize)
                    .merge_policy(MergePolicy::Max)
                    .extend_edges(edges.iter().copied())
                    .build()
                    .unwrap()
            });
        assert_bitwise_equal(&serial, &parallel);
    }

    #[test]
    fn parallel_build_reject_reports_first_sorted_duplicate() {
        // 20k distinct edges plus one planted duplicate: both paths must
        // reject with the same edge.
        let n = 40_000u32;
        let mut edges: Vec<(VertexId, VertexId, f64)> = (0..20_000)
            .map(|i| (i as u32, i as u32 + n / 2, 1.0))
            .collect();
        edges.push((137, 137 + n / 2, 2.0));
        let serial_err = GraphBuilder::new(n as usize)
            .merge_policy(MergePolicy::Reject)
            .extend_edges(edges.iter().copied())
            .build_serial()
            .unwrap_err();
        let parallel_err = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
            .install(|| {
                GraphBuilder::new(n as usize)
                    .merge_policy(MergePolicy::Reject)
                    .extend_edges(edges.iter().copied())
                    .build()
                    .unwrap_err()
            });
        assert_eq!(serial_err, parallel_err);
        assert!(matches!(
            serial_err,
            BuildError::DuplicateEdge { edge: (137, _) }
        ));
    }

    #[test]
    fn parallel_build_validation_errors_match_serial() {
        let n = 30_000usize;
        let mut edges: Vec<(VertexId, VertexId, f64)> = (0..20_000u32)
            .map(|i| (i, (i + 1) % n as u32, 1.0))
            .collect();
        edges[17_000] = (5, n as u32, 1.0); // out of range
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let par_err = pool.install(|| {
            GraphBuilder::new(n)
                .extend_edges(edges.iter().copied())
                .build()
                .unwrap_err()
        });
        let ser_err = GraphBuilder::new(n)
            .extend_edges(edges.iter().copied())
            .build_serial()
            .unwrap_err();
        assert_eq!(par_err, ser_err);

        let mut edges2: Vec<(VertexId, VertexId, f64)> = (0..20_000u32)
            .map(|i| (i, (i + 1) % n as u32, 1.0))
            .collect();
        edges2[100] = (1, 2, f64::NAN);
        let par_err2 = pool.install(|| {
            GraphBuilder::new(n)
                .extend_edges(edges2.iter().copied())
                .build()
                .unwrap_err()
        });
        assert!(matches!(
            par_err2,
            BuildError::InvalidWeight { edge: (1, 2), .. }
        ));
    }
}
