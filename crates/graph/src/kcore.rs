//! k-core decomposition (Batagelj–Zaveršnik, the paper's reference \[13\]).
//!
//! §5.3 frames the recursive vertex-following extension as "similar to that
//! of a k-core decomposition of the graph": peeling degree-1 vertices
//! repeatedly is exactly the computation of the 2-core. This module provides
//! the full decomposition — core numbers for every vertex via the
//! linear-time bucket algorithm — plus the k-core membership test the VF
//! analysis uses.

use crate::csr::{CsrGraph, VertexId};

/// Computes the core number of every vertex: the largest `k` such that the
/// vertex belongs to a subgraph where every vertex has (unweighted,
/// loop-free) degree ≥ `k`.
pub fn core_numbers(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Loop-free degrees.
    let mut degree: Vec<usize> = (0..n as VertexId)
        .map(|v| g.neighbor_ids(v).iter().filter(|&&u| u != v).count())
        .collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree (Batagelj–Zaveršnik).
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n]; // vertex → index in `order`
    let mut order = vec![0 as VertexId; n]; // sorted by current degree
    {
        let mut next = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = next[d];
            order[next[d]] = v as VertexId;
            next[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i] as usize;
        core[v] = degree[v] as u32;
        for j in g.neighbor_range(v as VertexId) {
            let u =
                g.neighbor_ids(v as VertexId)[j - g.neighbor_range(v as VertexId).start] as usize;
            if u == v || degree[u] <= degree[v] {
                continue;
            }
            // Move u one bucket down: swap it with the first vertex of its
            // current degree bucket, then decrement.
            let du = degree[u];
            let pu = pos[u];
            let pw = bins[du];
            let w = order[pw] as usize;
            if u != w {
                order.swap(pu, pw);
                pos[u] = pw;
                pos[w] = pu;
            }
            bins[du] += 1;
            degree[u] -= 1;
        }
    }
    core
}

/// Vertices belonging to the `k`-core (core number ≥ k), ascending.
pub fn k_core_members(g: &CsrGraph, k: u32) -> Vec<VertexId> {
    core_numbers(g)
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= k)
        .map(|(v, _)| v as VertexId)
        .collect()
}

/// The graph's degeneracy: the largest `k` with a non-empty `k`-core.
pub fn degeneracy(g: &CsrGraph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_unweighted_edges;
    use crate::gen::{hub_spoke, ring_of_cliques, CliqueRingConfig, HubSpokeConfig};

    #[test]
    fn path_is_one_core() {
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(core_numbers(&g), vec![1, 1, 1, 1]);
        assert_eq!(degeneracy(&g), 1);
    }

    #[test]
    fn clique_core_numbers() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 3,
            clique_size: 5,
            ..Default::default()
        });
        let core = core_numbers(&g);
        // Every clique member sits in the 4-core (clique of 5).
        assert!(core.iter().all(|&c| c >= 4), "{core:?}");
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn star_spokes_are_one_core() {
        let g = from_unweighted_edges(6, (1..6).map(|v| (0, v))).unwrap();
        let core = core_numbers(&g);
        assert_eq!(core, vec![1, 1, 1, 1, 1, 1]); // hub degenerates with spokes
    }

    #[test]
    fn two_core_matches_recursive_leaf_peeling() {
        // The §5.3 connection: the 2-core is what remains after recursively
        // removing degree-1 vertices.
        let (g, _) = hub_spoke(&HubSpokeConfig {
            num_hubs: 10,
            spokes_per_hub: 3,
            ..Default::default()
        });
        // A chain of hubs with spokes has NO 2-core (the whole thing peels).
        assert!(k_core_members(&g, 2).is_empty());
        // Add a triangle: it survives as the 2-core.
        let n = g.num_vertices();
        let mut b = crate::builder::GraphBuilder::new(n + 3);
        b = b.extend_edges(g.undirected_edges());
        let t = n as VertexId;
        b = b
            .add_edge(t, t + 1, 1.0)
            .add_edge(t + 1, t + 2, 1.0)
            .add_edge(t, t + 2, 1.0);
        b = b.add_edge(0, t, 1.0);
        let g2 = b.build().unwrap();
        let members = k_core_members(&g2, 2);
        assert_eq!(members, vec![t, t + 1, t + 2]);
    }

    #[test]
    fn isolated_and_loops() {
        let g = crate::builder::from_weighted_edges(3, [(0, 0, 1.0)]).unwrap();
        // Self-loops don't count toward core degree.
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn empty_graph() {
        assert!(core_numbers(&CsrGraph::empty(0)).is_empty());
    }

    #[test]
    fn core_numbers_nonincreasing_under_k() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig::default());
        let members_2 = k_core_members(&g, 2);
        let members_5 = k_core_members(&g, 5);
        assert!(members_5.len() <= members_2.len());
        for v in &members_5 {
            assert!(members_2.contains(v));
        }
    }
}
