//! # grappolo-graph
//!
//! Weighted undirected graph substrate for the grappolo-rs reproduction of
//! *"Parallel heuristics for scalable community detection"* (Lu,
//! Halappanavar, Kalyanaraman; Parallel Computing 47, 2015 — extended from
//! IPDPS-W 2014).
//!
//! Provides:
//! * [`CsrGraph`] — compressed sparse row storage with the paper's §2
//!   conventions (symmetric adjacency, self-loops stored once, `k_i` counts
//!   self-loops once, `m = ½ Σ k_i`);
//! * [`GraphBuilder`] — parallel edge-list → CSR construction with
//!   multi-edge merging;
//! * [`io`] — edge-list / METIS (DIMACS10) / binary formats;
//! * [`gen`] — synthetic workload generators, including
//!   [`gen::paper_suite::PaperInput`] proxies for the paper's 11 inputs;
//! * [`stats`] — the Table 1 statistics (degree max/avg/RSD, single-degree
//!   counts) and generator diagnostics;
//! * [`perm`] — vertex relabeling utilities.

#![warn(missing_docs)]

pub mod builder;
pub mod components;
pub mod csr;
pub mod delta;
pub mod gen;
pub mod io;
pub mod kcore;
pub mod perm;
pub mod shared;
pub mod stats;

pub use builder::{
    from_unweighted_edges, from_weighted_edges, BuildError, GraphBuilder, MergePolicy,
};
pub use components::{
    connected_components, extract_components, ComponentLabeling, ComponentSubgraph,
};
pub use csr::{CsrGraph, VertexId, DEFAULT_WEIGHT};
pub use delta::{parse_edge_batch, BatchParseError, DeltaError, EdgeChange, EdgeDelta};
pub use shared::SharedSlice;
pub use stats::GraphStats;
