//! Vertex relabeling / permutation utilities.
//!
//! The parallel algorithm's §5.4 step (1) ends with "Label the resulting
//! vertices from 1…n using an arbitrary ordering" — these helpers implement
//! such relabelings, plus random shuffles used by the harness to decorrelate
//! vertex order from generator order (the paper notes vertex ordering affects
//! convergence, §6.2.2).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Applies a permutation to vertex labels: vertex `v` becomes `perm[v]`.
///
/// `perm` must be a bijection on `0..n` (checked). The result preserves
/// weights, self-loops, and therefore all modularity quantities.
pub fn relabel(g: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length must equal vertex count");
    debug_assert!(is_permutation(perm), "perm must be a bijection on 0..n");

    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (u, v, w) in g.undirected_edges() {
        b = b.add_edge(perm[u as usize], perm[v as usize], w);
    }
    b.build().expect("relabeling a valid graph cannot fail")
}

/// True if `perm` is a bijection on `0..perm.len()`.
pub fn is_permutation(perm: &[VertexId]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let p = p as usize;
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// A uniformly random permutation of `0..n` from a fixed seed.
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Relabels with a random permutation; returns the graph and the permutation
/// used (so partitions can be mapped back).
pub fn shuffle_vertices(g: &CsrGraph, seed: u64) -> (CsrGraph, Vec<VertexId>) {
    let perm = random_permutation(g.num_vertices(), seed);
    (relabel(g, &perm), perm)
}

/// Inverts a permutation: `inv[perm[v]] = v`.
pub fn invert_permutation(perm: &[VertexId]) -> Vec<VertexId> {
    let mut inv = vec![0 as VertexId; perm.len()];
    for (v, &p) in perm.iter().enumerate() {
        inv[p as usize] = v as VertexId;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_weighted_edges;

    fn sample() -> CsrGraph {
        from_weighted_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 2, 3.0)]).unwrap()
    }

    #[test]
    fn identity_relabel_is_identity() {
        let g = sample();
        let id: Vec<VertexId> = (0..4).collect();
        let g2 = relabel(&g, &id);
        for v in 0..4 {
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                g2.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = sample();
        let perm = vec![3, 2, 1, 0];
        let g2 = relabel(&g, &perm);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.total_weight(), g.total_weight());
        assert_eq!(g2.edge_weight(3, 2), Some(1.0)); // old (0,1)
        assert_eq!(g2.self_loop_weight(1), 3.0); // old loop on 2
    }

    #[test]
    fn random_permutation_is_bijection_and_seeded() {
        let p1 = random_permutation(100, 7);
        let p2 = random_permutation(100, 7);
        let p3 = random_permutation(100, 8);
        assert!(is_permutation(&p1));
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
    }

    #[test]
    fn invert_round_trips() {
        let p = random_permutation(50, 3);
        let inv = invert_permutation(&p);
        for v in 0..50 {
            assert_eq!(inv[p[v] as usize] as usize, v);
        }
    }

    #[test]
    fn is_permutation_rejects_bad() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[0, 2]));
        assert!(is_permutation(&[1, 0]));
        assert!(is_permutation(&[]));
    }

    #[test]
    fn shuffle_preserves_total_weight() {
        let g = sample();
        let (g2, perm) = shuffle_vertices(&g, 42);
        assert!(is_permutation(&perm));
        assert_eq!(g2.total_weight(), g.total_weight());
        assert_eq!(g2.num_edges(), g.num_edges());
    }
}
