//! Named synthetic proxies for the paper's 11 real-world inputs.
//!
//! Each [`PaperInput`] pairs a generator configuration that reproduces the
//! input's structural *regime* (DESIGN.md §4) with the statistics the paper
//! published for the real graph (Table 1) and the modularities it reported
//! (Table 2), so harnesses can print paper-vs-measured side by side.
//!
//! Proxies default to laptop scale (2^15–2^17 vertices); `scale` multiplies
//! vertex counts for smaller smoke tests or larger stress runs.

use super::{
    grid3d, planted_partition, random_geometric, road_network, web_graph, GridConfig,
    PlantedConfig, RggConfig, RoadConfig, WebConfig,
};
use crate::csr::CsrGraph;
use serde::{Deserialize, Serialize};

/// Identifier for one of the paper's Table 1 inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperInput {
    /// CNR web crawl (325 K vertices / 2.7 M edges, RSD 13.0).
    Cnr,
    /// coPapersDBLP co-authorship (540 K / 15.2 M, RSD 1.17).
    CoPapersDblp,
    /// Channel flow mesh (4.8 M / 42.7 M, RSD 0.061).
    Channel,
    /// Europe-osm road network (50.9 M / 54.1 M, avg degree 2.12).
    EuropeOsm,
    /// soc-LiveJournal1 social network (4.8 M / 68.5 M, RSD 2.55).
    SocLiveJournal,
    /// MG1 ocean metagenomics homology graph (1.3 M / 102 M, weighted).
    Mg1,
    /// Rgg_n_2_24_s0 random geometric graph (16.8 M / 132.6 M, RSD 0.251).
    Rgg,
    /// uk-2002 web crawl (18.5 M / 261.8 M, RSD 5.12, skewed coloring).
    Uk2002,
    /// NLPKKT240 KKT mesh (28.0 M / 373.2 M, RSD 0.083, poor communities).
    Nlpkkt240,
    /// MG2 ocean metagenomics homology graph (11.0 M / 674.1 M, weighted).
    Mg2,
    /// friendster social network (51.9 M / 1.8 B, RSD 17.4).
    Friendster,
}

/// Statistics the paper published for the real input (Tables 1 and 2).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PaperReference {
    /// Display name used in the paper.
    pub name: &'static str,
    /// Table 1: number of vertices.
    pub num_vertices: u64,
    /// Table 1: number of edges.
    pub num_edges: u64,
    /// Table 1: maximum degree.
    pub max_degree: u64,
    /// Table 1: average degree.
    pub avg_degree: f64,
    /// Table 1: degree RSD.
    pub degree_rsd: f64,
    /// Table 2: final modularity of the parallel implementation (8 threads).
    pub parallel_modularity: Option<f64>,
    /// Table 2: final modularity of serial Louvain (None where it crashed).
    pub serial_modularity: Option<f64>,
    /// Table 2: absolute speedup at 8 threads (None where serial crashed).
    pub speedup_8t: Option<f64>,
}

impl PaperInput {
    /// All inputs in the paper's Table 1 order.
    pub const ALL: [PaperInput; 11] = [
        PaperInput::Cnr,
        PaperInput::CoPapersDblp,
        PaperInput::Channel,
        PaperInput::EuropeOsm,
        PaperInput::SocLiveJournal,
        PaperInput::Mg1,
        PaperInput::Rgg,
        PaperInput::Uk2002,
        PaperInput::Nlpkkt240,
        PaperInput::Mg2,
        PaperInput::Friendster,
    ];

    /// The nine inputs for which the paper had both serial and parallel
    /// results (serial Louvain crashed on Europe-osm and friendster).
    pub const WITH_SERIAL: [PaperInput; 9] = [
        PaperInput::Cnr,
        PaperInput::CoPapersDblp,
        PaperInput::Channel,
        PaperInput::SocLiveJournal,
        PaperInput::Mg1,
        PaperInput::Rgg,
        PaperInput::Uk2002,
        PaperInput::Nlpkkt240,
        PaperInput::Mg2,
    ];

    /// Short lowercase identifier (used for CLI flags and result files).
    pub fn id(&self) -> &'static str {
        match self {
            PaperInput::Cnr => "cnr",
            PaperInput::CoPapersDblp => "copapersdblp",
            PaperInput::Channel => "channel",
            PaperInput::EuropeOsm => "europe-osm",
            PaperInput::SocLiveJournal => "soc-livejournal",
            PaperInput::Mg1 => "mg1",
            PaperInput::Rgg => "rgg",
            PaperInput::Uk2002 => "uk-2002",
            PaperInput::Nlpkkt240 => "nlpkkt240",
            PaperInput::Mg2 => "mg2",
            PaperInput::Friendster => "friendster",
        }
    }

    /// Parses an id produced by [`PaperInput::id`].
    pub fn from_id(id: &str) -> Option<PaperInput> {
        PaperInput::ALL.iter().copied().find(|p| p.id() == id)
    }

    /// Paper-published statistics for the real input.
    pub fn reference(&self) -> PaperReference {
        match self {
            PaperInput::Cnr => PaperReference {
                name: "CNR",
                num_vertices: 325_557,
                num_edges: 2_738_970,
                max_degree: 18_236,
                avg_degree: 16.826,
                degree_rsd: 13.024,
                parallel_modularity: Some(0.912608),
                serial_modularity: Some(0.912784),
                speedup_8t: Some(5.37),
            },
            PaperInput::CoPapersDblp => PaperReference {
                name: "coPapersDBLP",
                num_vertices: 540_486,
                num_edges: 15_245_729,
                max_degree: 3_299,
                avg_degree: 56.414,
                degree_rsd: 1.174,
                parallel_modularity: Some(0.858088),
                serial_modularity: Some(0.848702),
                speedup_8t: Some(2.08),
            },
            PaperInput::Channel => PaperReference {
                name: "Channel",
                num_vertices: 4_802_000,
                num_edges: 42_681_372,
                max_degree: 18,
                avg_degree: 17.776,
                degree_rsd: 0.061,
                parallel_modularity: Some(0.933388),
                serial_modularity: Some(0.849672),
                speedup_8t: Some(1.45),
            },
            PaperInput::EuropeOsm => PaperReference {
                name: "Europe-osm",
                num_vertices: 50_912_018,
                num_edges: 54_054_660,
                max_degree: 13,
                avg_degree: 2.123,
                degree_rsd: 0.225,
                parallel_modularity: Some(0.994996),
                serial_modularity: None,
                speedup_8t: None,
            },
            PaperInput::SocLiveJournal => PaperReference {
                name: "Soc-LiveJournal1",
                num_vertices: 4_847_571,
                num_edges: 68_475_391,
                max_degree: 22_887,
                avg_degree: 28.251,
                degree_rsd: 2.553,
                parallel_modularity: Some(0.751404),
                serial_modularity: Some(0.726785),
                speedup_8t: Some(2.72),
            },
            PaperInput::Mg1 => PaperReference {
                name: "MG1",
                num_vertices: 1_280_000,
                num_edges: 102_268_735,
                max_degree: 148_155,
                avg_degree: 159.794,
                degree_rsd: 2.311,
                parallel_modularity: Some(0.968723),
                serial_modularity: Some(0.968671),
                speedup_8t: Some(4.39),
            },
            PaperInput::Rgg => PaperReference {
                name: "Rgg_n_2_24_s0",
                num_vertices: 16_777_216,
                num_edges: 132_557_200,
                max_degree: 40,
                avg_degree: 15.802,
                degree_rsd: 0.251,
                parallel_modularity: Some(0.992698),
                serial_modularity: Some(0.989637),
                speedup_8t: Some(3.24),
            },
            PaperInput::Uk2002 => PaperReference {
                name: "uk-2002",
                num_vertices: 18_520_486,
                num_edges: 261_787_258,
                max_degree: 194_955,
                avg_degree: 28.270,
                degree_rsd: 5.124,
                parallel_modularity: Some(0.989569),
                serial_modularity: Some(0.9897),
                speedup_8t: Some(1.59),
            },
            PaperInput::Nlpkkt240 => PaperReference {
                name: "NLPKKT240",
                num_vertices: 27_993_600,
                num_edges: 373_239_376,
                max_degree: 27,
                avg_degree: 26.666,
                degree_rsd: 0.083,
                parallel_modularity: Some(0.934717),
                serial_modularity: Some(0.952104),
                speedup_8t: Some(13.07),
            },
            PaperInput::Mg2 => PaperReference {
                name: "MG2",
                num_vertices: 11_005_829,
                num_edges: 674_142_381,
                max_degree: 5_466,
                avg_degree: 122.506,
                degree_rsd: 2.370,
                parallel_modularity: Some(0.998397),
                serial_modularity: Some(0.998426),
                speedup_8t: Some(2.86),
            },
            PaperInput::Friendster => PaperReference {
                name: "friendster",
                num_vertices: 51_952_104,
                num_edges: 1_801_014_245,
                max_degree: 8_603_554,
                avg_degree: 69.333,
                degree_rsd: 17.354,
                parallel_modularity: Some(0.626139),
                serial_modularity: None,
                speedup_8t: None,
            },
        }
    }

    /// True for inputs whose single-degree vertices were pre-pruned when the
    /// graph was generated (paper §6.1: Channel, MG1, MG2), making baseline
    /// and baseline+VF equivalent.
    pub fn vf_prepruned(&self) -> bool {
        matches!(
            self,
            PaperInput::Channel | PaperInput::Mg1 | PaperInput::Mg2
        )
    }

    /// Generates the synthetic proxy at size multiplier `scale`
    /// (1.0 ≈ 3 × 10⁴–10⁵ vertices) with the given seed.
    pub fn generate(&self, scale: f64, seed: u64) -> CsrGraph {
        let sz = |base: usize| ((base as f64 * scale) as usize).max(64);
        match self {
            // Web crawl: heavy-tailed hubs over a strong community backbone
            // (Table 2: Q ≈ 0.91, Table 1: RSD 13).
            PaperInput::Cnr => {
                web_graph(&WebConfig {
                    num_vertices: sz(32_768),
                    num_communities: sz(32_768) / 150,
                    avg_intra_degree: 14.0,
                    avg_inter_degree: 0.5,
                    overlay_per_vertex: 0.6,
                    hub_bias: 7.0,
                    seed,
                })
                .0
            }
            // Dense co-authorship with strong planted communities.
            PaperInput::CoPapersDblp => {
                planted_partition(&PlantedConfig {
                    num_vertices: sz(32_768),
                    num_communities: sz(32_768) / 80,
                    size_exponent: 1.2,
                    avg_intra_degree: 22.0,
                    avg_inter_degree: 2.0,
                    weight_range: None,
                    seed,
                })
                .0
            }
            // Uniform-degree 3-D mesh, weak communities.
            PaperInput::Channel => {
                let side = ((sz(32_768) as f64).cbrt().round() as usize).max(4);
                grid3d(&GridConfig {
                    side,
                    periodic: true,
                    noise_fraction: 0.0,
                    seed,
                })
            }
            // Road network: chains, spurs, avg degree ≈ 2.1.
            PaperInput::EuropeOsm => road_network(&RoadConfig {
                num_vertices: sz(131_072),
                spur_fraction: 0.15,
                shortcut_per_vertex: 0.12,
                seed,
            }),
            // Social network: RSD ≈ 2.5, moderate communities (Q ≈ 0.75).
            PaperInput::SocLiveJournal => {
                web_graph(&WebConfig {
                    num_vertices: sz(65_536),
                    num_communities: sz(65_536) / 250,
                    avg_intra_degree: 10.0,
                    avg_inter_degree: 1.2,
                    overlay_per_vertex: 1.2,
                    hub_bias: 7.0,
                    seed,
                })
                .0
            }
            // Weighted homology graph, very strong communities.
            PaperInput::Mg1 => {
                planted_partition(&PlantedConfig {
                    num_vertices: sz(32_768),
                    num_communities: sz(32_768) / 50,
                    size_exponent: 0.8,
                    avg_intra_degree: 28.0,
                    avg_inter_degree: 0.8,
                    weight_range: Some((1.0, 10.0)),
                    seed,
                })
                .0
            }
            // Random geometric: uniform degree AND strong communities.
            PaperInput::Rgg => random_geometric(&RggConfig {
                num_vertices: sz(65_536),
                radius: 0.0,
                seed,
            }),
            // Web crawl with extreme hubs → skewed color classes, yet very
            // strong communities (Q ≈ 0.99).
            PaperInput::Uk2002 => {
                web_graph(&WebConfig {
                    num_vertices: sz(65_536),
                    num_communities: sz(65_536) / 120,
                    avg_intra_degree: 18.0,
                    avg_inter_degree: 0.15,
                    overlay_per_vertex: 0.35,
                    hub_bias: 9.0,
                    seed,
                })
                .0
            }
            // KKT mesh with noise: poorest community structure in the suite.
            PaperInput::Nlpkkt240 => {
                let side = ((sz(65_536) as f64).cbrt().round() as usize).max(4);
                grid3d(&GridConfig {
                    side,
                    periodic: true,
                    noise_fraction: 0.10,
                    seed,
                })
            }
            // Bigger weighted homology graph, Q ≈ 0.998.
            PaperInput::Mg2 => {
                planted_partition(&PlantedConfig {
                    num_vertices: sz(65_536),
                    num_communities: sz(65_536) / 60,
                    size_exponent: 0.8,
                    avg_intra_degree: 30.0,
                    avg_inter_degree: 0.5,
                    weight_range: Some((1.0, 10.0)),
                    seed,
                })
                .0
            }
            // Social monster: extreme hub (RSD 17), weakest communities of
            // the suite (Q ≈ 0.63).
            PaperInput::Friendster => {
                web_graph(&WebConfig {
                    num_vertices: sz(131_072),
                    num_communities: sz(131_072) / 400,
                    avg_intra_degree: 7.0,
                    avg_inter_degree: 1.8,
                    overlay_per_vertex: 1.4,
                    hub_bias: 12.0,
                    seed,
                })
                .0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    const TEST_SCALE: f64 = 0.125;

    #[test]
    fn all_inputs_generate_and_validate() {
        for input in PaperInput::ALL {
            let g = input.generate(TEST_SCALE, 1);
            assert!(g.validate().is_ok(), "{} invalid", input.id());
            assert!(g.num_edges() > 0, "{} empty", input.id());
        }
    }

    #[test]
    fn ids_round_trip() {
        for input in PaperInput::ALL {
            assert_eq!(PaperInput::from_id(input.id()), Some(input));
        }
        assert_eq!(PaperInput::from_id("nope"), None);
    }

    #[test]
    fn references_are_complete() {
        for input in PaperInput::ALL {
            let r = input.reference();
            assert!(r.num_vertices > 0);
            assert!(r.num_edges > 0);
            assert!(r.avg_degree > 0.0);
        }
        // serial crashed exactly on Europe-osm and friendster (paper Table 2)
        assert!(PaperInput::EuropeOsm
            .reference()
            .serial_modularity
            .is_none());
        assert!(PaperInput::Friendster
            .reference()
            .serial_modularity
            .is_none());
        assert_eq!(PaperInput::WITH_SERIAL.len(), 9);
    }

    #[test]
    fn degree_rsd_ordering_matches_paper_regimes() {
        // Table 1's key structural contrast: meshes ≈ 0, road < 1,
        // social/web ≫ 1. Verify the proxies preserve the ordering.
        let channel = GraphStats::compute(&PaperInput::Channel.generate(TEST_SCALE, 1));
        let road = GraphStats::compute(&PaperInput::EuropeOsm.generate(TEST_SCALE, 1));
        let soclj = GraphStats::compute(&PaperInput::SocLiveJournal.generate(TEST_SCALE, 1));
        let friend = GraphStats::compute(&PaperInput::Friendster.generate(TEST_SCALE, 1));
        assert!(channel.degree_rsd < 0.1, "mesh RSD {}", channel.degree_rsd);
        assert!(road.degree_rsd < 1.0, "road RSD {}", road.degree_rsd);
        assert!(soclj.degree_rsd > 1.0, "social RSD {}", soclj.degree_rsd);
        assert!(
            friend.degree_rsd > soclj.degree_rsd,
            "friendster RSD {} should exceed livejournal {}",
            friend.degree_rsd,
            soclj.degree_rsd
        );
    }

    #[test]
    fn road_proxy_has_road_avg_degree() {
        let s = GraphStats::compute(&PaperInput::EuropeOsm.generate(TEST_SCALE, 1));
        assert!(s.avg_degree < 3.0, "avg {}", s.avg_degree);
    }

    #[test]
    fn scale_changes_size() {
        let small = PaperInput::Cnr.generate(0.0625, 1);
        let larger = PaperInput::Cnr.generate(0.25, 1);
        assert!(larger.num_vertices() > 2 * small.num_vertices());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperInput::Mg1.generate(TEST_SCALE, 7);
        let b = PaperInput::Mg1.generate(TEST_SCALE, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(
            a.neighbors(10).collect::<Vec<_>>(),
            b.neighbors(10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn prepruned_flags_match_paper() {
        assert!(PaperInput::Channel.vf_prepruned());
        assert!(PaperInput::Mg1.vf_prepruned());
        assert!(PaperInput::Mg2.vf_prepruned());
        assert!(!PaperInput::Cnr.vf_prepruned());
    }
}
