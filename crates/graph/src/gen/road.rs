//! Road-network-like generator: a spatial spanning tree over random points
//! plus short local shortcut edges and dangling spurs.
//!
//! Proxy for Europe-osm (average degree 2.12, degree RSD 0.225, long chains,
//! a large single-degree-vertex population). This is the input family where
//! the paper found the VF heuristic could *prolong* convergence (§6.2,
//! "Effectiveness of the VF heuristic") — reproducing that regime requires
//! chains and spurs, which this generator creates explicitly.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`road_network`].
#[derive(Clone, Debug)]
pub struct RoadConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Fraction of vertices that become degree-1 spur endpoints hanging off
    /// the main network (Europe-osm-style dead ends).
    pub spur_fraction: f64,
    /// Extra local shortcut edges per vertex (beyond the spanning tree),
    /// connecting spatially nearby vertices. 0.12 gives avg degree ≈ 2.1.
    pub shortcut_per_vertex: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RoadConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            spur_fraction: 0.15,
            shortcut_per_vertex: 0.12,
            seed: 1,
        }
    }
}

/// Generates a road-network-like graph.
///
/// Construction: scatter points on a `k × k` virtual grid (`k ≈ √n`); build a
/// randomized spanning tree connecting each vertex to a previously placed
/// vertex in the same or an adjacent cell (keeping edges spatially short);
/// add local shortcuts; then re-point `spur_fraction` of leaf-candidates as
/// degree-1 spurs.
pub fn road_network(cfg: &RoadConfig) -> CsrGraph {
    let n = cfg.num_vertices;
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let num_spurs = ((n as f64) * cfg.spur_fraction.clamp(0.0, 0.9)) as usize;
    let core_n = n - num_spurs;
    assert!(core_n >= 2, "too many spurs for n={n}");

    // Points for core vertices in the unit square.
    let pts: Vec<(f64, f64)> = (0..core_n).map(|_| (rng.gen(), rng.gen())).collect();
    let k = ((core_n as f64).sqrt() as usize).max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        (
            ((p.0 * k as f64) as usize).min(k - 1),
            ((p.1 * k as f64) as usize).min(k - 1),
        )
    };
    let mut cells: Vec<Vec<VertexId>> = vec![Vec::new(); k * k];

    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(n * 2);

    // Spanning connection: attach each new core vertex to a random already
    // placed vertex from its own or a neighboring cell (falling back to the
    // most recent vertex to guarantee connectivity).
    #[allow(clippy::needless_range_loop)] // `v` is a vertex id, not just an index
    for v in 0..core_n {
        let (cx, cy) = cell_of(pts[v]);
        if v > 0 {
            let mut candidates: Vec<VertexId> = Vec::new();
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let nx = cx as isize + dx;
                    let ny = cy as isize + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < k && (ny as usize) < k {
                        candidates.extend(&cells[ny as usize * k + nx as usize]);
                    }
                }
            }
            let target = if candidates.is_empty() {
                (v - 1) as VertexId
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            };
            let w = 1.0 + rng.gen::<f64>(); // road lengths vary
            edges.push((v as VertexId, target, w));
        }
        cells[cy * k + cx].push(v as VertexId);
    }

    // Local shortcuts: connect random same-cell pairs.
    let num_shortcuts = ((core_n as f64) * cfg.shortcut_per_vertex) as usize;
    for _ in 0..num_shortcuts {
        let c = rng.gen_range(0..cells.len());
        let cell = &cells[c];
        if cell.len() >= 2 {
            let a = cell[rng.gen_range(0..cell.len())];
            let b = cell[rng.gen_range(0..cell.len())];
            if a != b {
                edges.push((a, b, 1.0 + rng.gen::<f64>()));
            }
        }
    }

    // Spurs: vertices core_n..n each hang off one random core vertex.
    for s in core_n..n {
        let anchor = rng.gen_range(0..core_n) as VertexId;
        edges.push((s as VertexId, anchor, 1.0 + rng.gen::<f64>()));
    }

    GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{connected_components, GraphStats};

    #[test]
    fn deterministic_for_seed() {
        let cfg = RoadConfig {
            num_vertices: 3000,
            ..Default::default()
        };
        let g1 = road_network(&cfg);
        let g2 = road_network(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(
            g1.neighbors(100).collect::<Vec<_>>(),
            g2.neighbors(100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn connected() {
        let g = road_network(&RoadConfig {
            num_vertices: 5000,
            ..Default::default()
        });
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn average_degree_is_road_like() {
        let g = road_network(&RoadConfig {
            num_vertices: 20_000,
            ..Default::default()
        });
        let s = GraphStats::compute(&g);
        assert!(
            s.avg_degree > 1.8 && s.avg_degree < 2.8,
            "avg degree {} should be ≈2.1 (Europe-osm regime)",
            s.avg_degree
        );
    }

    #[test]
    fn has_many_single_degree_vertices() {
        let g = road_network(&RoadConfig {
            num_vertices: 20_000,
            ..Default::default()
        });
        let s = GraphStats::compute(&g);
        // Spur fraction 0.15 plus natural tree leaves.
        assert!(
            s.num_single_degree as f64 > 0.10 * s.num_vertices as f64,
            "expected ≥10% single-degree vertices, got {}",
            s.num_single_degree
        );
    }

    #[test]
    fn degree_rsd_is_low() {
        let g = road_network(&RoadConfig {
            num_vertices: 20_000,
            ..Default::default()
        });
        let s = GraphStats::compute(&g);
        assert!(
            s.degree_rsd < 1.0,
            "road RSD {} should be low",
            s.degree_rsd
        );
    }

    #[test]
    fn spur_fraction_zero_still_builds() {
        let g = road_network(&RoadConfig {
            num_vertices: 1000,
            spur_fraction: 0.0,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(connected_components(&g), 1);
    }
}
