//! Erdős–Rényi random graphs (G(n, m) flavor).
//!
//! ER graphs have essentially *no* community structure (expected modularity
//! of the best partition decays with density), making them the negative
//! control for solver tests: modularity should stay far below the planted /
//! geometric families. They are also used by failure-injection tests.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`erdos_renyi`].
#[derive(Clone, Debug)]
pub struct ErConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of (pre-merge) random edges to sample.
    pub num_edges: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1_000,
            num_edges: 5_000,
            seed: 1,
        }
    }
}

/// Generates an Erdős–Rényi-style random graph by sampling `num_edges`
/// endpoint pairs uniformly (duplicates merge; self-pairs re-rolled).
pub fn erdos_renyi(cfg: &ErConfig) -> CsrGraph {
    let n = cfg.num_vertices;
    assert!(n >= 2);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges = Vec::with_capacity(cfg.num_edges);
    for _ in 0..cfg.num_edges {
        let u = rng.gen_range(0..n) as VertexId;
        let mut v = rng.gen_range(0..n) as VertexId;
        while v == u {
            v = rng.gen_range(0..n) as VertexId;
        }
        edges.push((u, v, 1.0));
    }
    GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_for_seed() {
        let cfg = ErConfig::default();
        assert_eq!(erdos_renyi(&cfg).num_edges(), erdos_renyi(&cfg).num_edges());
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(&ErConfig::default());
        for v in 0..g.num_vertices() as VertexId {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn edge_count_close_to_target() {
        let cfg = ErConfig {
            num_vertices: 10_000,
            num_edges: 30_000,
            seed: 2,
        };
        let g = erdos_renyi(&cfg);
        // Few duplicate samples at this density.
        assert!(g.num_edges() > 29_000 && g.num_edges() <= 30_000);
    }

    #[test]
    fn poisson_like_degrees() {
        let cfg = ErConfig {
            num_vertices: 10_000,
            num_edges: 50_000,
            seed: 3,
        };
        let s = GraphStats::compute(&erdos_renyi(&cfg));
        // Poisson(10): RSD ≈ 1/sqrt(10) ≈ 0.32.
        assert!((s.avg_degree - 10.0).abs() < 0.5);
        assert!(s.degree_rsd < 0.5);
    }
}
