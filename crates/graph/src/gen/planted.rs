//! Planted-partition ("LFR-lite") generator: ground-truth communities with
//! controllable mixing and power-law community sizes.
//!
//! Proxy regime for coPapersDBLP / MG1 / MG2 (strong community structure,
//! final modularity 0.85–0.998 in the paper's Table 2). Weighted mode mirrors
//! the metagenomics graphs, whose homology edges carry similarity weights.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`planted_partition`].
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target number of communities (actual count may differ by ±1 after
    /// size sampling).
    pub num_communities: usize,
    /// Power-law exponent for community sizes (`0.0` = equal sizes;
    /// typical real-world value ≈ 1–2).
    pub size_exponent: f64,
    /// Expected intra-community degree per vertex.
    pub avg_intra_degree: f64,
    /// Expected inter-community degree per vertex (mixing).
    pub avg_inter_degree: f64,
    /// If set, intra edges draw weights uniformly from this range and inter
    /// edges from a range scaled down by 4× (homology-like contrast);
    /// otherwise all weights are 1.
    pub weight_range: Option<(f64, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            num_communities: 100,
            size_exponent: 1.0,
            avg_intra_degree: 12.0,
            avg_inter_degree: 2.0,
            weight_range: None,
            seed: 1,
        }
    }
}

/// Generates a planted-partition graph and returns it with the ground-truth
/// community of each vertex.
pub fn planted_partition(cfg: &PlantedConfig) -> (CsrGraph, Vec<u32>) {
    assert!(cfg.num_vertices > 0 && cfg.num_communities > 0);
    assert!(cfg.num_communities <= cfg.num_vertices);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let sizes = power_law_sizes(
        cfg.num_vertices,
        cfg.num_communities,
        cfg.size_exponent,
        &mut rng,
    );

    // Assign contiguous vertex ranges to communities, then scatter via a
    // seeded shuffle so community membership is uncorrelated with vertex id.
    let n = cfg.num_vertices;
    let mut ground_truth = vec![0u32; n];
    let mut starts = Vec::with_capacity(sizes.len());
    {
        let mut acc = 0usize;
        for (c, &s) in sizes.iter().enumerate() {
            starts.push(acc);
            ground_truth[acc..acc + s].fill(c as u32);
            acc += s;
        }
        debug_assert_eq!(acc, n);
    }
    let perm = crate::perm::random_permutation(n, cfg.seed ^ 0x9e37_79b9);
    let mut scattered_truth = vec![0u32; n];
    for v in 0..n {
        scattered_truth[perm[v] as usize] = ground_truth[v];
    }

    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
    let weight_of = |rng: &mut SmallRng, intra: bool| -> f64 {
        match cfg.weight_range {
            None => 1.0,
            Some((lo, hi)) => {
                let w = rng.gen_range(lo..=hi);
                if intra {
                    w
                } else {
                    (w / 4.0).max(lo / 4.0)
                }
            }
        }
    };

    // Intra edges: per community, G(s, p_in) sampled by expected edge count
    // (fast for sparse p): draw E_in ≈ s * avg_intra / 2 random pairs.
    for (c, &s) in sizes.iter().enumerate() {
        if s < 2 {
            continue;
        }
        let start = starts[c];
        let target_edges = ((s as f64) * cfg.avg_intra_degree / 2.0).round() as usize;
        let max_possible = s * (s - 1) / 2;
        let target_edges = target_edges.min(max_possible * 2); // duplicates merge
        let pick = Uniform::new(0, s);
        for _ in 0..target_edges {
            let a = pick.sample(&mut rng);
            let mut b = pick.sample(&mut rng);
            while b == a {
                b = pick.sample(&mut rng);
            }
            let (u, v) = (perm[start + a], perm[start + b]);
            let w = weight_of(&mut rng, true);
            edges.push((u, v, w));
        }
        // Spanning chain so every community is internally connected; makes
        // ground truth recoverable and modularity targets stable.
        for i in 1..s {
            let w = weight_of(&mut rng, true);
            edges.push((perm[start + i - 1], perm[start + i], w));
        }
    }

    // Inter edges: global random pairs across different communities.
    let target_inter = ((n as f64) * cfg.avg_inter_degree / 2.0).round() as usize;
    let pick = Uniform::new(0, n);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < target_inter && attempts < target_inter * 20 + 100 {
        attempts += 1;
        let a = pick.sample(&mut rng);
        let b = pick.sample(&mut rng);
        if a == b || ground_truth[a] == ground_truth[b] {
            continue;
        }
        let w = weight_of(&mut rng, false);
        edges.push((perm[a], perm[b], w));
        placed += 1;
    }

    let g = GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges");
    (g, scattered_truth)
}

/// Samples `k` community sizes summing to `n`, proportional to
/// `(rank)^-exponent`, each at least 1.
fn power_law_sizes(n: usize, k: usize, exponent: f64, rng: &mut SmallRng) -> Vec<usize> {
    let mut raw: Vec<f64> = (1..=k)
        .map(|r| (r as f64).powf(-exponent) * (0.75 + 0.5 * rng.gen::<f64>()))
        .collect();
    let total: f64 = raw.iter().sum();
    for w in &mut raw {
        *w /= total;
    }
    let mut sizes: Vec<usize> = raw
        .iter()
        .map(|w| ((w * n as f64) as usize).max(1))
        .collect();
    // Fix rounding drift to make the sizes sum exactly to n.
    let mut diff = n as i64 - sizes.iter().sum::<usize>() as i64;
    let mut idx = 0usize;
    while diff != 0 {
        let i = idx % k;
        if diff > 0 {
            sizes[i] += 1;
            diff -= 1;
        } else if sizes[i] > 1 {
            sizes[i] -= 1;
            diff += 1;
        }
        idx += 1;
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{connected_components, GraphStats};

    #[test]
    fn sizes_sum_to_n() {
        let mut rng = SmallRng::seed_from_u64(1);
        for &(n, k, e) in &[(100, 10, 1.0), (57, 7, 2.0), (10, 10, 0.0), (1000, 3, 1.5)] {
            let s = power_law_sizes(n, k, e, &mut rng);
            assert_eq!(s.iter().sum::<usize>(), n);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&x| x >= 1));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = PlantedConfig {
            num_vertices: 500,
            num_communities: 10,
            ..Default::default()
        };
        let (g1, t1) = planted_partition(&cfg);
        let (g2, t2) = planted_partition(&cfg);
        assert_eq!(t1, t2);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(
            g1.neighbors(5).collect::<Vec<_>>(),
            g2.neighbors(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg1 = PlantedConfig {
            num_vertices: 500,
            num_communities: 10,
            ..Default::default()
        };
        let cfg2 = PlantedConfig {
            seed: 99,
            ..cfg1.clone()
        };
        let (g1, _) = planted_partition(&cfg1);
        let (g2, _) = planted_partition(&cfg2);
        assert_ne!(
            g1.neighbors(5).collect::<Vec<_>>(),
            g2.neighbors(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ground_truth_covers_all_communities() {
        let cfg = PlantedConfig {
            num_vertices: 300,
            num_communities: 6,
            ..Default::default()
        };
        let (g, truth) = planted_partition(&cfg);
        assert_eq!(truth.len(), g.num_vertices());
        let max = *truth.iter().max().unwrap() as usize;
        assert_eq!(max + 1, 6);
    }

    #[test]
    fn intra_edges_dominate() {
        let cfg = PlantedConfig {
            num_vertices: 2000,
            num_communities: 20,
            avg_intra_degree: 10.0,
            avg_inter_degree: 1.0,
            ..Default::default()
        };
        let (g, truth) = planted_partition(&cfg);
        let mut intra = 0.0;
        let mut inter = 0.0;
        for (u, v, w) in g.undirected_edges() {
            if truth[u as usize] == truth[v as usize] {
                intra += w;
            } else {
                inter += w;
            }
        }
        assert!(
            intra > 4.0 * inter,
            "expected strong community structure, intra={intra} inter={inter}"
        );
    }

    #[test]
    fn weighted_mode_contrast() {
        let cfg = PlantedConfig {
            num_vertices: 1000,
            num_communities: 10,
            weight_range: Some((1.0, 10.0)),
            ..Default::default()
        };
        let (g, truth) = planted_partition(&cfg);
        let mut intra_avg = (0.0, 0usize);
        let mut inter_avg = (0.0, 0usize);
        for (u, v, w) in g.undirected_edges() {
            if truth[u as usize] == truth[v as usize] {
                intra_avg = (intra_avg.0 + w, intra_avg.1 + 1);
            } else {
                inter_avg = (inter_avg.0 + w, inter_avg.1 + 1);
            }
        }
        let ia = intra_avg.0 / intra_avg.1 as f64;
        let ie = inter_avg.0 / inter_avg.1.max(1) as f64;
        assert!(ia > 2.0 * ie, "intra weights should dominate: {ia} vs {ie}");
    }

    #[test]
    fn communities_internally_connected() {
        let cfg = PlantedConfig {
            num_vertices: 400,
            num_communities: 8,
            avg_inter_degree: 0.0,
            ..Default::default()
        };
        let (g, _) = planted_partition(&cfg);
        // No inter edges → exactly one component per community.
        assert_eq!(connected_components(&g), 8);
    }

    #[test]
    fn stats_are_sane() {
        let cfg = PlantedConfig {
            num_vertices: 5000,
            ..Default::default()
        };
        let (g, _) = planted_partition(&cfg);
        let s = GraphStats::compute(&g);
        assert!(s.avg_degree > 5.0 && s.avg_degree < 40.0, "{s:?}");
        assert_eq!(s.num_isolated, 0);
    }
}
