//! Synthetic graph generators.
//!
//! These stand in for the paper's 11 real-world inputs (Table 1), which we
//! cannot redistribute; each generator targets one structural *regime* the
//! evaluation depends on — degree skew (RSD), community strength, fraction of
//! single-degree vertices, mesh-like uniformity — per the substitution table
//! in DESIGN.md §4. All generators are deterministic for a fixed seed.

mod cliques;
mod er;
mod grid;
mod planted;
mod rgg;
mod rmat;
mod road;
mod web;

pub mod paper_suite;

pub use cliques::{hub_spoke, ring_of_cliques, CliqueRingConfig, HubSpokeConfig};
pub use er::{erdos_renyi, ErConfig};
pub use grid::{grid2d, grid3d, GridConfig};
pub use planted::{planted_partition, PlantedConfig};
pub use rgg::{random_geometric, RggConfig};
pub use rmat::{rmat, RmatConfig};
pub use road::{road_network, RoadConfig};
pub use web::{web_graph, WebConfig};
