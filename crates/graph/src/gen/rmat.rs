//! R-MAT recursive-matrix generator (Chakrabarti–Zhan–Faloutsos).
//!
//! Produces the heavy-tailed degree distributions of the paper's web/social
//! inputs (CNR, soc-LiveJournal1, uk-2002, friendster — degree RSD 2.5–17.4,
//! Table 1). Skew is controlled by the quadrant probabilities; `hub_boost`
//! optionally concentrates extra edges on vertex 0 to mimic friendster's
//! 8.6 M-degree monster hub.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`rmat`].
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex-id space; `n = 2^scale`.
    pub scale: u32,
    /// Number of (pre-merge) edges to sample.
    pub num_edges: usize,
    /// Quadrant probabilities; must sum to ~1. Classic skew: (.57,.19,.19,.05).
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Fraction of additional edges attached to vertex 0 (hub amplification);
    /// 0.0 disables.
    pub hub_boost: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        Self {
            scale: 14,
            num_edges: 131_072,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            hub_boost: 0.0,
            seed: 1,
        }
    }
}

impl RmatConfig {
    /// The implied `d = 1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph. Self-pairs are re-rolled, duplicate samples are
/// merged by the builder (weight = multiplicity, matching multigraph
/// collapse), and isolated ids may remain (real web crawls have them too).
pub fn rmat(cfg: &RmatConfig) -> CsrGraph {
    assert!(cfg.scale >= 1 && cfg.scale < 31);
    assert!(cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.d() >= 0.0);
    let n = 1usize << cfg.scale;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(cfg.num_edges);

    for _ in 0..cfg.num_edges {
        let (u, v) = sample_pair(cfg, &mut rng);
        edges.push((u, v, 1.0));
    }
    if cfg.hub_boost > 0.0 {
        let extra = (cfg.num_edges as f64 * cfg.hub_boost) as usize;
        for _ in 0..extra {
            let v = rng.gen_range(1..n) as VertexId;
            edges.push((0, v, 1.0));
        }
    }

    GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges")
}

fn sample_pair(cfg: &RmatConfig, rng: &mut SmallRng) -> (VertexId, VertexId) {
    loop {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..cfg.scale {
            u <<= 1;
            v <<= 1;
            // Slightly perturb quadrant probabilities per level ("noise")
            // to avoid the staircase artifact of pure R-MAT.
            let jitter = 0.9 + 0.2 * rng.gen::<f64>();
            let a = cfg.a * jitter;
            let roll: f64 = rng.gen::<f64>() * (a + cfg.b + cfg.c + cfg.d());
            if roll < a {
                // upper-left: no bits set
            } else if roll < a + cfg.b {
                v |= 1;
            } else if roll < a + cfg.b + cfg.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig {
            scale: 10,
            num_edges: 5_000,
            ..Default::default()
        };
        let g1 = rmat(&cfg);
        let g2 = rmat(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(
            g1.neighbors(0).collect::<Vec<_>>(),
            g2.neighbors(0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let cfg = RmatConfig {
            scale: 8,
            num_edges: 1000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert_eq!(g.num_vertices(), 256);
    }

    #[test]
    fn skewed_parameters_give_high_rsd() {
        let skewed = RmatConfig {
            scale: 12,
            num_edges: 40_000,
            ..Default::default()
        };
        let uniform = RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            ..skewed.clone()
        };
        let rsd_skew = GraphStats::compute(&rmat(&skewed)).degree_rsd;
        let rsd_unif = GraphStats::compute(&rmat(&uniform)).degree_rsd;
        assert!(
            rsd_skew > 1.5 * rsd_unif,
            "skewed RSD {rsd_skew} should exceed uniform RSD {rsd_unif}"
        );
    }

    #[test]
    fn no_self_loops() {
        let cfg = RmatConfig {
            scale: 9,
            num_edges: 3000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(g.self_loop_weight(v), 0.0);
        }
    }

    #[test]
    fn hub_boost_creates_monster_vertex() {
        let base = RmatConfig {
            scale: 11,
            num_edges: 10_000,
            ..Default::default()
        };
        let boosted = RmatConfig {
            hub_boost: 1.0,
            ..base.clone()
        };
        let g0 = rmat(&base);
        let g1 = rmat(&boosted);
        assert!(g1.degree(0) > 2 * g0.degree(0));
        assert!(g1.degree(0) > g1.num_vertices() / 4);
    }

    #[test]
    fn duplicate_samples_merge_into_weights() {
        // Tiny id space + many samples forces duplicates; builder sums them.
        let cfg = RmatConfig {
            scale: 3,
            num_edges: 2_000,
            ..Default::default()
        };
        let g = rmat(&cfg);
        assert!(g.num_edges() <= 8 * 7 / 2);
        let heaviest = g
            .undirected_edges()
            .map(|(_, _, w)| w)
            .fold(0.0f64, f64::max);
        assert!(heaviest > 1.0, "expected merged multi-edges");
        assert!(g.validate().is_ok());
    }
}
