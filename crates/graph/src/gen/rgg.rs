//! Random geometric graph in the unit square.
//!
//! Proxy for Rgg_n_2_24_s0: uniform degree distribution (RSD 0.25) *and*
//! strong community structure (paper Table 2: Q ≈ 0.99) — the combination
//! §6.2.1 highlights as favorable for parallel scaling. Vertices are points;
//! edges connect pairs within Euclidean distance `radius`, found via a
//! uniform grid spatial index (cell size = radius) so generation is
//! O(n + edges) expected rather than O(n²).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Configuration for [`random_geometric`].
#[derive(Clone, Debug)]
pub struct RggConfig {
    /// Number of points/vertices.
    pub num_vertices: usize,
    /// Connection radius. The classic connectivity threshold is
    /// `sqrt(ln n / (π n))`; the DIMACS rgg inputs use ~1.5× that, giving
    /// average degree ≈ 15.8.
    pub radius: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RggConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            radius: 0.0,
            seed: 1,
        }
    }
}

impl RggConfig {
    /// Radius giving an expected average degree of `d`: solves
    /// `n π r² = d` for `r` (ignoring boundary effects).
    pub fn radius_for_avg_degree(n: usize, d: f64) -> f64 {
        (d / (std::f64::consts::PI * n as f64)).sqrt()
    }

    /// Resolved radius: explicit if set, else the avg-degree-15.8 default
    /// matching the DIMACS rgg family.
    pub fn effective_radius(&self) -> f64 {
        if self.radius > 0.0 {
            self.radius
        } else {
            Self::radius_for_avg_degree(self.num_vertices, 15.8)
        }
    }
}

/// Generates a random geometric graph.
pub fn random_geometric(cfg: &RggConfig) -> CsrGraph {
    let n = cfg.num_vertices;
    assert!(n > 0);
    let r = cfg.effective_radius();
    assert!(r > 0.0 && r < 1.0, "radius {r} out of (0,1)");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    // Spatial hash: grid of cell size r; each point only compares against
    // its own and 4 forward-neighboring cells to emit each pair once.
    let cells_per_side = ((1.0 / r).floor() as usize).max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<VertexId>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells_per_side + cx].push(i as VertexId);
    }

    let r2 = r * r;
    // Forward neighborhood (self, E, N, NE, NW) covers each cell pair once.
    const FORWARD: [(isize, isize); 5] = [(0, 0), (1, 0), (0, 1), (1, 1), (-1, 1)];
    let edges: Vec<(VertexId, VertexId, f64)> = (0..grid.len())
        .into_par_iter()
        .flat_map_iter(|cell| {
            let cx = (cell % cells_per_side) as isize;
            let cy = (cell / cells_per_side) as isize;
            let points = &points;
            let grid = &grid;
            FORWARD.iter().flat_map(move |&(dx, dy)| {
                let nx = cx + dx;
                let ny = cy + dy;
                let mut out = Vec::new();
                if nx < 0
                    || ny < 0
                    || nx >= cells_per_side as isize
                    || ny >= cells_per_side as isize
                {
                    return out.into_iter();
                }
                let other = (ny as usize) * cells_per_side + nx as usize;
                let a = &grid[cell];
                let b = &grid[other];
                if cell == other {
                    for i in 0..a.len() {
                        for j in i + 1..a.len() {
                            let (u, v) = (a[i], a[j]);
                            if dist2(points[u as usize], points[v as usize]) <= r2 {
                                out.push((u, v, 1.0));
                            }
                        }
                    }
                } else {
                    for &u in a {
                        for &v in b {
                            if dist2(points[u as usize], points[v as usize]) <= r2 {
                                out.push((u, v, 1.0));
                            }
                        }
                    }
                }
                out.into_iter()
            })
        })
        .collect();

    GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges")
}

#[inline]
fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RggConfig {
            num_vertices: 2000,
            ..Default::default()
        };
        let g1 = random_geometric(&cfg);
        let g2 = random_geometric(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn avg_degree_near_target() {
        let cfg = RggConfig {
            num_vertices: 20_000,
            ..Default::default()
        };
        let g = random_geometric(&cfg);
        let s = GraphStats::compute(&g);
        assert!(
            (s.avg_degree - 15.8).abs() < 3.0,
            "avg degree {} should be near 15.8",
            s.avg_degree
        );
    }

    #[test]
    fn degree_rsd_is_low() {
        // The rgg family is near-uniform in degree (paper Table 1: RSD .251).
        let cfg = RggConfig {
            num_vertices: 20_000,
            ..Default::default()
        };
        let g = random_geometric(&cfg);
        let s = GraphStats::compute(&g);
        assert!(
            s.degree_rsd < 0.5,
            "rgg degree RSD {} should be low",
            s.degree_rsd
        );
    }

    #[test]
    fn grid_index_matches_brute_force() {
        // Exactness of the spatial index: compare against all-pairs.
        let cfg = RggConfig {
            num_vertices: 300,
            radius: 0.08,
            seed: 5,
        };
        let g = random_geometric(&cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let pts: Vec<(f64, f64)> = (0..300).map(|_| (rng.gen(), rng.gen())).collect();
        let mut brute = 0usize;
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                if dist2(pts[i], pts[j]) <= cfg.radius * cfg.radius {
                    brute += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), brute);
    }

    #[test]
    fn radius_formula() {
        let r = RggConfig::radius_for_avg_degree(10_000, 15.8);
        let implied = 10_000.0 * std::f64::consts::PI * r * r;
        assert!((implied - 15.8).abs() < 1e-9);
    }

    #[test]
    fn no_self_loops() {
        let cfg = RggConfig {
            num_vertices: 1000,
            ..Default::default()
        };
        let g = random_geometric(&cfg);
        for v in 0..g.num_vertices() as VertexId {
            assert!(!g.has_edge(v, v));
        }
    }
}
