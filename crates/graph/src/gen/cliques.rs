//! Structured test graphs with known optimal community structure.
//!
//! * [`ring_of_cliques`] — the classic modularity benchmark: `k` cliques of
//!   size `s` joined in a cycle by single edges. The optimal partition (one
//!   community per clique, for reasonable k·s) is known, so solver tests can
//!   assert exact recovery.
//! * [`hub_spoke`] — chains of hub vertices, each hub carrying single-degree
//!   spokes: the exact scenario §6.2 uses to explain the VF heuristic's
//!   convergence-prolonging pathology ("consider a chain of 'hub' nodes where
//!   the hubs are individually connected to a number of single degree
//!   vertices ('spokes')").

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Configuration for [`ring_of_cliques`].
#[derive(Clone, Debug)]
pub struct CliqueRingConfig {
    /// Number of cliques.
    pub num_cliques: usize,
    /// Vertices per clique (≥ 1).
    pub clique_size: usize,
    /// Weight of intra-clique edges.
    pub intra_weight: f64,
    /// Weight of the ring edges joining consecutive cliques.
    pub bridge_weight: f64,
}

impl Default for CliqueRingConfig {
    fn default() -> Self {
        Self {
            num_cliques: 16,
            clique_size: 8,
            intra_weight: 1.0,
            bridge_weight: 1.0,
        }
    }
}

/// Generates a ring of cliques; returns the graph and the ground-truth
/// community (= clique index) per vertex.
pub fn ring_of_cliques(cfg: &CliqueRingConfig) -> (CsrGraph, Vec<u32>) {
    let k = cfg.num_cliques;
    let s = cfg.clique_size;
    assert!(k >= 1 && s >= 1);
    let n = k * s;
    let mut b = GraphBuilder::with_capacity(n, k * s * s / 2 + k);
    let mut truth = vec![0u32; n];
    for c in 0..k {
        let base = (c * s) as VertexId;
        for i in 0..s {
            truth[c * s + i] = c as u32;
            for j in i + 1..s {
                b = b.add_edge(base + i as VertexId, base + j as VertexId, cfg.intra_weight);
            }
        }
    }
    // Ring bridges: last vertex of clique c to first vertex of clique c+1.
    if k >= 2 {
        for c in 0..k {
            let from = (c * s + (s - 1)) as VertexId;
            let to = (((c + 1) % k) * s) as VertexId;
            if from != to && k > 2 || (k == 2 && c == 0) {
                b = b.add_edge(from, to, cfg.bridge_weight);
            }
        }
    }
    (b.build().expect("generator produces valid edges"), truth)
}

/// Configuration for [`hub_spoke`].
#[derive(Clone, Debug)]
pub struct HubSpokeConfig {
    /// Number of hub vertices forming the backbone chain.
    pub num_hubs: usize,
    /// Single-degree spokes attached to each hub.
    pub spokes_per_hub: usize,
    /// Weight of hub–hub chain edges.
    pub chain_weight: f64,
    /// Weight of hub–spoke edges.
    pub spoke_weight: f64,
}

impl Default for HubSpokeConfig {
    fn default() -> Self {
        Self {
            num_hubs: 64,
            spokes_per_hub: 8,
            chain_weight: 1.0,
            spoke_weight: 1.0,
        }
    }
}

/// Generates a hub-and-spoke chain. Vertex layout: hubs `0..h`, then the
/// spokes of hub 0, hub 1, … Returns the graph and each vertex's hub id
/// (spokes map to their hub; used as ground truth for VF tests).
pub fn hub_spoke(cfg: &HubSpokeConfig) -> (CsrGraph, Vec<u32>) {
    let h = cfg.num_hubs;
    let sp = cfg.spokes_per_hub;
    assert!(h >= 1);
    let n = h + h * sp;
    let mut b = GraphBuilder::with_capacity(n, h - 1 + h * sp);
    let mut owner = vec![0u32; n];
    #[allow(clippy::needless_range_loop)] // `i` also names hub vertices below
    for i in 0..h {
        owner[i] = i as u32;
        if i + 1 < h {
            b = b.add_edge(i as VertexId, (i + 1) as VertexId, cfg.chain_weight);
        }
    }
    for i in 0..h {
        for j in 0..sp {
            let spoke = (h + i * sp + j) as VertexId;
            owner[spoke as usize] = i as u32;
            b = b.add_edge(i as VertexId, spoke, cfg.spoke_weight);
        }
    }
    (b.build().expect("generator produces valid edges"), owner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{connected_components, is_single_degree, GraphStats};

    #[test]
    fn ring_of_cliques_structure() {
        let cfg = CliqueRingConfig {
            num_cliques: 4,
            clique_size: 5,
            ..Default::default()
        };
        let (g, truth) = ring_of_cliques(&cfg);
        assert_eq!(g.num_vertices(), 20);
        // 4 cliques × C(5,2) + 4 bridges
        assert_eq!(g.num_edges(), 4 * 10 + 4);
        assert_eq!(connected_components(&g), 1);
        assert_eq!(truth[0], 0);
        assert_eq!(truth[19], 3);
    }

    #[test]
    fn two_cliques_single_bridge() {
        let cfg = CliqueRingConfig {
            num_cliques: 2,
            clique_size: 3,
            ..Default::default()
        };
        let (g, _) = ring_of_cliques(&cfg);
        assert_eq!(g.num_edges(), 2 * 3 + 1);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn single_clique_no_bridge() {
        let cfg = CliqueRingConfig {
            num_cliques: 1,
            clique_size: 4,
            ..Default::default()
        };
        let (g, _) = ring_of_cliques(&cfg);
        assert_eq!(g.num_edges(), 6);
    }

    #[test]
    fn clique_members_fully_connected() {
        let cfg = CliqueRingConfig {
            num_cliques: 3,
            clique_size: 4,
            ..Default::default()
        };
        let (g, truth) = ring_of_cliques(&cfg);
        for u in 0..12u32 {
            for v in 0..12u32 {
                if u != v && truth[u as usize] == truth[v as usize] {
                    assert!(g.has_edge(u, v), "clique pair ({u},{v}) missing");
                }
            }
        }
    }

    #[test]
    fn hub_spoke_structure() {
        let cfg = HubSpokeConfig {
            num_hubs: 3,
            spokes_per_hub: 2,
            ..Default::default()
        };
        let (g, owner) = hub_spoke(&cfg);
        assert_eq!(g.num_vertices(), 9);
        assert_eq!(g.num_edges(), 2 + 6); // 2 chain + 6 spokes
        assert_eq!(connected_components(&g), 1);
        // All spokes are single-degree (the VF-heuristic targets).
        for v in 3..9 {
            assert!(is_single_degree(&g, v as VertexId));
        }
        assert_eq!(owner[3], 0);
        assert_eq!(owner[8], 2);
    }

    #[test]
    fn hub_spoke_single_degree_fraction() {
        let cfg = HubSpokeConfig::default();
        let (g, _) = hub_spoke(&cfg);
        let s = GraphStats::compute(&g);
        // 8 of 9 vertices per hub group are spokes.
        assert!(s.num_single_degree as f64 > 0.8 * s.num_vertices as f64);
    }

    #[test]
    fn hub_degrees() {
        let cfg = HubSpokeConfig {
            num_hubs: 4,
            spokes_per_hub: 3,
            ..Default::default()
        };
        let (g, _) = hub_spoke(&cfg);
        assert_eq!(g.degree(0), 1 + 3); // end hub: 1 chain + 3 spokes
        assert_eq!(g.degree(1), 2 + 3); // middle hub
    }
}
