//! Regular 2-D / 3-D grid (mesh) generators with optional noise edges.
//!
//! Proxies for Channel (3-D channel-flow mesh: degree RSD 0.061, weak
//! communities, Q ≈ 0.93 only after many iterations) and NLPKKT240 (KKT
//! mesh, the paper's *worst* community structure: first-phase modularity
//! 0.038). Meshes exercise the "uniform degree + poor community structure →
//! many iterations" regime of §6.2.1. `noise_fraction` rewires a share of
//! edges to random endpoints, degrading community structure further
//! (NLPKKT-style).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`grid2d`] / [`grid3d`].
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Side length; 2-D grids have `side²` vertices, 3-D `side³`.
    pub side: usize,
    /// Wrap edges around (torus) so every vertex has identical degree.
    pub periodic: bool,
    /// Fraction of mesh edges replaced by uniformly random edges (0 to 1).
    pub noise_fraction: f64,
    /// RNG seed (only used when `noise_fraction > 0`).
    pub seed: u64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            side: 32,
            periodic: false,
            noise_fraction: 0.0,
            seed: 1,
        }
    }
}

/// Generates a 2-D grid graph.
pub fn grid2d(cfg: &GridConfig) -> CsrGraph {
    let s = cfg.side;
    assert!(s >= 2);
    let n = s * s;
    let id = |x: usize, y: usize| (y * s + x) as VertexId;
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(2 * n);
    for y in 0..s {
        for x in 0..s {
            if x + 1 < s {
                edges.push((id(x, y), id(x + 1, y), 1.0));
            } else if cfg.periodic && s > 2 {
                edges.push((id(x, y), id(0, y), 1.0));
            }
            if y + 1 < s {
                edges.push((id(x, y), id(x, y + 1), 1.0));
            } else if cfg.periodic && s > 2 {
                edges.push((id(x, y), id(x, 0), 1.0));
            }
        }
    }
    finish(n, edges, cfg)
}

/// Generates a 3-D grid graph.
pub fn grid3d(cfg: &GridConfig) -> CsrGraph {
    let s = cfg.side;
    assert!(s >= 2);
    let n = s * s * s;
    let id = |x: usize, y: usize, z: usize| ((z * s + y) * s + x) as VertexId;
    let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(3 * n);
    for z in 0..s {
        for y in 0..s {
            for x in 0..s {
                if x + 1 < s {
                    edges.push((id(x, y, z), id(x + 1, y, z), 1.0));
                } else if cfg.periodic && s > 2 {
                    edges.push((id(x, y, z), id(0, y, z), 1.0));
                }
                if y + 1 < s {
                    edges.push((id(x, y, z), id(x, y + 1, z), 1.0));
                } else if cfg.periodic && s > 2 {
                    edges.push((id(x, y, z), id(x, 0, z), 1.0));
                }
                if z + 1 < s {
                    edges.push((id(x, y, z), id(x, y, z + 1), 1.0));
                } else if cfg.periodic && s > 2 {
                    edges.push((id(x, y, z), id(x, y, 0), 1.0));
                }
            }
        }
    }
    finish(n, edges, cfg)
}

fn finish(n: usize, mut edges: Vec<(VertexId, VertexId, f64)>, cfg: &GridConfig) -> CsrGraph {
    if cfg.noise_fraction > 0.0 {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let rewire = (edges.len() as f64 * cfg.noise_fraction.clamp(0.0, 1.0)) as usize;
        for k in 0..rewire {
            // Rewire every (len/rewire)-th edge to a random pair.
            let idx = k * edges.len() / rewire.max(1);
            let u = rng.gen_range(0..n) as VertexId;
            let mut v = rng.gen_range(0..n) as VertexId;
            while v == u {
                v = rng.gen_range(0..n) as VertexId;
            }
            edges[idx] = (u, v, 1.0);
        }
    }
    GraphBuilder::with_capacity(n, edges.len())
        .extend_edges(edges)
        .build()
        .expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{connected_components, GraphStats};

    #[test]
    fn grid2d_counts() {
        let g = grid2d(&GridConfig {
            side: 4,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 2 * 4 * 3); // 2 directions × side × (side-1)
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(&GridConfig {
            side: 3,
            ..Default::default()
        });
        assert_eq!(g.num_vertices(), 27);
        assert_eq!(g.num_edges(), 3 * 9 * 2);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn periodic_grid_has_uniform_degree() {
        let g = grid2d(&GridConfig {
            side: 5,
            periodic: true,
            ..Default::default()
        });
        let s = GraphStats::compute(&g);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.degree_rsd, 0.0);
    }

    #[test]
    fn periodic_3d_uniform_degree_six() {
        let g = grid3d(&GridConfig {
            side: 4,
            periodic: true,
            ..Default::default()
        });
        let s = GraphStats::compute(&g);
        assert_eq!(s.max_degree, 6);
        assert_eq!(s.degree_rsd, 0.0);
    }

    #[test]
    fn corner_degree_nonperiodic() {
        let g = grid2d(&GridConfig {
            side: 3,
            ..Default::default()
        });
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(4), 4); // center
    }

    #[test]
    fn noise_rewires_but_preserves_count_roughly() {
        let clean = grid3d(&GridConfig {
            side: 6,
            ..Default::default()
        });
        let noisy = grid3d(&GridConfig {
            side: 6,
            noise_fraction: 0.3,
            ..Default::default()
        });
        // Merges of coincidental duplicates may shave a few edges.
        assert!(noisy.num_edges() <= clean.num_edges());
        assert!(noisy.num_edges() > clean.num_edges() * 9 / 10);
        // Noise must actually change the structure.
        assert_ne!(
            (0..36).map(|v| noisy.degree(v)).collect::<Vec<_>>(),
            (0..36).map(|v| clean.degree(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn noise_is_deterministic() {
        let cfg = GridConfig {
            side: 5,
            noise_fraction: 0.2,
            seed: 9,
            ..Default::default()
        };
        let a = grid2d(&cfg);
        let b = grid2d(&cfg);
        assert_eq!(
            a.adjacency_entries().collect::<Vec<_>>(),
            b.adjacency_entries().collect::<Vec<_>>()
        );
    }
}
