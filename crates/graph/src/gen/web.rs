//! Hybrid web-graph generator: planted community structure overlaid with
//! R-MAT-style hub edges.
//!
//! The paper's web inputs (CNR, uk-2002) combine two regimes that no single
//! simple generator produces: extreme degree skew (Table 1: RSD 13.0 / 5.1)
//! *and* very strong community structure (Table 2: Q 0.91 / 0.99). Pure
//! R-MAT gets the skew but mixes communities away; pure planted partition
//! gets the communities but not the hubs. The union of a planted backbone
//! and a skewed overlay reproduces both (verified in tests and Table 1/2
//! harnesses).

use super::planted::{planted_partition, PlantedConfig};
use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`web_graph`].
#[derive(Clone, Debug)]
pub struct WebConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Expected intra-community degree (community strength).
    pub avg_intra_degree: f64,
    /// Expected cross-community degree from the planted layer.
    pub avg_inter_degree: f64,
    /// Skewed overlay edges as a fraction of `num_vertices` (e.g. 1.0 adds
    /// n hub-biased edges). Drives the degree RSD.
    pub overlay_per_vertex: f64,
    /// Bias of overlay endpoints toward low ids (hub strength): endpoint ids
    /// are drawn as `n · u^bias` for uniform `u`, so larger bias ⇒ heavier
    /// hubs. 1.0 = uniform.
    pub hub_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        Self {
            num_vertices: 10_000,
            num_communities: 100,
            avg_intra_degree: 10.0,
            avg_inter_degree: 1.0,
            overlay_per_vertex: 1.5,
            hub_bias: 4.0,
            seed: 1,
        }
    }
}

/// Generates a web-crawl-like graph; returns it with the planted community
/// of each vertex.
pub fn web_graph(cfg: &WebConfig) -> (CsrGraph, Vec<u32>) {
    let n = cfg.num_vertices;
    let (backbone, truth) = planted_partition(&PlantedConfig {
        num_vertices: n,
        num_communities: cfg.num_communities,
        size_exponent: 1.2,
        avg_intra_degree: cfg.avg_intra_degree,
        avg_inter_degree: cfg.avg_inter_degree,
        weight_range: None,
        seed: cfg.seed,
    });

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xdead_beef);
    let overlay = (n as f64 * cfg.overlay_per_vertex) as usize;
    let draw = |rng: &mut SmallRng| -> VertexId {
        let u: f64 = rng.gen();
        ((u.powf(cfg.hub_bias) * n as f64) as usize).min(n - 1) as VertexId
    };

    let mut b = GraphBuilder::with_capacity(n, backbone.num_edges() + overlay);
    b = b.extend_edges(backbone.undirected_edges());
    for _ in 0..overlay {
        let u = draw(&mut rng);
        let mut v = draw(&mut rng);
        while v == u {
            v = draw(&mut rng);
        }
        b = b.add_edge(u, v, 1.0);
    }
    (b.build().expect("generator produces valid edges"), truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_for_seed() {
        let cfg = WebConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        };
        let (g1, t1) = web_graph(&cfg);
        let (g2, t2) = web_graph(&cfg);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(t1, t2);
    }

    #[test]
    fn has_hubs_and_high_rsd() {
        let cfg = WebConfig {
            num_vertices: 20_000,
            num_communities: 200,
            ..Default::default()
        };
        let (g, _) = web_graph(&cfg);
        let s = GraphStats::compute(&g);
        assert!(
            s.degree_rsd > 1.0,
            "web RSD {} should be skewed",
            s.degree_rsd
        );
        assert!(
            s.max_degree > 50 * s.avg_degree as usize,
            "max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn keeps_community_structure() {
        let cfg = WebConfig {
            num_vertices: 10_000,
            num_communities: 100,
            ..Default::default()
        };
        let (g, truth) = web_graph(&cfg);
        let mut intra = 0.0;
        let mut inter = 0.0;
        for (u, v, w) in g.undirected_edges() {
            if truth[u as usize] == truth[v as usize] {
                intra += w;
            } else {
                inter += w;
            }
        }
        assert!(
            intra > 1.5 * inter,
            "communities should survive the overlay: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn hub_bias_controls_skew() {
        let flat = WebConfig {
            num_vertices: 10_000,
            num_communities: 100,
            hub_bias: 1.0,
            ..Default::default()
        };
        let spiky = WebConfig {
            hub_bias: 8.0,
            ..flat.clone()
        };
        let rsd_flat = GraphStats::compute(&web_graph(&flat).0).degree_rsd;
        let rsd_spiky = GraphStats::compute(&web_graph(&spiky).0).degree_rsd;
        assert!(
            rsd_spiky > rsd_flat,
            "bias 8 RSD {rsd_spiky} should exceed bias 1 RSD {rsd_flat}"
        );
    }
}
