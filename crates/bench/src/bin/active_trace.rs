//! Trajectory inspection for the full-vs-active sweep pair: per-iteration
//! modularity and move counts (as a fraction of `n` — the activity the
//! pruned schedule is proportional to) for every sweep variant on the
//! cached bench inputs. This is the data behind `BENCH_active.json`:
//! where the move fraction collapses, `--sweep active` pays off; where it
//! stays dense, pruning never engages and the schedules are identical.
//!
//! ```text
//! active_trace [planted|rmat]
//! ```

use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::parallel::{parallel_phase_colored_sweep, parallel_phase_unordered_sweep};
use grappolo_core::{PhaseOutcome, SweepMode};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;

fn show(name: &str, g: &CsrGraph, out: &PhaseOutcome) {
    println!(
        "{name}: {} iterations, final Q {:.6}",
        out.num_iterations(),
        out.final_modularity
    );
    let n = g.num_vertices();
    for (i, &(q, moves)) in out.iterations.iter().enumerate() {
        println!(
            "  iter {i:>3}: Q {q:+.6}  moves {moves:>8}  ({:.2}% of n)",
            100.0 * moves as f64 / n as f64
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "rmat".into());
    let g = match which.as_str() {
        "planted" => cached_graph("sweep_planted_100000", || {
            planted_partition(&PlantedConfig {
                num_vertices: 100_000,
                num_communities: 1_000,
                ..Default::default()
            })
            .0
        }),
        _ => cached_graph("rmat_s18_m1200k_seed1", || {
            rmat(&RmatConfig {
                scale: 18,
                num_edges: 1_200_000,
                seed: 1,
                ..Default::default()
            })
        }),
    };
    println!(
        "input: n={} M={} (adjacency entries {})",
        g.num_vertices(),
        g.num_edges(),
        g.num_adjacency_entries()
    );
    let batches =
        ColorBatches::from_coloring(&color_parallel(&g, &ParallelColoringConfig::default()));
    for (label, sweep) in [("full", SweepMode::Full), ("active", SweepMode::Active)] {
        let out = parallel_phase_unordered_sweep(&g, sweep, 1e-6, 10_000, 1.0);
        show(&format!("unordered/{label}"), &g, &out);
    }
    for (label, sweep) in [("full", SweepMode::Full), ("active", SweepMode::Active)] {
        let out = parallel_phase_colored_sweep(&g, &batches, sweep, 1e-6, 10_000, 1.0);
        show(&format!("colored/{label}"), &g, &out);
    }
}
