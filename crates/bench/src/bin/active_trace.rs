//! Trajectory inspection for the full/active/scheduled sweep family:
//! per-iteration modularity, move counts (as a fraction of `n` — the
//! activity the pruned schedule is proportional to), the effective
//! per-vertex gain gate, the frontier size actually examined, and the
//! locally-converged count. This is the data behind `BENCH_active.json`:
//! where the move fraction collapses, `--sweep active` pays off; where it
//! plateaus, the fixed aggregate threshold fires first — and the scheduled
//! variants show how the geometric gate collapses it anyway.
//!
//! ```text
//! active_trace [planted|rmat] [start_edge_units factor floor_edge_units]
//! ```
//!
//! The optional trailing triple overrides the geometric schedule's
//! edge-unit parameters (defaults: 4 0.5 0.5), for schedule exploration.

use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::{
    LouvainConfig, LouvainConfigBuilder, PhaseDriver, PhaseOutcome, ScheduleSpec, SweepMode,
};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;
use std::time::Duration;

fn show(name: &str, g: &CsrGraph, out: &PhaseOutcome, elapsed: Duration) {
    println!(
        "{name}: {} iterations, final Q {:.6}, {elapsed:.2?}",
        out.num_iterations(),
        out.final_modularity
    );
    let n = g.num_vertices();
    println!("  iter          Q     moves  (% of n)       gate  frontier  converged");
    for (i, (&(q, moves), s)) in out.iterations.iter().zip(&out.stats).enumerate() {
        println!(
            "  {i:>4} {q:+.6} {moves:>9}  ({:>6.2}%) {:>10.3e} {:>9} {:>10}",
            100.0 * moves as f64 / n as f64,
            s.gate,
            s.frontier,
            s.converged,
        );
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "rmat".into());
    let g = match which.as_str() {
        "planted" => cached_graph("sweep_planted_100000", || {
            planted_partition(&PlantedConfig {
                num_vertices: 100_000,
                num_communities: 1_000,
                ..Default::default()
            })
            .0
        }),
        _ => cached_graph("rmat_s18_m1200k_seed1", || {
            rmat(&RmatConfig {
                scale: 18,
                num_edges: 1_200_000,
                seed: 1,
                ..Default::default()
            })
        }),
    };
    println!(
        "input: n={} M={} (adjacency entries {})",
        g.num_vertices(),
        g.num_edges(),
        g.num_adjacency_entries()
    );
    let batches =
        ColorBatches::from_coloring(&color_parallel(&g, &ParallelColoringConfig::default()));
    let raw: Vec<String> = std::env::args().skip(2).collect();
    let (start_u, factor, floor_u) = match raw.len() {
        0 => (
            grappolo_core::config::GEOMETRIC_START_EDGE_UNITS,
            grappolo_core::config::GEOMETRIC_FACTOR,
            grappolo_core::config::GEOMETRIC_FLOOR_EDGE_UNITS,
        ),
        3 => {
            let parse = |s: &String| {
                s.parse::<f64>().unwrap_or_else(|e| {
                    eprintln!("active_trace: bad schedule parameter `{s}`: {e}");
                    std::process::exit(2);
                })
            };
            (parse(&raw[0]), parse(&raw[1]), parse(&raw[2]))
        }
        _ => {
            eprintln!("usage: active_trace [planted|rmat] [start_units factor floor_units]");
            std::process::exit(2);
        }
    };
    let m = g.total_weight();
    // The two convergence policies resolve into PhaseDriver configurations
    // through the typed builder, whose `build()` rejects a non-tightening
    // schedule (factor ≥ 1, floor > start, …) with the library's own rule
    // — such a schedule would never reach its floor and would spin every
    // variant to the iteration cap.
    let driver_for = |spec: ScheduleSpec, sweep: SweepMode| -> PhaseDriver {
        let config = LouvainConfigBuilder::from_base(LouvainConfig::default())
            .sweep(sweep)
            .schedule(spec)
            .build()
            .unwrap_or_else(|e| {
                eprintln!("active_trace: invalid geometric schedule: {e}");
                std::process::exit(2);
            });
        PhaseDriver::from_config(&config, 1e-6)
    };
    let geometric = ScheduleSpec::GeometricRaw {
        start: start_u / m,
        factor,
        floor: floor_u / m,
    };
    println!("geometric schedule: start {start_u}/m, factor {factor}, floor {floor_u}/m");
    let policies = [("fixed", ScheduleSpec::Fixed), ("sched", geometric)];
    for (pname, spec) in policies {
        for (label, sweep) in [("full", SweepMode::Full), ("active", SweepMode::Active)] {
            let driver = driver_for(spec, sweep);
            let t = std::time::Instant::now();
            let out = driver.run(&g);
            show(&format!("unordered/{pname}/{label}"), &g, &out, t.elapsed());
        }
    }
    for (pname, spec) in policies {
        for (label, sweep) in [("full", SweepMode::Full), ("active", SweepMode::Active)] {
            let driver = driver_for(spec, sweep);
            let t = std::time::Instant::now();
            let out = driver.run_colored(&g, &batches);
            show(&format!("colored/{pname}/{label}"), &g, &out, t.elapsed());
        }
    }
}
