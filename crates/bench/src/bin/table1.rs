//! Thin wrapper: `cargo run -p grappolo-bench --release --bin table1`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::table1::run(&ctx);
}
