//! Thin wrapper: `cargo run -p grappolo-bench --release --bin fig9`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::fig9::run(&ctx);
}
