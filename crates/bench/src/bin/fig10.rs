//! Thin wrapper: `cargo run -p grappolo-bench --release --bin fig10`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::fig10::run(&ctx);
}
