//! Regenerates every table and figure of the paper in one invocation:
//! `cargo run -p grappolo-bench --release --bin run_all`.
//!
//! Respects `GRAPPOLO_SCALE` / `GRAPPOLO_SEED` / `GRAPPOLO_RESULTS`.

use grappolo_bench::experiments;

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    println!(
        "grappolo-rs experiment suite: scale={} seed={} threads={:?} results={}",
        ctx.scale,
        ctx.seed,
        ctx.thread_counts,
        ctx.results_dir.display()
    );
    let t = std::time::Instant::now();
    experiments::table1::run(&ctx);
    experiments::table2::run(&ctx);
    experiments::table3::run(&ctx);
    experiments::table4::run(&ctx);
    experiments::table5::run(&ctx);
    experiments::fig3_6::run(&ctx);
    experiments::fig7::run(&ctx);
    experiments::fig8::run(&ctx);
    experiments::fig9::run(&ctx);
    experiments::fig10::run(&ctx);
    experiments::ablations::run(&ctx);
    experiments::scaling::run(&ctx);
    experiments::accuracy::run(&ctx);
    println!("\nall experiments completed in {:.1?}", t.elapsed());
}
