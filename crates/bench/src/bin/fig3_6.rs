//! Thin wrapper: `cargo run -p grappolo-bench --release --bin fig3_6`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::fig3_6::run(&ctx);
}
