//! Thin wrapper: `cargo run -p grappolo-bench --release --bin ablations`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::ablations::run(&ctx);
}
