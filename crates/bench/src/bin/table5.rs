//! Thin wrapper: `cargo run -p grappolo-bench --release --bin table5`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::table5::run(&ctx);
}
