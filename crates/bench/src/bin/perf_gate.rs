//! CI perf-regression gate.
//!
//! Compares freshly emitted `BENCH_*.json` summaries (written by the
//! criterion shim) against the committed baselines and fails — exit code
//! 1 — if any tracked metric regressed beyond the tolerance:
//!
//! ```text
//! perf_gate <baseline.json>=<fresh.json> [more pairs…] [--tolerance PCT]
//! ```
//!
//! A benchmark regresses when its fresh `median_ns` exceeds the baseline
//! `median_ns` by more than `--tolerance` percent (default 25, per the CI
//! policy). Benchmarks present only in the fresh file are reported as new
//! (not gating); benchmarks missing from the fresh file fail the gate, so a
//! deleted benchmark must come with a refreshed baseline.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// `group/id → median_ns` for one summary file.
fn load_medians(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let Value::Arr(records) = value else {
        return Err(format!("{path}: expected a JSON array of bench records"));
    };
    let mut out = BTreeMap::new();
    for rec in &records {
        let field = |k: &str| rec.get_field(k).map_err(|e| format!("{path}: {e}"));
        let (Value::Str(group), Value::Str(id)) = (field("group")?, field("id")?) else {
            return Err(format!("{path}: group/id must be strings"));
        };
        let Value::Num(median) = field("median_ns")? else {
            return Err(format!("{path}: median_ns must be a number"));
        };
        out.insert(format!("{group}/{id}"), *median);
    }
    Ok(out)
}

fn format_ms(ns: f64) -> String {
    format!("{:.3} ms", ns / 1e6)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut tolerance_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            let v = it.next().ok_or("--tolerance needs a value")?;
            tolerance_pct = v.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
        } else if let Some((base, fresh)) = arg.split_once('=') {
            pairs.push((base.to_string(), fresh.to_string()));
        } else {
            return Err(format!(
                "unrecognized argument `{arg}` (want baseline=fresh)"
            ));
        }
    }
    if pairs.is_empty() {
        return Err("usage: perf_gate <baseline.json>=<fresh.json> [...] [--tolerance PCT]".into());
    }

    let allowed = 1.0 + tolerance_pct / 100.0;
    let mut ok = true;
    for (baseline_path, fresh_path) in &pairs {
        let baseline = load_medians(baseline_path)?;
        let fresh = load_medians(fresh_path)?;
        println!("== {baseline_path} vs {fresh_path} (tolerance {tolerance_pct}%)");
        for (bench, &base_ns) in &baseline {
            match fresh.get(bench) {
                None => {
                    ok = false;
                    println!("  FAIL {bench:<40} missing from fresh results");
                }
                Some(&fresh_ns) => {
                    let ratio = fresh_ns / base_ns;
                    let verdict = if ratio > allowed {
                        ok = false;
                        "FAIL"
                    } else {
                        "  ok"
                    };
                    println!(
                        "  {verdict} {bench:<40} baseline {:>12} fresh {:>12} ({:+.1}%)",
                        format_ms(base_ns),
                        format_ms(fresh_ns),
                        (ratio - 1.0) * 100.0,
                    );
                }
            }
        }
        for bench in fresh.keys().filter(|b| !baseline.contains_key(*b)) {
            println!("   new {bench} (not gated; commit a refreshed baseline to track it)");
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("perf gate: PASS");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            println!("perf gate: FAIL (regression beyond tolerance)");
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            ExitCode::FAILURE
        }
    }
}
