//! Thin wrapper: `cargo run -p grappolo-bench --release --bin table2`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::table2::run(&ctx);
}
