//! Thin wrapper: `cargo run -p grappolo-bench --release --bin scaling`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::scaling::run(&ctx);
}
