//! Thin wrapper: `cargo run -p grappolo-bench --release --bin fig7`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::fig7::run(&ctx);
}
