//! Thin wrapper: `cargo run -p grappolo-bench --release --bin table3`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::table3::run(&ctx);
}
