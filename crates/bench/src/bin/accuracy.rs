//! Thin wrapper: `cargo run -p grappolo-bench --release --bin accuracy`.

fn main() {
    let ctx = grappolo_bench::ExperimentContext::from_env();
    grappolo_bench::experiments::accuracy::run(&ctx);
}
