//! On-disk cache for generated benchmark graphs.
//!
//! Generator suites burn most of their wall-clock re-synthesizing the same
//! deterministic inputs. [`cached_graph`] memoizes a generated [`CsrGraph`]
//! as a versioned `.grb` binary file (see `grappolo_graph::io`), so repeat
//! bench runs load the CSR arrays in O(read) instead of re-generating,
//! re-sorting, and re-merging.
//!
//! The cache directory defaults to `grappolo-graph-cache` under the system
//! temp dir and can be pinned with `GRAPPOLO_GRAPH_CACHE` (CI points this at
//! a persisted path). A stale or corrupt cache entry is never trusted: any
//! load error falls back to regeneration and rewrites the entry.

use grappolo_graph::{io, CsrGraph};
use std::path::PathBuf;

/// Directory holding cached `.grb` graphs.
pub fn cache_dir() -> PathBuf {
    std::env::var_os("GRAPPOLO_GRAPH_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("grappolo-graph-cache"))
}

/// Returns the graph cached under `key`, generating (and caching) it on a
/// miss. `key` must encode every generator parameter that shapes the graph
/// (family, size, seed), because the cache trusts it blindly.
pub fn cached_graph(key: &str, generate: impl FnOnce() -> CsrGraph) -> CsrGraph {
    let dir = cache_dir();
    let path = dir.join(format!("{key}.grb"));
    if let Ok(g) = io::load_binary(&path) {
        return g;
    }
    let g = generate();
    if std::fs::create_dir_all(&dir).is_ok() {
        // Best-effort: a failed write just means the next run regenerates.
        let _ = io::save_binary(&g, &path);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::gen::{planted_partition, PlantedConfig};

    #[test]
    fn cache_round_trip_is_bitwise_stable() {
        let key = format!("cache-selftest-{}", std::process::id());
        let make = || {
            planted_partition(&PlantedConfig {
                num_vertices: 2_000,
                num_communities: 20,
                ..Default::default()
            })
            .0
        };
        let first = cached_graph(&key, make);
        // Second call must hit the .grb file and reproduce the arrays.
        let second = cached_graph(&key, || panic!("cache miss on second call"));
        assert!(first.bitwise_eq(&second));
        let _ = std::fs::remove_file(cache_dir().join(format!("{key}.grb")));
    }
}
