//! **Extension experiment: size scaling** — the paper's future-work item (i)
//! ("extending the experiments to larger-scale inputs"). Sweeps the proxy
//! size multiplier and reports how time-to-solution, iterations, and
//! modularity grow, separating clustering from rebuild+coloring costs.
//!
//! The shape expectation from §5.6's O((M + n·k̄)/p) per-iteration bound:
//! near-linear time growth in edges at a roughly constant iteration count.

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

const SCALES: [f64; 4] = [0.125, 0.25, 0.5, 1.0];

/// Runs the scaling sweep on one community-rich and one community-poor
/// input.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Extension: size scaling (θ fixed, 2 threads) ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "scale",
        "n",
        "M",
        "Q",
        "#iter",
        "time(s)",
        "clustering(s)",
        "rebuild(s)",
    ]);
    let mut csv = String::from("input,scale,n,m,q,iterations,total_s,clustering_s,rebuild_s\n");

    for input in [PaperInput::Mg1, PaperInput::Nlpkkt240] {
        for &scale in &SCALES {
            let g = input.generate(ctx.scale * scale, ctx.seed);
            let rec = run_scheme(ctx, &g, Scheme::BaselineVfColor, 2);
            let b = rec.trace.timing_breakdown();
            table.row(vec![
                input.id().to_string(),
                format!("{scale}"),
                g.num_vertices().to_string(),
                g.num_edges().to_string(),
                format!("{:.4}", rec.modularity),
                rec.iterations.to_string(),
                format!("{:.3}", rec.time.as_secs_f64()),
                format!("{:.3}", b.clustering.as_secs_f64()),
                format!("{:.3}", b.rebuild.as_secs_f64()),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                input.id(),
                scale,
                g.num_vertices(),
                g.num_edges(),
                rec.modularity,
                rec.iterations,
                rec.time.as_secs_f64(),
                b.clustering.as_secs_f64(),
                b.rebuild.as_secs_f64()
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("scaling.txt", &rendered);
    ctx.write_artifact("scaling.csv", &csv);
}
