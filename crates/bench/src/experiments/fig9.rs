//! **Figure 9** — speedup of the graph-rebuild phase in isolation, as a
//! function of thread count, for the Fig. 8 inputs.
//!
//! Shape claim under test: rebuild scales better on high-modularity inputs
//! (MG2: most edges become intra-community self-loop updates) than on
//! low-first-phase-modularity inputs (Europe-osm, NLPKKT240: inter-community
//! edges each take two locks, §6.2.1).

use crate::harness::{ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

const INPUTS: [PaperInput; 4] = [
    PaperInput::EuropeOsm,
    PaperInput::Nlpkkt240,
    PaperInput::Rgg,
    PaperInput::Mg2,
];

/// Runs the Fig. 9 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Fig 9: graph-rebuild phase speedup ===\n");
    let mut table = TextTable::new(vec!["input", "threads", "rebuild(s)", "rebuild speedup"]);
    let mut csv = String::from("input,threads,rebuild_seconds,speedup_vs_1t\n");

    for input in INPUTS {
        let g = ctx.generate(input);
        // Fig. 9 measures the paper's lock-based rebuild implementation.
        let mut one_thread = None;
        for &t in &ctx.thread_counts {
            let mut cfg = ctx.config(Scheme::BaselineVfColor, t);
            cfg.rebuild = grappolo_core::RebuildStrategy::LockMap;
            let rec = crate::harness::run_config(&g, Scheme::BaselineVfColor, t, &cfg);
            let rebuild = rec.trace.rebuild_time().as_secs_f64();
            if t == 1 {
                one_thread = Some(rebuild);
            }
            let speedup = one_thread.map(|base| base / rebuild.max(1e-12));
            table.row(vec![
                input.id().to_string(),
                t.to_string(),
                format!("{rebuild:.4}"),
                speedup
                    .map(|s| format!("{s:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
            csv.push_str(&format!(
                "{},{},{},{}\n",
                input.id(),
                t,
                rebuild,
                speedup.unwrap_or(f64::NAN)
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("fig9_rebuild.txt", &rendered);
    ctx.write_artifact("fig9_rebuild.csv", &csv);
}
