//! **Figure 7** — speedup charts for baseline+VF+Color:
//! * relative speedup: parallel time at T threads over the 2-thread run;
//! * absolute speedup: over the serial Louvain implementation
//!   (Europe-osm and friendster excluded from the paper's absolute chart
//!   because its serial code crashed there; ours runs them, so they are
//!   included and flagged).

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

/// Runs the Fig. 7 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Fig 7: relative (vs 2-thread) and absolute (vs serial) speedup ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "threads",
        "time(s)",
        "rel speedup",
        "abs speedup",
    ]);
    let mut csv = String::from("input,threads,time_seconds,relative_speedup,absolute_speedup\n");

    for input in PaperInput::ALL {
        let g = ctx.generate(input);
        let serial_time = run_scheme(ctx, &g, Scheme::Serial, 1).time.as_secs_f64();
        let mut two_thread_time = None;
        for &t in &ctx.thread_counts {
            let rec = run_scheme(ctx, &g, Scheme::BaselineVfColor, t);
            let secs = rec.time.as_secs_f64();
            if t == 2 {
                two_thread_time = Some(secs);
            }
            let rel = two_thread_time.map(|base| base / secs);
            let abs = serial_time / secs;
            table.row(vec![
                input.id().to_string(),
                t.to_string(),
                format!("{secs:.3}"),
                rel.map(|r| format!("{r:.2}")).unwrap_or_else(|| "-".into()),
                format!("{abs:.2}"),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{}\n",
                input.id(),
                t,
                secs,
                rel.unwrap_or(f64::NAN),
                abs
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("fig7_speedup.txt", &rendered);
    ctx.write_artifact("fig7_speedup.csv", &csv);
}
