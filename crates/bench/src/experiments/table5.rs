//! **Table 5** — effect of the modularity-gain threshold inside colored
//! phases: θ = 1e-4 vs θ = 1e-2, reporting \[min,max\] modularity, run-time,
//! and iteration counts over trials.
//!
//! The paper's conclusion under test: "the modularities achieved by both
//! schemes are highly comparable, while there is a marked run-time advantage
//! if the threshold is higher" — i.e. 1e-2 should cut iterations/time at
//! negligible quality cost.

use crate::harness::{run_config, secs, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;
use std::time::Duration;

const TRIALS: usize = 3;

/// Runs the Table 5 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Table 5: colored-phase threshold 1e-4 vs 1e-2 ({TRIALS} trials) ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "θ=1e-4 [min,max] Q",
        "θ=1e-4 t(s) (#iter)",
        "θ=1e-2 [min,max] Q",
        "θ=1e-2 t(s) (#iter)",
    ]);

    for input in PaperInput::WITH_SERIAL {
        let g = ctx.generate(input);
        let mut cells = vec![input.reference().name.to_string()];
        for threshold in [1e-4, 1e-2] {
            let mut qmin = f64::INFINITY;
            let mut qmax = f64::NEG_INFINITY;
            let mut total_time = Duration::ZERO;
            let mut total_iters = 0usize;
            for _ in 0..TRIALS {
                let mut cfg = ctx.config(Scheme::BaselineVfColor, 2);
                cfg.colored_threshold = threshold;
                // The paper couples the coloring shutoff to the same value.
                cfg.coloring_phase_gain_cutoff = threshold.max(1e-2);
                let rec = run_config(&g, Scheme::BaselineVfColor, 2, &cfg);
                qmin = qmin.min(rec.modularity);
                qmax = qmax.max(rec.modularity);
                total_time += rec.time;
                total_iters += rec.iterations;
            }
            cells.push(format!("[{qmin:.4}, {qmax:.4}]"));
            cells.push(format!(
                "{} ({})",
                secs(total_time / TRIALS as u32),
                total_iters / TRIALS
            ));
        }
        table.row(cells);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("table5.txt", &rendered);
    ctx.write_artifact("table5.csv", &table.to_csv());
}
