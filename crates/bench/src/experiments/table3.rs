//! **Table 3** — qualitative comparison of the parallel and serial outputs
//! by composition: specificity, sensitivity, overlap quality, Rand index.
//!
//! The paper evaluated CNR and MG1 only, because its comparison enumerated
//! all Θ(n²) vertex pairs; our contingency-table implementation is exact and
//! near-linear, so the harness also reports the remaining inputs as a bonus
//! block (marked `+`).

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;
use grappolo_metrics::{normalized_mutual_information, pairwise_comparison};

/// Paper-reported Table 3 rows for reference printing.
const PAPER_ROWS: [(PaperInput, f64, f64, f64, f64); 2] = [
    (PaperInput::Cnr, 83.41, 89.71, 76.13, 99.42),
    (PaperInput::Mg1, 99.60, 99.83, 99.43, 100.00),
];

/// Runs the Table 3 harness.
pub fn run(ctx: &ExperimentContext) {
    let threads = *ctx
        .thread_counts
        .iter()
        .filter(|&&t| t <= 2)
        .max()
        .unwrap_or(&2);
    println!("\n=== Table 3: parallel vs serial output composition ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "SP %",
        "SE %",
        "OQ %",
        "Rand %",
        "NMI %",
        "SP/SE/OQ/Rand (paper)",
    ]);

    let paper_note = |input: PaperInput| -> String {
        PAPER_ROWS
            .iter()
            .find(|(p, ..)| *p == input)
            .map(|(_, sp, se, oq, rand)| format!("{sp:.2}/{se:.2}/{oq:.2}/{rand:.2}"))
            .unwrap_or_else(|| "+ (not in paper)".into())
    };

    // The paper's two inputs first, then the rest.
    let ordered: Vec<PaperInput> = [PaperInput::Cnr, PaperInput::Mg1]
        .into_iter()
        .chain(
            PaperInput::WITH_SERIAL
                .into_iter()
                .filter(|p| !matches!(p, PaperInput::Cnr | PaperInput::Mg1)),
        )
        .collect();

    for input in ordered {
        let g = ctx.generate(input);
        let serial = run_scheme(ctx, &g, Scheme::Serial, 1);
        let parallel = run_scheme(ctx, &g, Scheme::BaselineVfColor, threads);
        // Serial output is the benchmark S, parallel the candidate P (§6.2.3).
        let m = pairwise_comparison(&serial.assignment, &parallel.assignment);
        let nmi = normalized_mutual_information(&serial.assignment, &parallel.assignment);
        table.row(vec![
            input.reference().name.to_string(),
            format!("{:.2}", 100.0 * m.specificity()),
            format!("{:.2}", 100.0 * m.sensitivity()),
            format!("{:.2}", 100.0 * m.overlap_quality()),
            format!("{:.2}", 100.0 * m.rand_index()),
            format!("{:.2}", 100.0 * nmi),
            paper_note(input),
        ]);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("table3.txt", &rendered);
    ctx.write_artifact("table3.csv", &table.to_csv());
}
