//! **Figure 10** — performance profiles across the heuristic combinations:
//! final modularity (left) and run-time (right) as ratio-to-best CDFs over
//! the 9-input collection with serial results (Europe-osm / friendster
//! excluded, matching the paper).
//!
//! Shape claims under test: baseline+VF+Color leads the run-time profile
//! (best on most inputs), serial trails everything, and all schemes are
//! nearly indistinguishable on the modularity profile.

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;
use grappolo_metrics::perf_profile::{Direction, PerfProfile};

/// Runs the Fig. 10 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Fig 10: performance profiles (modularity & run-time) ===\n");
    let threads = 2;
    let names: Vec<&str> = Scheme::ALL.iter().map(|s| s.name()).collect();

    let mut q_rows: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
    let mut t_rows: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
    for input in PaperInput::WITH_SERIAL {
        let g = ctx.generate(input);
        for (s, scheme) in Scheme::ALL.iter().enumerate() {
            let rec = run_scheme(ctx, &g, *scheme, threads);
            q_rows[s].push(rec.modularity.max(1e-6));
            t_rows[s].push(rec.time.as_secs_f64());
        }
    }

    let q_profile = PerfProfile::compute(&names, &q_rows, Direction::HigherIsBetter);
    let t_profile = PerfProfile::compute(&names, &t_rows, Direction::LowerIsBetter);

    let mut table = TextTable::new(vec![
        "scheme",
        "Q: best on",
        "Q: within 1.05x",
        "time: best on",
        "time: within 1.5x",
        "time: within 3x",
    ]);
    for (i, name) in names.iter().enumerate() {
        table.row(vec![
            name.to_string(),
            format!("{:.0}%", 100.0 * q_profile.curves[i].fraction_best()),
            format!("{:.0}%", 100.0 * q_profile.curves[i].fraction_within(1.05)),
            format!("{:.0}%", 100.0 * t_profile.curves[i].fraction_best()),
            format!("{:.0}%", 100.0 * t_profile.curves[i].fraction_within(1.5)),
            format!("{:.0}%", 100.0 * t_profile.curves[i].fraction_within(3.0)),
        ]);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("fig10_profiles.txt", &rendered);

    // Full step curves for plotting.
    let mut csv = String::from("metric,scheme,ratio_to_best,fraction_of_problems\n");
    for (metric, profile) in [("modularity", &q_profile), ("runtime", &t_profile)] {
        for curve in &profile.curves {
            for (ratio, fraction) in curve.steps() {
                csv.push_str(&format!("{metric},{},{ratio},{fraction}\n", curve.name));
            }
        }
    }
    ctx.write_artifact("fig10_profiles.csv", &csv);
}
