//! **Table 4** — first-phase-only coloring vs multi-phase coloring:
//! [min, max] modularity over trials, run-time, and iteration count.
//!
//! Paper setup (§6.3): inputs where at least two colored phases apply
//! (Channel, uk-2002, Europe-osm, MG2), two-thread runs, colored threshold
//! 1e-2. Multiple trials expose the colored scheme's (small) run-to-run
//! variation, hence the \[min,max\] columns.

use crate::harness::{run_config, secs, ExperimentContext, TextTable};
use grappolo_core::{ColoringSchedule, Scheme};
use grappolo_graph::gen::paper_suite::PaperInput;
use std::time::Duration;

const TRIALS: usize = 3;

const INPUTS: [PaperInput; 4] = [
    PaperInput::Channel,
    PaperInput::Uk2002,
    PaperInput::EuropeOsm,
    PaperInput::Mg2,
];

/// Runs the Table 4 harness.
pub fn run(ctx: &ExperimentContext) {
    println!(
        "\n=== Table 4: first-phase vs multi-phase coloring (2 threads, {TRIALS} trials) ===\n"
    );
    let mut table = TextTable::new(vec![
        "input",
        "1-phase [min,max] Q",
        "1-phase t(s) (#iter)",
        "multi [min,max] Q",
        "multi t(s) (#iter)",
    ]);

    for input in INPUTS {
        let g = ctx.generate(input);
        let mut cells = vec![input.reference().name.to_string()];
        for schedule in [
            ColoringSchedule::FirstPhaseOnly,
            ColoringSchedule::MultiPhase,
        ] {
            let mut qmin = f64::INFINITY;
            let mut qmax = f64::NEG_INFINITY;
            let mut total_time = Duration::ZERO;
            let mut total_iters = 0usize;
            for trial in 0..TRIALS {
                let mut cfg = ctx.config(Scheme::BaselineVfColor, 2);
                cfg.coloring = schedule;
                // Vary nothing but the run itself: colored-scheme variation
                // comes from thread scheduling (§5.4's caveat), so reuse the
                // same graph; the trial index only namespaces the run.
                let _ = trial;
                let rec = run_config(&g, Scheme::BaselineVfColor, 2, &cfg);
                qmin = qmin.min(rec.modularity);
                qmax = qmax.max(rec.modularity);
                total_time += rec.time;
                total_iters += rec.iterations;
            }
            cells.push(format!("[{qmin:.4}, {qmax:.4}]"));
            cells.push(format!(
                "{} ({})",
                secs(total_time / TRIALS as u32),
                total_iters / TRIALS
            ));
        }
        table.row(cells);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("table4.txt", &rendered);
    ctx.write_artifact("table4.csv", &table.to_csv());
}
