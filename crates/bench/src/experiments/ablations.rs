//! Ablation studies for the design choices DESIGN.md calls out beyond the
//! paper's headline comparison:
//!
//! 1. VF single-pass vs recursive chain compression (§5.3 extension);
//! 2. greedy vs balanced coloring (§6.2's proposed fix for uk-2002);
//! 3. lock-map vs sort-based rebuild aggregation (§5.5 alternatives);
//! 4. serial vs parallel-prefix community renumbering (§5.5 future work).

use crate::harness::{run_config, secs, ExperimentContext, TextTable};
use grappolo_core::{RebuildStrategy, RenumberStrategy, Scheme};
use grappolo_graph::gen::paper_suite::PaperInput;

/// Runs all four ablations.
pub fn run(ctx: &ExperimentContext) {
    vf_ablation(ctx);
    balanced_coloring_ablation(ctx);
    rebuild_ablation(ctx);
    renumber_ablation(ctx);
}

fn vf_ablation(ctx: &ExperimentContext) {
    println!("\n=== Ablation 1: VF single-pass vs recursive (Europe-osm regime) ===\n");
    let mut table = TextTable::new(vec!["variant", "Q", "#iter", "time(s)"]);
    let g = ctx.generate(PaperInput::EuropeOsm);
    for (name, use_vf, rounds) in [
        ("no VF", false, 1),
        ("VF single-pass", true, 1),
        ("VF recursive (16 rounds)", true, 16),
    ] {
        let mut cfg = ctx.config(Scheme::BaselineVf, 2);
        cfg.use_vf = use_vf;
        cfg.vf_rounds = rounds;
        let rec = run_config(&g, Scheme::BaselineVf, 2, &cfg);
        table.row(vec![
            name.to_string(),
            format!("{:.5}", rec.modularity),
            rec.iterations.to_string(),
            secs(rec.time),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("ablation_vf.txt", &rendered);
}

fn balanced_coloring_ablation(ctx: &ExperimentContext) {
    println!("\n=== Ablation 2: greedy vs balanced coloring (uk-2002 regime) ===\n");
    let mut table = TextTable::new(vec!["variant", "Q", "#iter", "time(s)"]);
    let g = ctx.generate(PaperInput::Uk2002);
    for (name, balanced) in [("greedy coloring", false), ("balanced coloring", true)] {
        let mut cfg = ctx.config(Scheme::BaselineVfColor, 2);
        cfg.balanced_coloring = balanced;
        let rec = run_config(&g, Scheme::BaselineVfColor, 2, &cfg);
        table.row(vec![
            name.to_string(),
            format!("{:.5}", rec.modularity),
            rec.iterations.to_string(),
            secs(rec.time),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("ablation_balanced_coloring.txt", &rendered);
}

fn rebuild_ablation(ctx: &ExperimentContext) {
    println!("\n=== Ablation 3: rebuild aggregation, stamp vs lock-map vs sort ===\n");
    let mut table = TextTable::new(vec!["input", "strategy", "Q", "rebuild(s)", "total(s)"]);
    for input in [PaperInput::EuropeOsm, PaperInput::Mg2] {
        let g = ctx.generate(input);
        for (name, strategy) in [
            ("stamp (default)", RebuildStrategy::StampAggregate),
            ("lock-map (paper)", RebuildStrategy::LockMap),
            ("sort (deterministic)", RebuildStrategy::SortAggregate),
        ] {
            let mut cfg = ctx.config(Scheme::BaselineVfColor, 2);
            cfg.rebuild = strategy;
            let rec = run_config(&g, Scheme::BaselineVfColor, 2, &cfg);
            table.row(vec![
                input.id().to_string(),
                name.to_string(),
                format!("{:.5}", rec.modularity),
                format!("{:.4}", rec.trace.rebuild_time().as_secs_f64()),
                secs(rec.time),
            ]);
        }
    }
    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("ablation_rebuild.txt", &rendered);
}

fn renumber_ablation(ctx: &ExperimentContext) {
    println!("\n=== Ablation 4: serial vs parallel-prefix renumbering ===\n");
    let mut table = TextTable::new(vec!["strategy", "Q", "total(s)"]);
    let g = ctx.generate(PaperInput::Friendster);
    for (name, strategy) in [
        ("serial scan (paper)", RenumberStrategy::Serial),
        (
            "parallel prefix (future work)",
            RenumberStrategy::ParallelPrefix,
        ),
    ] {
        let mut cfg = ctx.config(Scheme::BaselineVfColor, 2);
        cfg.renumber = strategy;
        let rec = run_config(&g, Scheme::BaselineVfColor, 2, &cfg);
        table.row(vec![
            name.to_string(),
            format!("{:.5}", rec.modularity),
            secs(rec.time),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("ablation_renumber.txt", &rendered);
}
