//! **Table 1** — input statistics: n, M, max/avg degree, degree RSD.
//!
//! Prints the synthetic proxy's measured statistics next to the paper's
//! published numbers for the real input, so the regime match (degree-RSD
//! ordering, road-like average degree, mesh uniformity) is auditable.

use crate::harness::{ExperimentContext, TextTable};
use grappolo_graph::gen::paper_suite::PaperInput;
use grappolo_graph::GraphStats;

/// Runs the Table 1 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Table 1: input statistics (proxy vs paper) ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "n (ours)",
        "M (ours)",
        "max k",
        "avg k",
        "RSD",
        "n (paper)",
        "M (paper)",
        "RSD (paper)",
        "single-deg %",
    ]);

    for input in PaperInput::ALL {
        let g = ctx.generate(input);
        let s = GraphStats::compute(&g);
        let r = input.reference();
        table.row(vec![
            r.name.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            s.max_degree.to_string(),
            format!("{:.3}", s.avg_degree),
            format!("{:.3}", s.degree_rsd),
            r.num_vertices.to_string(),
            r.num_edges.to_string(),
            format!("{:.3}", r.degree_rsd),
            format!(
                "{:.1}",
                100.0 * s.num_single_degree as f64 / s.num_vertices.max(1) as f64
            ),
        ]);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("table1.txt", &rendered);
    ctx.write_artifact("table1.csv", &table.to_csv());
}
