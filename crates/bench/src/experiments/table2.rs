//! **Table 2** — final modularity and run-time: parallel baseline+VF+Color
//! vs serial Louvain, with the speedup column.
//!
//! The paper ran the parallel side at 8 threads on a 32-core Xeon; this
//! machine caps at `available_parallelism`, so the parallel column uses the
//! largest physical thread count and the shape claim under test is
//! *"parallel delivers comparable-or-better modularity in less time"*, not
//! the absolute speedup value.

use crate::harness::{opt_fmt, run_scheme, secs, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

/// Runs the Table 2 harness.
pub fn run(ctx: &ExperimentContext) {
    let threads = *ctx
        .thread_counts
        .iter()
        .filter(|&&t| t <= 2)
        .max()
        .unwrap_or(&2);
    println!("\n=== Table 2: modularity & run-time, parallel ({threads} threads) vs serial ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "Q parallel",
        "Q serial",
        "Q par (paper)",
        "Q ser (paper)",
        "t par (s)",
        "t ser (s)",
        "speedup",
        "speedup@8 (paper)",
    ]);

    for input in PaperInput::ALL {
        let g = ctx.generate(input);
        let r = input.reference();
        let par = run_scheme(ctx, &g, Scheme::BaselineVfColor, threads);
        // The paper's serial implementation crashed (32-bit) on Europe-osm
        // and friendster; ours runs them, but we mark the paper side N/A.
        let ser = run_scheme(ctx, &g, Scheme::Serial, 1);
        let speedup = ser.time.as_secs_f64() / par.time.as_secs_f64();
        table.row(vec![
            r.name.to_string(),
            format!("{:.6}", par.modularity),
            format!("{:.6}", ser.modularity),
            opt_fmt(r.parallel_modularity.map(|q| format!("{q:.6}"))),
            opt_fmt(r.serial_modularity.map(|q| format!("{q:.6}"))),
            secs(par.time),
            secs(ser.time),
            format!("{speedup:.2}"),
            opt_fmt(r.speedup_8t.map(|s| format!("{s:.2}"))),
        ]);
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("table2.txt", &rendered);
    ctx.write_artifact("table2.csv", &table.to_csv());
}
