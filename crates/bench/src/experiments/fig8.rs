//! **Figure 8** — run-time breakdown by algorithm step (coloring / graph
//! rebuild incl. VF / clustering iterations) as a function of thread count,
//! for the paper's four representative inputs (Europe-osm, NLPKKT240,
//! Rgg, MG2).
//!
//! The shape claims under test: clustering dominates on community-rich
//! inputs (Rgg, MG2), while rebuild takes a growing share on Europe-osm and
//! NLPKKT240 (the low-first-phase-modularity inputs whose inter-community
//! edges make rebuild lock-heavy, §6.2.1).

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

const INPUTS: [PaperInput; 4] = [
    PaperInput::EuropeOsm,
    PaperInput::Nlpkkt240,
    PaperInput::Rgg,
    PaperInput::Mg2,
];

/// Runs the Fig. 8 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Fig 8: run-time breakdown (coloring / rebuild+VF / clustering) ===\n");
    let mut table = TextTable::new(vec![
        "input",
        "threads",
        "coloring(s)",
        "rebuild+VF(s)",
        "clustering(s)",
        "clustering %",
    ]);
    let mut csv = String::from("input,threads,coloring_s,rebuild_s,clustering_s,total_s\n");

    for input in INPUTS {
        let g = ctx.generate(input);
        for &t in &ctx.thread_counts {
            let rec = run_scheme(ctx, &g, Scheme::BaselineVfColor, t);
            let b = rec.trace.timing_breakdown();
            let total = b.total().as_secs_f64().max(1e-12);
            table.row(vec![
                input.id().to_string(),
                t.to_string(),
                format!("{:.3}", b.coloring.as_secs_f64()),
                format!("{:.3}", b.rebuild.as_secs_f64()),
                format!("{:.3}", b.clustering.as_secs_f64()),
                format!("{:.1}", 100.0 * b.clustering.as_secs_f64() / total),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                input.id(),
                t,
                b.coloring.as_secs_f64(),
                b.rebuild.as_secs_f64(),
                b.clustering.as_secs_f64(),
                total
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("fig8_breakdown.txt", &rendered);
    ctx.write_artifact("fig8_breakdown.csv", &csv);
}
