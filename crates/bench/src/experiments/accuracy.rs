//! **Extension experiment: ground-truth recovery vs mixing** — the standard
//! community-detection accuracy protocol (LFR-style): sweep the planted
//! partition's inter-community mixing and report each scheme's agreement
//! with the planted truth (NMI / adjusted Rand), answering the question the
//! paper's Table 3 approximates by comparing against serial output.
//!
//! Shape expectation: all schemes recover near-perfectly at low mixing and
//! degrade together as mixing approaches the detectability limit; the
//! parallel heuristics should not degrade earlier than serial.

use crate::harness::{run_scheme, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::{planted_partition, PlantedConfig};
use grappolo_metrics::{normalized_mutual_information, pairwise_comparison};

/// Inter-community degree levels (intra fixed at 12).
const MIXING: [f64; 5] = [0.5, 2.0, 4.0, 8.0, 12.0];

/// Runs the accuracy sweep.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Extension: ground-truth recovery vs mixing (planted partition) ===\n");
    let mut table = TextTable::new(vec![
        "inter-degree",
        "scheme",
        "Q",
        "NMI %",
        "ARI %",
        "#communities",
    ]);
    let mut csv = String::from("inter_degree,scheme,q,nmi,ari,communities\n");

    for &inter in &MIXING {
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: (8_192.0 * ctx.scale.max(0.1)) as usize,
            num_communities: ((8_192.0 * ctx.scale.max(0.1)) as usize / 80).max(4),
            avg_intra_degree: 12.0,
            avg_inter_degree: inter,
            ..Default::default()
        });
        for scheme in Scheme::ALL {
            let rec = run_scheme(ctx, &g, scheme, 2);
            let nmi = normalized_mutual_information(&truth, &rec.assignment);
            let ari = pairwise_comparison(&truth, &rec.assignment).adjusted_rand_index();
            table.row(vec![
                format!("{inter}"),
                scheme.name().to_string(),
                format!("{:.4}", rec.modularity),
                format!("{:.1}", 100.0 * nmi),
                format!("{:.1}", 100.0 * ari),
                rec.num_communities.to_string(),
            ]);
            csv.push_str(&format!(
                "{inter},{},{},{nmi},{ari},{}\n",
                scheme.name(),
                rec.modularity,
                rec.num_communities
            ));
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    ctx.write_artifact("accuracy.txt", &rendered);
    ctx.write_artifact("accuracy.csv", &csv);
}
