//! **Figures 3–6** — per-input charts: (left column) modularity evolution
//! from the first iteration of the first phase to the last iteration of the
//! last phase, for serial / baseline / baseline+VF / baseline+VF+Color;
//! (right column) parallel run-time as a function of thread count.
//!
//! Emits one CSV per input with the modularity series of each scheme and one
//! CSV per input with the time-vs-threads series, plus a console summary.

use crate::harness::{run_scheme, secs, ExperimentContext, TextTable};
use grappolo_core::Scheme;
use grappolo_graph::gen::paper_suite::PaperInput;

/// Runs the Figs. 3–6 harness.
pub fn run(ctx: &ExperimentContext) {
    println!("\n=== Figs 3–6: modularity evolution + runtime vs threads ===\n");
    let max_threads = *ctx.thread_counts.last().unwrap();

    let mut summary = TextTable::new(vec![
        "input", "scheme", "final Q", "#iter", "#phases", "time(s)",
    ]);

    for input in PaperInput::ALL {
        let g = ctx.generate(input);
        let name = input.id();

        // Left chart: modularity evolution per scheme (fixed thread count).
        let mut evolution = String::from("scheme,global_iteration,phase,modularity\n");
        // Baseline ≡ baseline+VF on the pre-pruned inputs (§6.1 footnote 4).
        let schemes: Vec<Scheme> = if input.vf_prepruned() {
            vec![Scheme::Serial, Scheme::BaselineVf, Scheme::BaselineVfColor]
        } else {
            Scheme::ALL.to_vec()
        };
        for scheme in &schemes {
            let threads = if *scheme == Scheme::Serial {
                1
            } else {
                max_threads.min(2)
            };
            let rec = run_scheme(ctx, &g, *scheme, threads);
            for (gi, it) in rec.trace.iterations.iter().enumerate() {
                evolution.push_str(&format!(
                    "{},{},{},{}\n",
                    scheme.name(),
                    gi,
                    it.phase,
                    it.modularity
                ));
            }
            summary.row(vec![
                name.to_string(),
                scheme.name().to_string(),
                format!("{:.5}", rec.modularity),
                rec.iterations.to_string(),
                rec.trace.num_phases().to_string(),
                secs(rec.time),
            ]);
        }
        ctx.write_artifact(&format!("fig3_6_{name}_modularity.csv"), &evolution);

        // Right chart: run-time of the headline scheme vs thread count.
        let mut times = String::from("threads,time_seconds\n");
        for &t in &ctx.thread_counts {
            let rec = run_scheme(ctx, &g, Scheme::BaselineVfColor, t);
            times.push_str(&format!("{t},{}\n", rec.time.as_secs_f64()));
        }
        ctx.write_artifact(&format!("fig3_6_{name}_runtime.csv"), &times);
    }

    let rendered = summary.render();
    println!("{rendered}");
    ctx.write_artifact("fig3_6_summary.txt", &rendered);
}
