//! One module per table/figure of the paper's evaluation section, plus the
//! ablation studies DESIGN.md commits to. Every module exposes
//! `run(&ExperimentContext)`; the binaries in `src/bin/` are thin wrappers.

pub mod ablations;
pub mod accuracy;
pub mod fig10;
pub mod fig3_6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
