//! # grappolo-bench
//!
//! Experiment harnesses reproducing every table and figure of the paper's
//! evaluation section (§6), plus Criterion micro-benchmarks.
//!
//! Each table/figure has a dedicated binary (`cargo run -p grappolo-bench
//! --release --bin table2`, etc.); `--bin run_all` regenerates everything.
//! Output goes to stdout as aligned text tables and to `results/*.csv`.
//!
//! Environment knobs:
//! * `GRAPPOLO_SCALE` — size multiplier for the proxy inputs (default 0.25;
//!   1.0 ≈ 32 K–130 K vertices per input);
//! * `GRAPPOLO_SEED` — generator seed (default 1);
//! * `GRAPPOLO_RESULTS` — output directory (default `results/`);
//! * `GRAPPOLO_GRAPH_CACHE` — directory for cached generated graphs
//!   (`.grb`; default under the system temp dir).

pub mod cache;
pub mod experiments;
pub mod harness;

pub use cache::cached_graph;
pub use harness::{ExperimentContext, RunRecord, TextTable};
