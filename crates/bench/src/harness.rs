//! Shared experiment infrastructure: context (scale/seed/output dir), timed
//! scheme runs, and text-table / CSV emission.

use grappolo_core::{detect_communities, LouvainConfig, RunTrace, Scheme};
use grappolo_graph::gen::paper_suite::PaperInput;
use grappolo_graph::CsrGraph;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Global knobs for one harness invocation.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Proxy-size multiplier (`GRAPPOLO_SCALE`, default 0.25).
    pub scale: f64,
    /// Generator seed (`GRAPPOLO_SEED`, default 1).
    pub seed: u64,
    /// Output directory (`GRAPPOLO_RESULTS`, default `results/`).
    pub results_dir: PathBuf,
    /// Thread counts for sweeps: 1, 2, and 2× the cores (to show the
    /// oversubscription plateau the paper's 32-thread runs approach).
    pub thread_counts: Vec<usize>,
    /// Coloring-cutoff override: the paper's 100 K vertex cutoff scaled to
    /// the proxy sizes so colored phases actually engage.
    pub coloring_vertex_cutoff: usize,
}

impl ExperimentContext {
    /// Builds a context from environment variables.
    pub fn from_env() -> Self {
        let scale = std::env::var("GRAPPOLO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.25);
        let seed = std::env::var("GRAPPOLO_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let results_dir = std::env::var("GRAPPOLO_RESULTS")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(2);
        let mut thread_counts = vec![1, 2];
        if cores > 2 {
            thread_counts.push(cores);
        }
        thread_counts.push(cores * 2);
        thread_counts.dedup();
        Self {
            scale,
            seed,
            results_dir,
            thread_counts,
            coloring_vertex_cutoff: 2_048,
        }
    }

    /// Generates one paper-proxy input at the context's scale.
    pub fn generate(&self, input: PaperInput) -> CsrGraph {
        input.generate(self.scale, self.seed)
    }

    /// Scheme configuration with the context's scaled coloring cutoff and a
    /// thread count.
    pub fn config(&self, scheme: Scheme, threads: usize) -> LouvainConfig {
        let mut cfg = scheme.config();
        cfg.coloring_vertex_cutoff = self.coloring_vertex_cutoff;
        if scheme != Scheme::Serial {
            cfg.num_threads = Some(threads);
        }
        cfg
    }

    /// Writes a result artifact (CSV or txt) under the results directory.
    pub fn write_artifact(&self, name: &str, content: &str) {
        std::fs::create_dir_all(&self.results_dir).ok();
        let path = self.results_dir.join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  → wrote {}", path.display());
        }
    }

    /// Serializes a record set as JSON under the results directory.
    pub fn write_json<T: Serialize>(&self, name: &str, value: &T) {
        match serde_json::to_string_pretty(value) {
            Ok(s) => self.write_artifact(name, &s),
            Err(e) => eprintln!("warning: json serialize failed for {name}: {e}"),
        }
    }
}

/// One timed run of one scheme on one input.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The scheme executed.
    pub scheme: Scheme,
    /// Threads used (1 for serial).
    pub threads: usize,
    /// Final modularity.
    pub modularity: f64,
    /// Number of communities found.
    pub num_communities: usize,
    /// Wall-clock for the whole detection call.
    pub time: Duration,
    /// Total iterations across phases.
    pub iterations: usize,
    /// Full trace (modularity curve, per-phase timings).
    pub trace: RunTrace,
    /// Final assignment (for qualitative comparisons).
    pub assignment: Vec<u32>,
}

/// Runs `scheme` on `g` with `threads` and records everything.
pub fn run_scheme(
    ctx: &ExperimentContext,
    g: &CsrGraph,
    scheme: Scheme,
    threads: usize,
) -> RunRecord {
    let config = ctx.config(scheme, threads);
    run_config(g, scheme, threads, &config)
}

/// Runs an explicit configuration (for threshold / schedule sweeps).
pub fn run_config(
    g: &CsrGraph,
    scheme: Scheme,
    threads: usize,
    config: &LouvainConfig,
) -> RunRecord {
    let start = Instant::now();
    let result = detect_communities(g, config);
    let time = start.elapsed();
    RunRecord {
        scheme,
        threads,
        modularity: result.modularity,
        num_communities: result.num_communities,
        time,
        iterations: result.trace.total_iterations(),
        trace: result.trace,
        assignment: result.assignment,
    }
}

/// Minimal aligned text table, matching the paper's presentation style.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a `Duration` in seconds with 2 decimals (paper style).
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats an optional value or "N/A" (paper's crashed-serial entries).
pub fn opt_fmt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "N/A".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["input", "Q"]);
        t.row(vec!["cnr", "0.91"]);
        t.row(vec!["a-very-long-name", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("input"));
        assert!(lines[2].starts_with("cnr"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        assert!(t.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn context_from_env_has_sane_defaults() {
        let ctx = ExperimentContext::from_env();
        assert!(ctx.scale > 0.0);
        assert!(!ctx.thread_counts.is_empty());
        assert!(ctx.thread_counts[0] == 1);
    }

    #[test]
    fn run_scheme_smoke() {
        let ctx = ExperimentContext {
            scale: 0.02,
            seed: 1,
            results_dir: std::env::temp_dir().join("grappolo_bench_test"),
            thread_counts: vec![1],
            coloring_vertex_cutoff: 64,
        };
        let g = ctx.generate(PaperInput::CoPapersDblp);
        let rec = run_scheme(&ctx, &g, Scheme::Baseline, 1);
        assert!(rec.modularity > 0.0);
        assert!(rec.iterations > 0);
        assert_eq!(rec.assignment.len(), g.num_vertices());
    }
}
