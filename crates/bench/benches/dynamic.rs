//! Criterion benchmark: incremental re-convergence after a batched edge
//! update vs detecting communities from scratch on the updated graph.
//!
//! The acceptance bar for the dynamic path: on the shared ~1.15 M-edge
//! RMAT input, `update_communities` with a 0.1 % batch must be ≥5× faster
//! than a from-scratch `detect_communities` run (CI gates the ratio from
//! this file's JSON). The 1 % and 10 % points chart how the advantage
//! decays as the perturbation grows toward the fallback regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cache::cached_graph;
use grappolo_core::{detect_communities, update_communities, LouvainConfig, SweepMode};
use grappolo_graph::gen::{rmat, RmatConfig};
use grappolo_graph::{CsrGraph, EdgeDelta, MergePolicy};

/// Deterministic mixed batch: one third deletes and one third reweights
/// stride-walk the edge list on disjoint indices (so no op targets a
/// deleted edge), the rest are LCG-sampled inserts (duplicates and
/// collisions with existing edges merge under the Sum policy, so no
/// rejection sampling is needed).
fn synth_batch(g: &CsrGraph, size: usize) -> Vec<EdgeDelta> {
    let edges: Vec<(u32, u32)> = g.undirected_edges().map(|(u, v, _)| (u, v)).collect();
    let n = g.num_vertices() as u64;
    let mut batch = Vec::with_capacity(size);
    let third = (size / 3).max(1);
    let stride = (edges.len() / (2 * third)).max(2);
    for i in 0..third {
        let (u, v) = edges[(2 * i * stride) % edges.len()];
        batch.push(EdgeDelta::Delete { u, v });
        let (u, v) = edges[(2 * i * stride + 1) % edges.len()];
        batch.push(EdgeDelta::Reweight { u, v, weight: 2.0 });
    }
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    while batch.len() < size {
        let u = (next() % n) as u32;
        let v = (next() % n) as u32;
        if u != v {
            batch.push(EdgeDelta::Insert { u, v, weight: 1.0 });
        }
    }
    batch
}

fn bench_dynamic(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic");

    // The acceptance-bar input: the same cached ~1.15 M-edge RMAT graph
    // the ingest, sweep, active, and scaling benches share.
    let g = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    let m = g.num_edges();
    group.throughput(Throughput::Elements(m as u64));

    let config = LouvainConfig::builder()
        .sweep(SweepMode::Active)
        .build()
        .unwrap();
    // The stored state a dynamic update starts from.
    let base = detect_communities(&g, &config);

    for (label, fraction) in [("0.1pct", 0.001), ("1pct", 0.01), ("10pct", 0.1)] {
        let batch = synth_batch(&g, ((m as f64) * fraction) as usize);
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("rmat1150k_{label}")),
            &batch,
            |b, batch| {
                b.iter(|| {
                    update_communities(&g, &base.assignment, Some(base.modularity), batch, &config)
                        .unwrap()
                });
            },
        );
    }

    // From-scratch baseline on the post-batch graph of the smallest
    // (gated) perturbation — the work the incremental path displaces.
    let small = synth_batch(&g, ((m as f64) * 0.001) as usize);
    let updated = g.apply_edge_batch(&small, MergePolicy::Sum).unwrap();
    group.bench_with_input(
        BenchmarkId::new("from_scratch", "rmat1150k"),
        &updated,
        |b, g2| {
            b.iter(|| detect_communities(g2, &config));
        },
    );

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dynamic
}
criterion_main!(benches);
