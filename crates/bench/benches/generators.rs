//! Criterion micro-benchmark: workload-generator throughput, so regressions
//! in input preparation don't masquerade as solver regressions in the
//! experiment harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use grappolo_graph::gen::{
    planted_partition, random_geometric, rmat, road_network, PlantedConfig, RggConfig, RmatConfig,
    RoadConfig,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.bench_function("planted_20k", |b| {
        b.iter(|| {
            planted_partition(&PlantedConfig {
                num_vertices: 20_000,
                num_communities: 200,
                ..Default::default()
            })
        })
    });
    group.bench_function("rmat_s14", |b| {
        b.iter(|| {
            rmat(&RmatConfig {
                scale: 14,
                num_edges: 150_000,
                ..Default::default()
            })
        })
    });
    group.bench_function("rgg_20k", |b| {
        b.iter(|| {
            random_geometric(&RggConfig {
                num_vertices: 20_000,
                ..Default::default()
            })
        })
    });
    group.bench_function("road_20k", |b| {
        b.iter(|| {
            road_network(&RoadConfig {
                num_vertices: 20_000,
                ..Default::default()
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generators
}
criterion_main!(benches);
