//! Criterion benchmark for the **dirty-vertex (active-set) sweeps** — the
//! end-to-end payoff of activity-proportional iterations.
//!
//! Unlike the `sweep` bench (which pins a fixed iteration budget so both
//! kernels do identical work), every measurement here runs a whole phase
//! **to convergence**: that is where pruning pays, because late iterations
//! move <1% of vertices while a full sweep still gathers all `m` adjacency
//! entries. Every variant runs through [`PhaseDriver`], the unified phase
//! entry point, resolved from a [`LouvainConfig`] per variant. Eight
//! variants per input:
//!
//! * `unordered_full` / `unordered_active` — [`PhaseDriver::run`] under
//!   [`SweepMode::Full`] vs [`SweepMode::Active`] with the paper's fixed
//!   aggregate threshold;
//! * `colored_full` / `colored_active` — [`PhaseDriver::run_colored`], the
//!   colored analogue (coloring precomputed outside the timed region);
//! * `unordered_sched_full` / `unordered_sched_active` and
//!   `colored_sched_full` / `colored_sched_active` — the same sweeps under
//!   the geometric per-vertex convergence schedule (PR 5) at the default
//!   edge-unit parameters scaled to the input.
//!
//! The PR 4 acceptance bar is colored **active ≥ 1.5× faster end-to-end**
//! than full on the cached ~1.15 M-edge RMAT graph (the ingest/sweep
//! benches' shared cache entry). The PR 5 bar is **unordered scheduled
//! active ≥ 1.3× faster than unordered full** on the planted100k input —
//! the input whose fixed-threshold unordered sweep plateaus at 20–40 %
//! movers for dozens of iterations (on RMAT the fixed unordered baseline
//! instead bails out after 2 iterations on a Lemma-1 negative gain, so
//! there is no plateau to prune — there the schedule's win is quality:
//! final Q roughly doubles). Quality bars live in `tests/properties.rs`.
//!
//! `cargo bench --bench active` emits `BENCH_active.json`, which the CI
//! perf gate tracks against the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::{LouvainConfig, PhaseDriver, SweepMode};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;

/// Convergence threshold matching the driver's uncolored default; the same
/// input therefore runs the same number of moving iterations every sample.
const THRESHOLD: f64 = 1e-6;

/// Safety cap well above any observed convergence length.
const MAX_ITERS: usize = 10_000;

fn bench_active(c: &mut Criterion) {
    let mut group = c.benchmark_group("active");

    let bench_input = |group: &mut criterion::BenchmarkGroup<'_>, label: &str, g: &CsrGraph| {
        let batches =
            ColorBatches::from_coloring(&color_parallel(g, &ParallelColoringConfig::default()));
        // One resolved driver per variant: fixed threshold, or the
        // geometric schedule at the default edge-unit parameters for this
        // input (start 4/m, factor 0.5, floor 0.5/m).
        let driver_for = |sweep: SweepMode, scheduled: bool| -> PhaseDriver {
            let mut config = LouvainConfig {
                sweep_mode: sweep,
                max_iterations_per_phase: MAX_ITERS,
                ..LouvainConfig::default()
            };
            if scheduled {
                config = config.with_geometric_schedule(g.total_weight());
            }
            PhaseDriver::from_config(&config, THRESHOLD)
        };
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        for (id, sweep, scheduled) in [
            ("unordered_full", SweepMode::Full, false),
            ("unordered_active", SweepMode::Active, false),
            ("unordered_sched_full", SweepMode::Full, true),
            ("unordered_sched_active", SweepMode::Active, true),
        ] {
            let driver = driver_for(sweep, scheduled);
            group.bench_with_input(BenchmarkId::new(id, label), &(g, &driver), |b, (g, d)| {
                b.iter(|| d.run(g));
            });
        }
        for (id, sweep, scheduled) in [
            ("colored_full", SweepMode::Full, false),
            ("colored_active", SweepMode::Active, false),
            ("colored_sched_full", SweepMode::Full, true),
            ("colored_sched_active", SweepMode::Active, true),
        ] {
            let driver = driver_for(sweep, scheduled);
            group.bench_with_input(
                BenchmarkId::new(id, label),
                &(g, &batches, &driver),
                |b, (g, bt, d)| {
                    b.iter(|| d.run_colored(g, bt));
                },
            );
        }
    };

    let planted = cached_graph("sweep_planted_100000", || {
        planted_partition(&PlantedConfig {
            num_vertices: 100_000,
            num_communities: 1_000,
            ..Default::default()
        })
        .0
    });
    bench_input(&mut group, "planted100k", &planted);

    // The acceptance-bar input: the same cached ~1.15 M-edge RMAT graph the
    // ingest and sweep benches use (shared .grb cache entry).
    let big = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    bench_input(&mut group, "rmat1150k", &big);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_active
}
criterion_main!(benches);
