//! Criterion benchmark for the **dirty-vertex (active-set) sweeps** — the
//! end-to-end payoff of activity-proportional iterations.
//!
//! Unlike the `sweep` bench (which pins a fixed iteration budget so both
//! kernels do identical work), every measurement here runs a whole phase
//! **to convergence**: that is where pruning pays, because late iterations
//! move <1% of vertices while a full sweep still gathers all `m` adjacency
//! entries. Four variants per input:
//!
//! * `unordered_full` / `unordered_active` — [`parallel_phase_unordered_sweep`]
//!   under [`SweepMode::Full`] vs [`SweepMode::Active`];
//! * `colored_full` / `colored_active` — the colored analogue (coloring
//!   precomputed outside the timed region).
//!
//! The PR 4 acceptance bar is **active ≥ 1.5× faster end-to-end** than full
//! on the cached ~1.15 M-edge RMAT graph (the ingest/sweep benches' shared
//! cache entry), with unchanged Q/NMI bars (see `tests/properties.rs` and
//! `tests/paper_claims.rs` for the quality side of that contract).
//!
//! `cargo bench --bench active` emits `BENCH_active.json`, which the CI
//! perf gate tracks against the committed baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::parallel::{parallel_phase_colored_sweep, parallel_phase_unordered_sweep};
use grappolo_core::SweepMode;
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;

/// Convergence threshold matching the driver's uncolored default; the same
/// input therefore runs the same number of moving iterations every sample.
const THRESHOLD: f64 = 1e-6;

/// Safety cap well above any observed convergence length.
const MAX_ITERS: usize = 10_000;

fn bench_active(c: &mut Criterion) {
    let mut group = c.benchmark_group("active");

    let bench_input = |group: &mut criterion::BenchmarkGroup<'_>, label: &str, g: &CsrGraph| {
        let batches =
            ColorBatches::from_coloring(&color_parallel(g, &ParallelColoringConfig::default()));
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        for (id, sweep) in [
            ("unordered_full", SweepMode::Full),
            ("unordered_active", SweepMode::Active),
        ] {
            group.bench_with_input(BenchmarkId::new(id, label), &g, |b, g| {
                b.iter(|| parallel_phase_unordered_sweep(g, sweep, THRESHOLD, MAX_ITERS, 1.0));
            });
        }
        for (id, sweep) in [
            ("colored_full", SweepMode::Full),
            ("colored_active", SweepMode::Active),
        ] {
            group.bench_with_input(BenchmarkId::new(id, label), &(g, &batches), |b, (g, bt)| {
                b.iter(|| parallel_phase_colored_sweep(g, bt, sweep, THRESHOLD, MAX_ITERS, 1.0));
            });
        }
    };

    let planted = cached_graph("sweep_planted_100000", || {
        planted_partition(&PlantedConfig {
            num_vertices: 100_000,
            num_communities: 1_000,
            ..Default::default()
        })
        .0
    });
    bench_input(&mut group, "planted100k", &planted);

    // The acceptance-bar input: the same cached ~1.15 M-edge RMAT graph the
    // ingest and sweep benches use (shared .grb cache entry).
    let big = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    bench_input(&mut group, "rmat1150k", &big);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_active
}
criterion_main!(benches);
