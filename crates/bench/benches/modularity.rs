//! Criterion micro-benchmark: the modularity kernel (Eq. 3), the
//! community-degree scatter, the neighbor-gather kernels (flat stamped
//! scratch vs the sort-based reference), and the incremental
//! `ModularityTracker` accounting vs the full rescan it replaced — the
//! per-iteration building blocks §5.5 optimizes by pre-aggregation.
//!
//! The 50 K planted input is cached as a `.grb` file
//! (`grappolo_bench::cache`, honoring `GRAPPOLO_GRAPH_CACHE`) like the
//! build/sweep benches, so repeat runs — and CI — skip regeneration. The
//! benchmark partition is the deterministic 500-block split of the vertex
//! range, so it needs no side-channel next to the cached graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_core::modularity::{
    community_degrees, community_sizes, intra_community_weight, modularity, Community,
    IndependentMove, ModularityTracker, NeighborScratch,
};
use grappolo_core::reference::gather_sorted;
use grappolo_graph::gen::{planted_partition, PlantedConfig};

const NUM_VERTICES: usize = 50_000;
const NUM_BLOCKS: usize = 500;

fn bench_modularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("modularity");
    let g = cached_graph("modularity_planted_50k", || {
        planted_partition(&PlantedConfig {
            num_vertices: NUM_VERTICES,
            num_communities: NUM_BLOCKS,
            ..Default::default()
        })
        .0
    });
    // Deterministic block partition over the vertex range (same granularity
    // as the planted communities; reconstructible from the cached graph).
    let part: Vec<Community> = (0..g.num_vertices())
        .map(|v| (v * NUM_BLOCKS / g.num_vertices()) as Community)
        .collect();
    group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
    group.bench_with_input(BenchmarkId::new("full_q", "planted50k"), &g, |b, g| {
        b.iter(|| modularity(g, &part));
    });
    group.bench_with_input(BenchmarkId::new("e_in_only", "planted50k"), &g, |b, g| {
        b.iter(|| intra_community_weight(g, &part));
    });
    group.bench_with_input(
        BenchmarkId::new("community_degrees", "planted50k"),
        &g,
        |b, g| {
            b.iter(|| community_degrees(g, &part));
        },
    );
    // One full pass of per-vertex neighbor-community aggregation, the inner
    // loop of the local-moving sweep: flat stamped scratch vs sorted merge.
    group.bench_with_input(BenchmarkId::new("gather_flat", "planted50k"), &g, |b, g| {
        let mut scratch = NeighborScratch::with_capacity(g.num_vertices());
        b.iter(|| {
            let mut acc = 0usize;
            for v in 0..g.num_vertices() as u32 {
                scratch.gather(g, &part, v);
                acc += scratch.entries.len();
            }
            acc
        });
    });
    group.bench_with_input(
        BenchmarkId::new("gather_sorted", "planted50k"),
        &g,
        |b, g| {
            let mut entries = Vec::new();
            b.iter(|| {
                let mut acc = 0usize;
                for v in 0..g.num_vertices() as u32 {
                    gather_sorted(g, &part, v, &mut entries);
                    acc += entries.len();
                }
                acc
            });
        },
    );

    // The PR 3 accounting delta in isolation: committing a batch of 1 024
    // pre-gathered moves through the incremental tracker (O(#moves)) vs the
    // full-rescan recomputation of modularity (O(m) + O(n)) the colored
    // sweep historically paid per iteration.
    let a0 = community_degrees(&g, &part);
    let sizes0 = community_sizes(&part);
    let tracker0 = ModularityTracker::new(&g, &part, &a0, 1.0);
    let mut scratch = NeighborScratch::with_capacity(g.num_vertices());
    // Movers come from one color class so they form a genuine independent
    // set (the batch-commit precondition); each is relabeled to the next
    // block over. The move set is fixed — only the accounting is timed.
    let coloring = grappolo_coloring::color_parallel(
        &g,
        &grappolo_coloring::ParallelColoringConfig::default(),
    );
    let batches = grappolo_coloring::ColorBatches::from_coloring(&coloring);
    let class = batches
        .iter()
        .max_by_key(|c| c.len())
        .expect("non-empty coloring");
    assert!(
        class.len() >= 1_024,
        "largest class too small for the bench"
    );
    let stride = class.len() / 1_024;
    let moves: Vec<IndependentMove> = (0..1_024usize)
        .map(|i| {
            let v = class[i * stride];
            let from = part[v as usize];
            let to = (from + 1) % NUM_BLOCKS as Community;
            scratch.gather(&g, &part, v);
            let weight_to = |c: Community| {
                scratch
                    .entries
                    .iter()
                    .find(|&&(cc, _)| cc == c)
                    .map_or(0.0, |&(_, w)| w)
            };
            IndependentMove {
                k: g.weighted_degree(v),
                e_src: weight_to(from),
                e_tgt: weight_to(to),
                from,
                to,
            }
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("tracker_batch_1k", "planted50k"),
        &g,
        |b, _g| {
            b.iter(|| {
                let mut tracker = tracker0.clone();
                let mut a = a0.clone();
                let mut sizes = sizes0.clone();
                tracker.apply_independent_batch(&moves, &mut a, &mut sizes);
                tracker.modularity()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("tracker_full_rescan", "planted50k"),
        &g,
        |b, g| {
            b.iter(|| ModularityTracker::new(g, &part, &a0, 1.0).modularity());
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modularity
}
criterion_main!(benches);
