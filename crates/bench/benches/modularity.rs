//! Criterion micro-benchmark: the modularity kernel (Eq. 3) and the
//! community-degree scatter — the per-iteration bookkeeping §5.5 optimizes
//! by pre-aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_core::modularity::{community_degrees, intra_community_weight, modularity};
use grappolo_graph::gen::{planted_partition, PlantedConfig};

fn bench_modularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("modularity");
    let (g, truth) = planted_partition(&PlantedConfig {
        num_vertices: 50_000,
        num_communities: 500,
        ..Default::default()
    });
    group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
    group.bench_with_input(BenchmarkId::new("full_q", "planted50k"), &g, |b, g| {
        b.iter(|| modularity(g, &truth));
    });
    group.bench_with_input(BenchmarkId::new("e_in_only", "planted50k"), &g, |b, g| {
        b.iter(|| intra_community_weight(g, &truth));
    });
    group.bench_with_input(BenchmarkId::new("community_degrees", "planted50k"), &g, |b, g| {
        b.iter(|| community_degrees(g, &truth));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modularity
}
criterion_main!(benches);
