//! Criterion micro-benchmark: the modularity kernel (Eq. 3), the
//! community-degree scatter, and the neighbor-gather kernels (flat stamped
//! scratch vs the sort-based reference) — the per-iteration building blocks
//! §5.5 optimizes by pre-aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_core::modularity::{
    community_degrees, intra_community_weight, modularity, NeighborScratch,
};
use grappolo_core::reference::gather_sorted;
use grappolo_graph::gen::{planted_partition, PlantedConfig};

fn bench_modularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("modularity");
    let (g, truth) = planted_partition(&PlantedConfig {
        num_vertices: 50_000,
        num_communities: 500,
        ..Default::default()
    });
    group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
    group.bench_with_input(BenchmarkId::new("full_q", "planted50k"), &g, |b, g| {
        b.iter(|| modularity(g, &truth));
    });
    group.bench_with_input(BenchmarkId::new("e_in_only", "planted50k"), &g, |b, g| {
        b.iter(|| intra_community_weight(g, &truth));
    });
    group.bench_with_input(
        BenchmarkId::new("community_degrees", "planted50k"),
        &g,
        |b, g| {
            b.iter(|| community_degrees(g, &truth));
        },
    );
    // One full pass of per-vertex neighbor-community aggregation, the inner
    // loop of the local-moving sweep: flat stamped scratch vs sorted merge.
    group.bench_with_input(BenchmarkId::new("gather_flat", "planted50k"), &g, |b, g| {
        let mut scratch = NeighborScratch::with_capacity(g.num_vertices());
        b.iter(|| {
            let mut acc = 0usize;
            for v in 0..g.num_vertices() as u32 {
                scratch.gather(g, &truth, v);
                acc += scratch.entries.len();
            }
            acc
        });
    });
    group.bench_with_input(
        BenchmarkId::new("gather_sorted", "planted50k"),
        &g,
        |b, g| {
            let mut entries = Vec::new();
            b.iter(|| {
                let mut acc = 0usize;
                for v in 0..g.num_vertices() as u32 {
                    gather_sorted(g, &truth, v, &mut entries);
                    acc += entries.len();
                }
                acc
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modularity
}
criterion_main!(benches);
