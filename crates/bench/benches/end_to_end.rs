//! Criterion macro-benchmark: end-to-end community detection under each of
//! the paper's four schemes on one community-rich input — the regression
//! guard for Table 2's relative ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grappolo_core::{detect_communities, Scheme};
use grappolo_graph::gen::{planted_partition, PlantedConfig};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    let (g, _) = planted_partition(&PlantedConfig {
        num_vertices: 10_000,
        num_communities: 100,
        ..Default::default()
    });
    for scheme in Scheme::ALL {
        let mut cfg = scheme.config();
        cfg.coloring_vertex_cutoff = 1_024;
        group.bench_with_input(BenchmarkId::new("scheme", scheme.name()), &cfg, |b, cfg| {
            b.iter(|| detect_communities(&g, cfg));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_end_to_end
}
criterion_main!(benches);
