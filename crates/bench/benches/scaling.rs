//! Strong-scaling benchmark for the resident work-stealing pool: the same
//! workload at 1/2/4/8/16 threads, so CI can track parallel efficiency per
//! thread count instead of a single speedup point.
//!
//! Two workloads on the cached ~1.15 M-edge RMAT graph (the acceptance-bar
//! input the ingest/sweep/active benches share):
//!
//! * `colored_active/rmat1150k/t<t>` — the colored active sweep run to
//!   convergence, the tentpole's target path (many small parallel regions
//!   per iteration: one per color batch, plus the rebuild-free bookkeeping
//!   passes — the shape that used to pay thread-spawn latency per region);
//! * `build/rmat1150k/t<t>` — `GraphBuilder::build` (chunked histogram →
//!   scatter → per-vertex merge), the bandwidth-bound ingest path.
//!
//! Before timing, the bench asserts the determinism contract the scheduler
//! must preserve: **bitwise-identical sweep assignments at every measured
//! thread count** (stolen execution order, fixed task tree, ordered
//! reduction).
//!
//! `cargo bench --bench scaling` emits `BENCH_scaling.json`. CI's
//! strong-scaling job computes per-thread-count efficiency
//! `t1_median / (t · t_median)` from it and enforces the ≥2.5×-at-8-threads
//! floor on runners with ≥8 hardware threads (the committed baseline comes
//! from whatever machine last regenerated it, so the gate is machine-aware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::{LouvainConfig, PhaseDriver, SweepMode};
use grappolo_graph::gen::{rmat, RmatConfig};
use grappolo_graph::{GraphBuilder, VertexId};

const THRESHOLD: f64 = 1e-6;
const MAX_ITERS: usize = 10_000;

/// The strong-scaling axis. 16 exceeds any expected CI core count on
/// purpose: oversubscription must degrade gracefully and stay bitwise
/// deterministic.
const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");

    let g = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    let batches =
        ColorBatches::from_coloring(&color_parallel(&g, &ParallelColoringConfig::default()));
    let edges: Vec<(VertexId, VertexId, f64)> = g.undirected_edges().collect();
    let n = g.num_vertices();

    // The colored active sweep, resolved once through the unified phase
    // entry point.
    let driver = PhaseDriver::from_config(
        &LouvainConfig {
            sweep_mode: SweepMode::Active,
            max_iterations_per_phase: MAX_ITERS,
            ..LouvainConfig::default()
        },
        THRESHOLD,
    );

    // Determinism gate: the stealing scheduler must yield bitwise-identical
    // assignments at every measured thread count before any timing matters.
    let reference = driver.run_colored(&g, &batches);
    for threads in THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let outcome = pool.install(|| driver.run_colored(&g, &batches));
        assert_eq!(
            outcome.assignment, reference.assignment,
            "colored active sweep diverged at {threads} threads"
        );
        assert!(
            outcome.final_modularity.to_bits() == reference.final_modularity.to_bits(),
            "modularity diverged at {threads} threads"
        );
    }

    for threads in THREADS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();

        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        group.bench_with_input(
            BenchmarkId::new("colored_active", format!("rmat1150k/t{threads}")),
            &(&g, &batches, &driver),
            |b, (g, bt, d)| {
                b.iter(|| pool.install(|| d.run_colored(g, bt)));
            },
        );

        group.throughput(Throughput::Elements(edges.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("build", format!("rmat1150k/t{threads}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    pool.install(|| {
                        GraphBuilder::with_capacity(n, edges.len())
                            .extend_edges(edges.iter().copied())
                            .build()
                            .unwrap()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
