//! Criterion benchmark for the ingest pipeline: edge list → CSR.
//!
//! `parallel/<t>` is `GraphBuilder::build` (chunked histogram → scatter →
//! per-vertex merge) under a `t`-thread pool; `serial` is the retained
//! sort-based reference path `build_serial`. The acceptance bar for the
//! parallel rewrite was ≥2× over serial on a ≥1M-edge generated graph at 8
//! threads, with bitwise-identical output (asserted here on every run).
//!
//! The ~1.2M-edge RMAT input is cached as a `.grb` file (see
//! `grappolo_bench::cache`), so only the first run pays generation.
//!
//! `cargo bench --bench build` emits `BENCH_build.json` for the perf gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_graph::gen::{rmat, RmatConfig};
use grappolo_graph::{GraphBuilder, VertexId};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");

    // ≥1M-edge skewed-degree input (RMAT scale 18), the acceptance-bar size.
    let g = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    let n = g.num_vertices();
    let edges: Vec<(VertexId, VertexId, f64)> = g.undirected_edges().collect();
    assert!(
        edges.len() >= 1_000_000,
        "input below the 1M-edge bar: {}",
        edges.len()
    );

    let build_input =
        || GraphBuilder::with_capacity(n, edges.len()).extend_edges(edges.iter().copied());

    // The two paths must agree bitwise before we bother timing them.
    let reference = build_input().build_serial().unwrap();
    let parallel = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap()
        .install(|| build_input().build().unwrap());
    assert!(
        reference.bitwise_eq(&parallel),
        "parallel build diverged from serial"
    );

    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_with_input(BenchmarkId::new("serial", edges.len()), &(), |b, ()| {
        b.iter(|| build_input().build_serial().unwrap());
    });
    for threads in [1usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("parallel", threads), &(), |b, ()| {
            b.iter(|| pool.install(|| build_input().build().unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build
}
criterion_main!(benches);
