//! Criterion micro-benchmark: parallel speculative coloring vs serial greedy
//! (§5.2 preprocessing cost), on uniform and skewed degree distributions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grappolo_coloring::{color_greedy_serial, color_parallel, ParallelColoringConfig};
use grappolo_graph::gen::{erdos_renyi, rmat, ErConfig, RmatConfig};
use grappolo_graph::CsrGraph;

fn inputs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        (
            "uniform",
            erdos_renyi(&ErConfig {
                num_vertices: 20_000,
                num_edges: 120_000,
                seed: 1,
            }),
        ),
        (
            "skewed",
            rmat(&RmatConfig {
                scale: 14,
                num_edges: 120_000,
                ..Default::default()
            }),
        ),
    ]
}

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring");
    let cfg = ParallelColoringConfig {
        serial_cutoff: 0,
        ..Default::default()
    };
    for (name, g) in inputs() {
        group.bench_with_input(BenchmarkId::new("parallel", name), &g, |b, g| {
            b.iter(|| color_parallel(g, &cfg));
        });
        group.bench_with_input(BenchmarkId::new("serial_greedy", name), &g, |b, g| {
            b.iter(|| color_greedy_serial(g));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coloring
}
criterion_main!(benches);
