//! Criterion benchmark for the **Leiden-style refinement pass**: the same
//! colored active-sweep phase run to convergence through [`PhaseDriver`],
//! with and without `refine = Leiden`, under the shipped geometric schedule
//! (the exact configuration `detect --sweep active --schedule geometric
//! --refine leiden` resolves to). The delta is the whole cost of
//! refinement: the per-community connected-component split, the singleton
//! absorption sweeps, and the bounded polish ⇄ re-split rounds.
//!
//! The acceptance bar is **refined ≤ 1.35× unrefined** end-to-end on the
//! cached ~1.15 M-edge RMAT graph (the ingest/sweep/active benches' shared
//! cache entry); CI recomputes the ratio from the committed
//! `BENCH_refine.json` in the perf-gate job.
//!
//! `cargo bench --bench refine` emits `BENCH_refine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::{geometric_for, LouvainConfig, PhaseDriver, RefineMode, SweepMode};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;

/// Convergence threshold matching the driver's uncolored default.
const THRESHOLD: f64 = 1e-6;

/// Safety cap well above any observed convergence length.
const MAX_ITERS: usize = 10_000;

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");

    let bench_input = |group: &mut criterion::BenchmarkGroup<'_>, label: &str, g: &CsrGraph| {
        let batches =
            ColorBatches::from_coloring(&color_parallel(g, &ParallelColoringConfig::default()));
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        for (id, refine) in [
            ("colored_active_plain", RefineMode::None),
            ("colored_active_refined", RefineMode::Leiden),
        ] {
            let config = LouvainConfig::builder()
                .sweep(SweepMode::Active)
                .schedule(geometric_for(g.total_weight()))
                .refine(refine)
                .build()
                .expect("valid refine bench config");
            let mut config = config;
            config.max_iterations_per_phase = MAX_ITERS;
            let driver = PhaseDriver::from_config(&config, THRESHOLD);
            group.bench_with_input(
                BenchmarkId::new(id, label),
                &(g, &batches, &driver),
                |b, (g, bt, d)| {
                    b.iter(|| d.run_colored(g, bt));
                },
            );
        }
    };

    let planted = cached_graph("sweep_planted_100000", || {
        planted_partition(&PlantedConfig {
            num_vertices: 100_000,
            num_communities: 1_000,
            ..Default::default()
        })
        .0
    });
    bench_input(&mut group, "planted100k", &planted);

    // The acceptance-bar input: the same cached ~1.15 M-edge RMAT graph the
    // ingest, sweep, and active benches share.
    let big = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    bench_input(&mut group, "rmat1150k", &big);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_refine
}
criterion_main!(benches);
