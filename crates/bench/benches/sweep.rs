//! Criterion benchmark for the local-moving sweep (Algorithm 1 lines 9–14)
//! — the kernel whose per-iteration complexity §5.6 analyzes as
//! O((M+n·k̄)/p).
//!
//! Unordered: `flat` is the production path (generation-stamped O(deg)
//! gathers plus incremental `Σ e_in` / `Σ a_C²` accounting);
//! `sort_baseline` is the historical kernel it replaced (O(deg·log deg)
//! sorted gathers, O(n) community-degree rebuild and O(m) modularity rescan
//! per iteration). Both make identical decisions (see
//! `tests/properties.rs`), so the ratio is a pure kernel speedup. The PR 1
//! acceptance bar was flat ≥ 1.5× per iteration on the 100 K planted graph.
//!
//! Colored (PR 3): `colored_incremental` is the deterministic barrier-commit
//! sweep with incremental tracker accounting; `colored_rescan` is the
//! retained reference that recomputes modularity by full O(m) rescan every
//! iteration. Decisions are bitwise identical, so the ratio isolates the
//! accounting cost. The PR 3 acceptance bar is incremental ≥ 1.3× per
//! iteration on the cached 1.15 M-edge RMAT graph (the ingest bench's
//! input). Coloring is precomputed outside the timed region — the sweep,
//! not the coloring, is under test.
//!
//! `cargo bench --bench sweep` emits `BENCH_sweep.json` for the perf
//! trajectory.
//!
//! This bench deliberately measures the *historical* fixed-threshold entry
//! points (now deprecated wrappers in `grappolo_core::reference`) against
//! their retained baselines — it tracks kernel ratios across the PR
//! sequence, so the call shapes must stay exactly what the earlier PRs
//! measured. Production callers go through `grappolo_core::PhaseDriver`;
//! see the `active` bench.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_coloring::{color_parallel, ColorBatches, ParallelColoringConfig};
use grappolo_core::reference::{
    parallel_phase_colored, parallel_phase_colored_rescan, parallel_phase_unordered,
    parallel_phase_unordered_sortbased,
};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::CsrGraph;

/// Fixed iteration budget so both kernels do identical sweep work per
/// sample (they converge identically; see the equivalence property tests).
const ITERS: usize = 4;

/// Iteration budget for the colored pair (both variants sustain well past
/// this many moving iterations on these inputs, so every sample does
/// identical sweep work).
const COLORED_ITERS: usize = 4;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for &n in &[20_000usize, 100_000] {
        // The planted input is deterministic, so it lives in the .grb cache
        // and only the first run pays generation + CSR construction.
        let g = cached_graph(&format!("sweep_planted_{n}"), || {
            planted_partition(&PlantedConfig {
                num_vertices: n,
                num_communities: n / 100,
                ..Default::default()
            })
            .0
        });
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        group.bench_with_input(BenchmarkId::new("flat", n), &g, |b, g| {
            b.iter(|| parallel_phase_unordered(g, 1e-9, ITERS, 1.0));
        });
        group.bench_with_input(BenchmarkId::new("sort_baseline", n), &g, |b, g| {
            b.iter(|| parallel_phase_unordered_sortbased(g, 1e-9, ITERS, 1.0));
        });
    }
    group.finish();
}

fn bench_colored(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");

    let bench_pair = |group: &mut criterion::BenchmarkGroup<'_>,
                      label: &str,
                      g: &CsrGraph,
                      batches: &ColorBatches| {
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        group.bench_with_input(
            BenchmarkId::new("colored_incremental", label),
            &(g, batches),
            |b, (g, batches)| {
                b.iter(|| parallel_phase_colored(g, batches, 1e-9, COLORED_ITERS, 1.0));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("colored_rescan", label),
            &(g, batches),
            |b, (g, batches)| {
                b.iter(|| parallel_phase_colored_rescan(g, batches, 1e-9, COLORED_ITERS, 1.0));
            },
        );
    };

    let planted = cached_graph("sweep_planted_100000", || {
        planted_partition(&PlantedConfig {
            num_vertices: 100_000,
            num_communities: 1_000,
            ..Default::default()
        })
        .0
    });
    bench_pair(&mut group, "planted100k", &planted, &batches_of(&planted));

    // The acceptance-bar input: the same cached ~1.15 M-edge RMAT graph the
    // ingest bench builds (shared .grb cache entry).
    let big = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    let big_batches = batches_of(&big);
    bench_pair(&mut group, "rmat1150k", &big, &big_batches);

    // The accounting delta in isolation on the same input (noise-robust
    // complement to the whole-phase pair, whose O(m) decision pass is
    // common to both variants): one full O(m)+O(n) modularity rescan —
    // what the historical colored sweep paid per iteration — vs one
    // iteration's worth of incremental accounting (committing a 4 096-move
    // independent batch through the tracker, then the O(1) modularity
    // read).
    {
        use grappolo_core::modularity::{
            community_degrees, community_sizes, IndependentMove, ModularityTracker, NeighborScratch,
        };
        let assignment: Vec<u32> = (0..big.num_vertices() as u32).collect();
        let a0 = community_degrees(&big, &assignment);
        let sizes0 = community_sizes(&assignment);
        let tracker0 = ModularityTracker::new(&big, &assignment, &a0, 1.0);
        group.throughput(Throughput::Elements(big.num_adjacency_entries() as u64));
        group.bench_with_input(
            BenchmarkId::new("accounting_rescan", "rmat1150k"),
            &big,
            |b, g| {
                b.iter(|| {
                    let a = community_degrees(g, &assignment);
                    ModularityTracker::new(g, &assignment, &a, 1.0).modularity()
                });
            },
        );
        // 4 096 movers from the largest color class (a genuine independent
        // set), each joining its first neighbor's community — a realistic
        // early-iteration move volume on this input.
        let class = big_batches
            .as_classes()
            .iter()
            .max_by_key(|c| c.len())
            .cloned()
            .expect("non-empty coloring");
        let mut scratch = NeighborScratch::with_capacity(big.num_vertices());
        let stride = (class.len() / 4_096).max(1);
        let moves: Vec<IndependentMove> = class
            .iter()
            .step_by(stride)
            .take(4_096)
            .filter_map(|&v| {
                let to = *big.neighbor_ids(v).first()?;
                if to == v {
                    return None;
                }
                scratch.gather(&big, &assignment, v);
                Some(IndependentMove {
                    k: big.weighted_degree(v),
                    e_src: scratch.weight_to(v),
                    e_tgt: scratch.weight_to(to),
                    from: v,
                    to,
                })
            })
            .collect();
        // Apply + undo: the mirrored batch restores the tracker bitwise
        // (see the round-trip edge-case test), so each sample times two
        // O(#moves) commits with no state-copy scaffolding in the loop.
        let undo: Vec<IndependentMove> = moves
            .iter()
            .map(|mv| IndependentMove {
                k: mv.k,
                e_src: mv.e_tgt,
                e_tgt: mv.e_src,
                from: mv.to,
                to: mv.from,
            })
            .collect();
        let mut tracker = tracker0.clone();
        let mut a = a0.clone();
        let mut sizes = sizes0.clone();
        group.bench_with_input(
            BenchmarkId::new("accounting_incremental", "rmat1150k"),
            &big,
            |b, _g| {
                b.iter(|| {
                    tracker.apply_independent_batch(&moves, &mut a, &mut sizes);
                    tracker.apply_independent_batch(&undo, &mut a, &mut sizes);
                    tracker.modularity()
                });
            },
        );
    }

    group.finish();
}

/// Coloring for `g`, grouped into stable batches.
fn batches_of(g: &CsrGraph) -> ColorBatches {
    ColorBatches::from_coloring(&color_parallel(g, &ParallelColoringConfig::default()))
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep, bench_colored
}
criterion_main!(benches);
