//! Criterion benchmark for the local-moving sweep (Algorithm 1 lines 9–14)
//! — the kernel whose per-iteration complexity §5.6 analyzes as
//! O((M+n·k̄)/p).
//!
//! `flat` is the production path: generation-stamped O(deg) gathers plus
//! incremental `Σ e_in` / `Σ a_C²` accounting. `sort_baseline` is the
//! historical kernel it replaced (O(deg·log deg) sorted gathers, O(n)
//! community-degree rebuild and O(m) modularity rescan per iteration); both
//! make identical decisions (see `tests/properties.rs`), so the ratio is a
//! pure kernel speedup. The acceptance bar for the rewrite was flat ≥ 1.5×
//! faster per iteration on the 100 K-vertex planted graph.
//!
//! `cargo bench --bench sweep` emits `BENCH_sweep.json` for the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cached_graph;
use grappolo_core::parallel::parallel_phase_unordered;
use grappolo_core::reference::parallel_phase_unordered_sortbased;
use grappolo_graph::gen::{planted_partition, PlantedConfig};

/// Fixed iteration budget so both kernels do identical sweep work per
/// sample (they converge identically; see the equivalence property test).
const ITERS: usize = 4;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for &n in &[20_000usize, 100_000] {
        // The planted input is deterministic, so it lives in the .grb cache
        // and only the first run pays generation + CSR construction.
        let g = cached_graph(&format!("sweep_planted_{n}"), || {
            planted_partition(&PlantedConfig {
                num_vertices: n,
                num_communities: n / 100,
                ..Default::default()
            })
            .0
        });
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        group.bench_with_input(BenchmarkId::new("flat", n), &g, |b, g| {
            b.iter(|| parallel_phase_unordered(g, 1e-9, ITERS, 1.0));
        });
        group.bench_with_input(BenchmarkId::new("sort_baseline", n), &g, |b, g| {
            b.iter(|| parallel_phase_unordered_sortbased(g, 1e-9, ITERS, 1.0));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
