//! Criterion micro-benchmark: one parallel Louvain iteration (the unordered
//! sweep of Algorithm 1 lines 9–14) on a fixed planted graph — the kernel
//! whose per-iteration complexity §5.6 analyzes as O((M+n·k̄)/p).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_core::parallel::parallel_phase_unordered;
use grappolo_graph::gen::{planted_partition, PlantedConfig};

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep");
    for &n in &[5_000usize, 20_000] {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: n,
            num_communities: n / 100,
            ..Default::default()
        });
        group.throughput(Throughput::Elements(g.num_adjacency_entries() as u64));
        group.bench_with_input(BenchmarkId::new("one_iteration", n), &g, |b, g| {
            // max_iterations = 1 isolates a single sweep + modularity pass.
            b.iter(|| parallel_phase_unordered(g, 1e-6, 1, 1.0));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
