//! Criterion micro-benchmark: the inter-phase graph rebuild (§5.5) —
//! lock-map (the paper's strategy) vs sort-based aggregation, on a
//! high-modularity partition (mostly intra edges, MG2-like) and a
//! low-modularity one (mostly inter edges, NLPKKT-like), reproducing the
//! §6.2.1 observation that inter-community edges make rebuild lock-heavy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grappolo_core::rebuild::rebuild;
use grappolo_core::reference::{rebuild_stamp_flat_assembly, rebuild_stamp_rows_reference};
use grappolo_core::{RebuildStrategy, RenumberStrategy};
use grappolo_graph::gen::{planted_partition, PlantedConfig};

fn bench_rebuild(c: &mut Criterion) {
    let mut group = c.benchmark_group("rebuild");
    let (g, truth) = planted_partition(&PlantedConfig {
        num_vertices: 20_000,
        num_communities: 200,
        ..Default::default()
    });
    // High-modularity partition: the planted truth.
    // Low-modularity partition: round-robin over 200 labels.
    let scattered: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 200).collect();

    for (partition_name, assignment) in [("intra_heavy", &truth), ("inter_heavy", &scattered)] {
        for (strat_name, strat) in [
            ("stamp", RebuildStrategy::StampAggregate),
            ("lockmap", RebuildStrategy::LockMap),
            ("sort", RebuildStrategy::SortAggregate),
        ] {
            group.bench_with_input(
                BenchmarkId::new(strat_name, partition_name),
                &(&g, assignment),
                |b, (g, a)| {
                    b.iter(|| rebuild(g, a, strat, RenumberStrategy::Serial));
                },
            );
        }
        // The rebuild-assembly pair: flat two-pass count + scatter into
        // preallocated CSR arrays against the rows-based assembly (per-row
        // Vecs + rows_to_csr copy). Both arms are forced explicitly — the
        // production StampAggregate path dispatches between them on row
        // count. Outputs are bitwise identical; only the assembly differs.
        group.bench_with_input(
            BenchmarkId::new("assembly_flat", partition_name),
            &(&g, assignment),
            |b, (g, a)| {
                b.iter(|| rebuild_stamp_flat_assembly(g, a));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("assembly_rows", partition_name),
            &(&g, assignment),
            |b, (g, a)| {
                b.iter(|| rebuild_stamp_rows_reference(g, a));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rebuild
}
criterion_main!(benches);
