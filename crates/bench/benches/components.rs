//! Criterion benchmark: component-split detection vs the single driver, and
//! sectioned `.grb` v2 parallel load vs the legacy v1 decoder.
//!
//! Acceptance bars (CI gates both ratios from this file's JSON):
//! * `components/split/blocks90k` must be ≥1.5× faster than
//!   `components/single_driver/blocks90k` — on a many-component input the
//!   single driver re-sweeps every vertex until the *global* stop fires,
//!   while the splitter runs each component only to its own convergence.
//! * `grb_load/v2/rmat1150k` must be ≥1.5× faster than
//!   `grb_load/v1/rmat1150k` on the shared cached ~1.15 M-edge RMAT input —
//!   the v2 chunk table lets decode and structural validation run across
//!   the pool instead of single-shot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grappolo_bench::cache::cached_graph;
use grappolo_core::{detect_communities, Scheme};
use grappolo_graph::gen::{planted_partition, rmat, PlantedConfig, RmatConfig};
use grappolo_graph::{io, CsrGraph, GraphBuilder};
use std::path::PathBuf;

/// One dominant planted block plus many small ones in ascending contiguous
/// vertex ranges — the component-splitter's favorable (and realistic:
/// web-crawl and RGG inputs decompose the same way) workload shape.
fn planted_blocks(big: usize, small: usize, num_small: usize, seed: u64) -> CsrGraph {
    let n = big + small * num_small;
    let mut b = GraphBuilder::new(n);
    let mut base = 0u32;
    for (i, size) in std::iter::once(big)
        .chain(std::iter::repeat_n(small, num_small))
        .enumerate()
    {
        let (block, _) = planted_partition(&PlantedConfig {
            num_vertices: size,
            num_communities: (size / 100).max(2),
            seed: seed.wrapping_add(i as u64),
            ..Default::default()
        });
        for (u, v, w) in block.undirected_edges() {
            b = b.add_edge(base + u, base + v, w);
        }
        base += size as u32;
    }
    b.build().expect("block edges are in range")
}

fn bench_split_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");

    // 15 K-vertex giant + 300 × 250-vertex small components (n = 90 K). The
    // giant needs many sweeps to converge; the smalls settle in a few. The
    // single driver pays the giant's iteration count over all 90 K vertices,
    // the splitter only over the giant's 15 K — that iteration disparity is
    // the serial algorithmic win the gate measures (parallel dispatch of the
    // component runs comes on top on multi-core hosts).
    let g = cached_graph("planted_blocks_b15k_s250_x300_seed7", || {
        planted_blocks(15_000, 250, 300, 7)
    });
    group.throughput(Throughput::Elements(g.num_edges() as u64));

    let mut config = Scheme::Baseline.config();
    group.bench_with_input(
        BenchmarkId::new("single_driver", "blocks90k"),
        &g,
        |b, g| {
            b.iter(|| detect_communities(g, &config));
        },
    );
    config.split_components = true;
    group.bench_with_input(BenchmarkId::new("split", "blocks90k"), &g, |b, g| {
        b.iter(|| detect_communities(g, &config));
    });

    group.finish();
}

/// Writes `g` under both on-disk layouts and returns the two paths
/// (warm-read once so the page cache is equally primed for both).
fn write_both_layouts(g: &CsrGraph) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join("grappolo-bench-grb");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1 = dir.join("rmat1150k_v1.grb");
    let v2 = dir.join("rmat1150k_v2.grb");
    io::write_grb(g, std::fs::File::create(&v1).expect("create v1")).expect("write v1");
    io::write_grb_v2(g, std::fs::File::create(&v2).expect("create v2")).expect("write v2");
    assert!(io::load_binary(&v1).expect("warm v1").bitwise_eq(g));
    assert!(io::load_binary(&v2).expect("warm v2").bitwise_eq(g));
    (v1, v2)
}

fn bench_grb_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("grb_load");

    // The shared cached ~1.15 M-edge RMAT input (same key as the ingest,
    // sweep, active, scaling, and dynamic benches).
    let g = cached_graph("rmat_s18_m1200k_seed1", || {
        rmat(&RmatConfig {
            scale: 18,
            num_edges: 1_200_000,
            seed: 1,
            ..Default::default()
        })
    });
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    let (v1, v2) = write_both_layouts(&g);

    group.bench_with_input(BenchmarkId::new("v1", "rmat1150k"), &v1, |b, path| {
        b.iter(|| io::load_binary(path).expect("v1 load"));
    });
    group.bench_with_input(BenchmarkId::new("v2", "rmat1150k"), &v2, |b, path| {
        b.iter(|| io::load_binary(path).expect("v2 load"));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_split_detect, bench_grb_load
}
criterion_main!(benches);
