//! Command implementations.

use crate::args::{Command, USAGE};
use crate::error::CliError;
use grappolo_coloring::{balance_colors, color_parallel, ColoringStats, ParallelColoringConfig};
use grappolo_core::{
    detect_communities, geometric_for, update_communities, ColoredAccounting, LouvainConfig,
    LouvainConfigBuilder, RefineMode, ScheduleMode, ScheduleSpec, Scheme, SweepMode,
};
use grappolo_graph::gen::paper_suite::PaperInput;
use grappolo_graph::gen::{
    erdos_renyi, planted_partition, rmat, ErConfig, PlantedConfig, RmatConfig,
};
use grappolo_graph::{io, CsrGraph, EdgeDelta, GraphStats};
use grappolo_metrics::{connectivity_report, normalized_mutual_information, pairwise_comparison};
use grappolo_serve::{signal, BackoffPolicy, FaultPlan, ServeConfig, ServeError, Server};
use std::path::Path;
use std::time::{Duration, Instant};

/// Executes a parsed command.
pub fn execute(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Generate {
            input,
            scale,
            seed,
            output,
        } => generate(&input, scale, seed, &output),
        Command::Stats { path } => stats(&path),
        Command::Components { path } => components(&path),
        Command::Detect {
            path,
            scheme,
            threads,
            gamma,
            assignments,
            trace,
            accounting,
            sweep,
            schedule,
            vertex_epsilon,
            refine,
            split_components,
        } => detect(
            &path,
            scheme,
            threads,
            gamma,
            assignments.as_deref(),
            trace.as_deref(),
            accounting,
            sweep,
            schedule,
            vertex_epsilon,
            refine,
            split_components,
        ),
        Command::Audit { graph, assignments } => audit(&graph, &assignments),
        Command::Update {
            graph,
            assignments,
            batch,
            assignments_out,
            graph_out,
            threads,
            gamma,
            fallback,
        } => update(
            &graph,
            &assignments,
            &batch,
            assignments_out.as_deref(),
            graph_out.as_deref(),
            threads,
            gamma,
            fallback,
        ),
        Command::Serve {
            graph,
            addr,
            server_threads,
            queue_depth,
            deadline_ms,
            retry,
            backoff_ms,
            threads,
            gamma,
            faults,
        } => serve(
            &graph,
            addr,
            server_threads,
            queue_depth,
            deadline_ms,
            retry,
            backoff_ms,
            threads,
            gamma,
            faults.as_deref(),
        ),
        Command::Query {
            addr,
            script,
            command,
        } => query(&addr, script.as_deref(), command.as_deref()),
        Command::Color { path, balanced } => color(&path, balanced),
        Command::Compare { a, b } => compare(&a, &b),
        Command::Convert { input, output } => convert(&input, &output),
    }
}

fn load(path: &Path) -> Result<CsrGraph, CliError> {
    io::load_path(path)
        .map_err(|e| CliError::from_io(format_args!("loading {}", path.display()), e))
}

/// A disconnected union of planted-partition blocks plus trailing isolated
/// vertices — the component-splitter workload (`blocks` family). Blocks
/// occupy ascending contiguous vertex ranges, which makes `--split-components`
/// output *byte*-identical to the unsplit run (component-id order coincides
/// with the unsplit label order), not merely partition-equal.
fn planted_blocks(n: usize, seed: u64) -> CsrGraph {
    // One dominant block plus many small ones: the shape where per-component
    // dispatch beats a single driver (small converged components drop out of
    // the schedule instead of being re-swept every iteration).
    let isolated = (n / 200).min(64);
    let body = n - isolated;
    let big = body / 4;
    let small_total = body - big;
    let num_small = (small_total / 400).max(3);
    let mut sizes = vec![big];
    let base_small = small_total / num_small;
    let mut rem = small_total - base_small * num_small;
    for _ in 0..num_small {
        let extra = usize::from(rem > 0);
        rem -= extra;
        sizes.push(base_small + extra);
    }
    let mut b = grappolo_graph::GraphBuilder::new(n);
    let mut base = 0u32;
    for (i, &size) in sizes.iter().enumerate() {
        let (block, _) = planted_partition(&PlantedConfig {
            num_vertices: size,
            num_communities: (size / 100).max(2),
            seed: seed.wrapping_add(i as u64),
            ..Default::default()
        });
        for (u, v, w) in block.undirected_edges() {
            b = b.add_edge(base + u, base + v, w);
        }
        base += size as u32;
    }
    b.build().expect("planted_blocks edges are in range")
}

/// Synthetic base-family generation for ids outside the paper suite — the
/// graph classes the differential tests and the CI scenario matrix sweep:
/// ER (no community structure, negative control), planted partition
/// (community-rich), RMAT (skewed degrees), planted blocks (disconnected
/// multi-component). `scale` multiplies the base sizes (n = 40 K at
/// scale 1.0).
fn generate_family(input: &str, scale: f64, seed: u64) -> Option<(&'static str, CsrGraph)> {
    let n = ((40_000.0 * scale) as usize).max(16);
    match input {
        "blocks" => Some(("planted blocks", planted_blocks(n.max(64), seed))),
        "er" => Some((
            "Erdős–Rényi",
            erdos_renyi(&ErConfig {
                num_vertices: n,
                num_edges: n * 5,
                seed,
            }),
        )),
        "planted" => Some((
            "planted partition",
            planted_partition(&PlantedConfig {
                num_vertices: n,
                num_communities: (n / 100).max(2),
                seed,
                ..Default::default()
            })
            .0,
        )),
        "rmat" => Some((
            "RMAT",
            rmat(&RmatConfig {
                scale: (n as f64).log2().ceil().max(4.0) as u32,
                num_edges: n * 5,
                seed,
                ..Default::default()
            }),
        )),
        _ => None,
    }
}

fn generate(input: &str, scale: f64, seed: u64, output: &Path) -> Result<(), CliError> {
    let t = Instant::now();
    let (name, g) = if let Some((name, g)) = generate_family(input, scale, seed) {
        (name, g)
    } else {
        let proxy = PaperInput::from_id(input).ok_or_else(|| {
            CliError::invalid(format!(
                "unknown input id `{input}`; valid: er, planted, rmat, blocks, {}",
                PaperInput::ALL.map(|p| p.id()).join(", ")
            ))
        })?;
        (proxy.reference().name, proxy.generate(scale, seed))
    };
    io::save_path(&g, output)
        .map_err(|e| CliError::from_io(format_args!("writing {}", output.display()), e))?;
    println!(
        "generated {} proxy: n={} M={} → {} in {:.2?}",
        name,
        g.num_vertices(),
        g.num_edges(),
        output.display(),
        t.elapsed()
    );
    Ok(())
}

fn stats(path: &Path) -> Result<(), CliError> {
    let g = load(path)?;
    let s = GraphStats::compute(&g);
    println!("graph          {}", path.display());
    println!("vertices       {}", s.num_vertices);
    println!("edges          {}", s.num_edges);
    println!("total weight   {}", s.total_weight);
    println!("max degree     {}", s.max_degree);
    println!("avg degree     {:.4}", s.avg_degree);
    println!("degree RSD     {:.4}", s.degree_rsd);
    println!("single-degree  {}", s.num_single_degree);
    println!("isolated       {}", s.num_isolated);
    Ok(())
}

/// The `components` subcommand: the weakly-connected-component profile of a
/// stored graph — the numbers that decide whether `--split-components` is
/// worth switching on.
fn components(path: &Path) -> Result<(), CliError> {
    let g = load(path)?;
    let t = Instant::now();
    let labeling = grappolo_graph::connected_components(&g);
    let elapsed = t.elapsed();
    let mut sizes: Vec<usize> = labeling.sizes().to_vec();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let top: Vec<String> = sizes.iter().take(5).map(|s| s.to_string()).collect();
    println!("graph          {}", path.display());
    println!("vertices       {}", g.num_vertices());
    println!("edges          {}", g.num_edges());
    println!("components     {}", labeling.num_components());
    match labeling.largest() {
        Some((id, size)) => {
            let frac = if g.num_vertices() > 0 {
                100.0 * size as f64 / g.num_vertices() as f64
            } else {
                0.0
            };
            println!("largest        {size} vertices ({frac:.2}%, component {id})");
        }
        None => println!("largest        -"),
    }
    println!("isolated       {}", labeling.num_isolated());
    println!("top sizes      {}", top.join(" "));
    println!("label time     {elapsed:.2?}");
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn detect(
    path: &Path,
    scheme: Scheme,
    threads: Option<usize>,
    gamma: f64,
    assignments: Option<&Path>,
    trace: Option<&Path>,
    accounting: ColoredAccounting,
    sweep: SweepMode,
    schedule: ScheduleMode,
    vertex_epsilon: f64,
    refine: RefineMode,
    split_components: bool,
) -> Result<(), CliError> {
    let g = load(path)?;
    // Per-vertex gains live on the 1/m scale; the geometric gate derives
    // its parameters from this graph's total weight.
    let schedule_spec = match schedule {
        ScheduleMode::Fixed => ScheduleSpec::Fixed,
        ScheduleMode::Geometric => geometric_for(g.total_weight()),
    };
    // The typed builder surfaces bad parameter combinations (a negative γ,
    // rescan × scheduled, rescan × refine, …) as a clean CLI error instead
    // of the library's panic.
    let mut config = LouvainConfigBuilder::from_base(scheme.config())
        .resolution(gamma)
        .accounting(accounting)
        .sweep(sweep)
        .vertex_epsilon(vertex_epsilon)
        .schedule(schedule_spec)
        .refine(refine)
        .threads(threads)
        .build()
        .map_err(CliError::invalid)?;
    // Scale the paper's 100 K coloring cutoff down for small inputs so the
    // colored scheme stays meaningful on laptop-sized graphs.
    config.coloring_vertex_cutoff = config
        .coloring_vertex_cutoff
        .min(g.num_vertices() / 8)
        .max(64);
    config.split_components = split_components;

    let t = Instant::now();
    let result = detect_communities(&g, &config);
    println!(
        "{}: {} communities, Q = {:.6}, {} iterations / {} phases, {:.2?}",
        scheme.name(),
        result.num_communities,
        result.modularity,
        result.trace.total_iterations(),
        result.trace.num_phases(),
        t.elapsed()
    );

    if let Some(out) = assignments {
        let mut text = String::with_capacity(result.assignment.len() * 8);
        for (v, c) in result.assignment.iter().enumerate() {
            text.push_str(&format!("{v} {c}\n"));
        }
        io::write_bytes_atomic(out, text.as_bytes())
            .map_err(|e| CliError::from_io(format_args!("writing {}", out.display()), e))?;
        println!("assignments → {}", out.display());
    }
    if let Some(out) = trace {
        let json = serde_json::to_string_pretty(&result.trace)
            .map_err(|e| CliError::runtime(format!("serializing trace: {e}")))?;
        io::write_bytes_atomic(out, json.as_bytes())
            .map_err(|e| CliError::from_io(format_args!("writing {}", out.display()), e))?;
        println!("trace → {}", out.display());
    }
    if refine == RefineMode::Leiden {
        let report = connectivity_report(&g, &result.assignment);
        println!(
            "refined: {} internally disconnected of {} communities ({:.2}%), \
             min internal conductance {:.4}",
            report.disconnected,
            report.num_communities,
            100.0 * report.disconnected_fraction,
            report.min_internal_conductance,
        );
    }
    Ok(())
}

/// The `audit` subcommand: the connectivity report for a stored
/// `(graph, assignment)` pair, on the whole assignment.
///
/// Exit codes separate the two failure classes: "could not run" (3/4:
/// missing or malformed inputs) from "ran and found internally
/// disconnected communities" (5) — so CI gates can fail on findings
/// without mistaking them for environment breakage.
fn audit(graph: &Path, assignments: &Path) -> Result<(), CliError> {
    let g = load(graph)?;
    let assignment = read_assignments(assignments)?;
    if assignment.len() > g.num_vertices() {
        return Err(CliError::invalid(format!(
            "assignment has {} entries, graph has {} vertices",
            assignment.len(),
            g.num_vertices()
        )));
    }
    // Files may omit trailing isolated vertices; pad them as singletons
    // with fresh labels so the audit covers the whole graph, and say so.
    let mut assignment = assignment;
    let padded = g.num_vertices() - assignment.len();
    let mut next = assignment.iter().copied().max().map_or(0, |c| c + 1);
    while assignment.len() < g.num_vertices() {
        assignment.push(next);
        next += 1;
    }
    if padded > 0 {
        println!("note: padded {padded} trailing vertices as singletons");
    }
    let t = Instant::now();
    let report = connectivity_report(&g, &assignment);
    println!("graph                     {}", graph.display());
    println!("assignment                {}", assignments.display());
    println!("communities               {}", report.num_communities);
    println!("internally disconnected   {}", report.disconnected);
    println!(
        "disconnected fraction     {:.6}",
        report.disconnected_fraction
    );
    println!(
        "min internal conductance  {:.6}{}",
        report.min_internal_conductance,
        match report.worst_community {
            Some(c) => format!("  (community {c})"),
            None => String::new(),
        }
    );
    println!("audit time                {:.2?}", t.elapsed());
    if report.disconnected > 0 {
        return Err(CliError::audit_finding(format!(
            "audit: {} of {} communities are internally disconnected",
            report.disconnected, report.num_communities
        )));
    }
    Ok(())
}

/// Parses an edge-delta batch file: one operation per line, `#` comments.
///
/// ```text
/// + u v [w]   insert (weight defaults to 1; duplicates of an existing
///             edge merge by summation, like builder input)
/// - u v       delete an existing edge
/// = u v w     set the weight of an existing edge
/// ```
///
/// Errors carry `file:line:` prefixes so a bad batch points at itself.
/// (Parsing itself lives in [`grappolo_graph::parse_edge_batch`], shared
/// with the serve daemon's `update` path.)
fn read_edge_batch(path: &Path) -> Result<Vec<EdgeDelta>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("reading {}: {e}", path.display())))?;
    grappolo_graph::parse_edge_batch(&text)
        .map_err(|e| CliError::invalid(format!("{}:{}: {}", path.display(), e.line, e.message)))
}

/// The `update` subcommand: apply a batch of edge deltas to a stored
/// graph and incrementally re-converge the stored assignment.
#[allow(clippy::too_many_arguments)]
fn update(
    graph: &Path,
    assignments: &Path,
    batch: &Path,
    assignments_out: Option<&Path>,
    graph_out: Option<&Path>,
    threads: Option<usize>,
    gamma: f64,
    fallback: f64,
) -> Result<(), CliError> {
    let g = load(graph)?;
    let assignment = read_assignments(assignments)?;
    if assignment.len() != g.num_vertices() {
        return Err(CliError::invalid(format!(
            "assignment has {} entries, graph has {} vertices",
            assignment.len(),
            g.num_vertices()
        )));
    }
    let deltas = read_edge_batch(batch)?;
    let config = LouvainConfig::builder()
        .sweep(SweepMode::Active)
        .resolution(gamma)
        .threads(threads)
        .dynamic_fallback(fallback)
        .build()
        .map_err(CliError::invalid)?;
    let t = Instant::now();
    let outcome = update_communities(&g, &assignment, None, &deltas, &config)?;
    println!(
        "update: {} changed edges, {} seed vertices → {} communities, Q = {:.6}, \
         {} iterations{}, {:.2?}",
        outcome.changed_edges,
        outcome.seed_vertices,
        outcome.num_communities,
        outcome.modularity,
        outcome.iterations,
        if outcome.fell_back {
            " (dense batch; fell back to full detection)"
        } else {
            ""
        },
        t.elapsed()
    );
    if let Some(out) = assignments_out {
        let mut text = String::with_capacity(outcome.assignment.len() * 8);
        for (v, c) in outcome.assignment.iter().enumerate() {
            text.push_str(&format!("{v} {c}\n"));
        }
        io::write_bytes_atomic(out, text.as_bytes())
            .map_err(|e| CliError::from_io(format_args!("writing {}", out.display()), e))?;
        println!("assignments → {}", out.display());
    }
    if let Some(out) = graph_out {
        io::save_path(&outcome.graph, out)
            .map_err(|e| CliError::from_io(format_args!("writing {}", out.display()), e))?;
        println!("graph → {}", out.display());
    }
    Ok(())
}

fn color(path: &Path, balanced: bool) -> Result<(), CliError> {
    let g = load(path)?;
    let t = Instant::now();
    let mut coloring = color_parallel(&g, &ParallelColoringConfig::default());
    let moved = if balanced {
        balance_colors(&g, &mut coloring, 0.1)
    } else {
        0
    };
    let s = ColoringStats::compute(&coloring);
    println!(
        "{} colors in {:.2?}; class sizes: min {} max {} RSD {:.3}{}",
        s.num_colors,
        t.elapsed(),
        s.min_class,
        s.max_class,
        s.size_rsd,
        if balanced {
            format!(" (balanced; {moved} vertices moved)")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Reads a `vertex community` assignment file into a dense vector.
///
/// The file must name every vertex `0..n` exactly once (`n` is one past
/// the largest id that appears). A duplicate vertex line or a hole in
/// the id space is a formatting error reported with line numbers, not
/// something to paper over with a sentinel label.
pub fn read_assignments(path: &Path) -> Result<Vec<u32>, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("reading {}: {e}", path.display())))?;
    let invalid = CliError::invalid;
    let mut pairs: Vec<(usize, u32, usize)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let v: usize = it.next().unwrap().parse().map_err(|e| {
            invalid(format!(
                "{}:{}: bad vertex: {e}",
                path.display(),
                lineno + 1
            ))
        })?;
        let c: u32 = it
            .next()
            .ok_or_else(|| {
                invalid(format!(
                    "{}:{}: missing community",
                    path.display(),
                    lineno + 1
                ))
            })?
            .parse()
            .map_err(|e| {
                invalid(format!(
                    "{}:{}: bad community: {e}",
                    path.display(),
                    lineno + 1
                ))
            })?;
        pairs.push((v, c, lineno + 1));
    }
    let n = pairs.iter().map(|&(v, _, _)| v + 1).max().unwrap_or(0);
    let mut out = vec![0u32; n];
    // Line number that assigned each vertex; 0 marks "not yet seen".
    let mut seen_at = vec![0usize; n];
    for (v, c, lineno) in pairs {
        if seen_at[v] != 0 {
            return Err(invalid(format!(
                "{}:{}: duplicate assignment for vertex {v} (first assigned at line {})",
                path.display(),
                lineno,
                seen_at[v]
            )));
        }
        seen_at[v] = lineno;
        out[v] = c;
    }
    if let Some(v) = seen_at.iter().position(|&l| l == 0) {
        return Err(invalid(format!(
            "{}: vertex {v} has no assignment (the file names vertices up to {})",
            path.display(),
            n - 1
        )));
    }
    Ok(out)
}

fn compare(a: &Path, b: &Path) -> Result<(), CliError> {
    let pa = read_assignments(a)?;
    let pb = read_assignments(b)?;
    if pa.len() != pb.len() {
        return Err(CliError::invalid(format!(
            "assignment lengths differ: {} has {}, {} has {}",
            a.display(),
            pa.len(),
            b.display(),
            pb.len()
        )));
    }
    let m = pairwise_comparison(&pa, &pb);
    println!("specificity     {:.4}%", 100.0 * m.specificity());
    println!("sensitivity     {:.4}%", 100.0 * m.sensitivity());
    println!("overlap quality {:.4}%", 100.0 * m.overlap_quality());
    println!("rand index      {:.4}%", 100.0 * m.rand_index());
    println!(
        "NMI             {:.4}%",
        100.0 * normalized_mutual_information(&pa, &pb)
    );
    Ok(())
}

fn convert(input: &Path, output: &Path) -> Result<(), CliError> {
    let g = load(input)?;
    io::save_path(&g, output)
        .map_err(|e| CliError::from_io(format_args!("writing {}", output.display()), e))?;
    println!(
        "converted {} → {} (n={}, M={})",
        input.display(),
        output.display(),
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

/// The `serve` subcommand: run the resident partition service until
/// SIGTERM/SIGINT, then drain gracefully.
#[allow(clippy::too_many_arguments)]
fn serve(
    graph: &Path,
    addr: String,
    server_threads: usize,
    queue_depth: usize,
    deadline_ms: u64,
    retry: u32,
    backoff_ms: u64,
    threads: Option<usize>,
    gamma: f64,
    faults_spec: Option<&str>,
) -> Result<(), CliError> {
    let faults = match faults_spec {
        Some(spec) => FaultPlan::parse(spec).map_err(CliError::invalid)?,
        None => FaultPlan::from_env().map_err(CliError::invalid)?,
    };
    let detect = LouvainConfig::builder()
        .sweep(SweepMode::Active)
        .resolution(gamma)
        .threads(threads)
        .build()
        .map_err(CliError::invalid)?;
    let config = ServeConfig {
        addr,
        server_threads,
        queue_depth,
        deadline: Duration::from_millis(deadline_ms),
        backoff: BackoffPolicy {
            attempts: retry,
            base: Duration::from_millis(backoff_ms),
        },
        detect,
        faults,
    };
    let t = Instant::now();
    let handle = Server::start_from_path(graph, config).map_err(|e| match &e {
        ServeError::Bind(_) => CliError::io(e.to_string()),
        ServeError::Load(io::IoError::Io(_)) => CliError::io(e.to_string()),
        ServeError::Load(_) => CliError::invalid(e.to_string()),
        ServeError::Config(_) => CliError::invalid(e.to_string()),
    })?;
    let snap = handle.snapshot();
    // `listening <addr>` is the machine-readable readiness line scripts
    // wait for (port 0 resolves here), so flush it out immediately.
    println!("listening {}", handle.addr());
    println!(
        "serving n={} m={} communities={} modularity={:.6} (startup {:.2?})",
        snap.graph.num_vertices(),
        snap.graph.num_edges(),
        snap.num_communities,
        snap.modularity,
        t.elapsed()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    signal::install_term_handler();
    handle.serve_until(signal::term_requested, Duration::from_millis(25));
    println!("drained; exiting");
    Ok(())
}

/// The `query` subcommand: one-shot protocol client.
fn query(addr: &str, script: Option<&Path>, command: Option<&str>) -> Result<(), CliError> {
    use std::io::{BufRead, BufReader, Write as _};
    let lines: Vec<String> = match (script, command) {
        (Some(path), _) => std::fs::read_to_string(path)
            .map_err(|e| CliError::io(format!("reading {}: {e}", path.display())))?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect(),
        (None, Some(cmd)) => vec![cmd.to_string()],
        (None, None) => return Err(CliError::invalid("nothing to send")),
    };
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::io(format!("connecting {addr}: {e}")))?;
    // One small packet per direction per request: without nodelay the
    // Nagle/delayed-ACK interaction adds ~40ms to every round trip.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CliError::io(format!("cloning socket: {e}")))?,
    );
    let mut writer = stream;
    let mut failed = false;
    for line in &lines {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|_| writer.flush())
            .map_err(|e| CliError::io(format!("sending to {addr}: {e}")))?;
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| CliError::io(format!("reading from {addr}: {e}")))?;
        if n == 0 {
            return Err(CliError::io(format!(
                "{addr} closed the connection before answering `{line}`"
            )));
        }
        print!("{response}");
        failed |= response.starts_with("err ");
    }
    if failed {
        Err(CliError::runtime("one or more requests failed"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("grappolo_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn generate_stats_detect_round_trip() {
        let graph_path = tmp("g.bin");
        execute(Command::Generate {
            input: "mg1".into(),
            scale: 0.02,
            seed: 1,
            output: graph_path.clone(),
        })
        .unwrap();
        execute(Command::Stats {
            path: graph_path.clone(),
        })
        .unwrap();

        let assign_path = tmp("a.txt");
        execute(Command::Detect {
            path: graph_path.clone(),
            scheme: Scheme::Baseline,
            threads: Some(1),
            gamma: 1.0,
            assignments: Some(assign_path.clone()),
            trace: Some(tmp("trace.json")),
            accounting: ColoredAccounting::Incremental,
            sweep: SweepMode::Full,
            schedule: ScheduleMode::Fixed,
            vertex_epsilon: 0.0,
            refine: RefineMode::None,
            split_components: false,
        })
        .unwrap();

        let assignment = read_assignments(&assign_path).unwrap();
        assert!(!assignment.is_empty());
        // Trace is valid JSON.
        let text = std::fs::read_to_string(tmp("trace.json")).unwrap();
        assert!(serde_json::from_str::<serde_json::Value>(&text).is_ok());
    }

    #[test]
    fn detect_accounting_modes_agree() {
        // Differential at CLI level: incremental vs rescan colored
        // accounting produce identical assignments on an exact-weight
        // (unweighted) input.
        let graph_path = tmp("acct.grb");
        execute(Command::Generate {
            input: "rgg".into(),
            scale: 0.03,
            seed: 4,
            output: graph_path.clone(),
        })
        .unwrap();
        let out_inc = tmp("acct_inc.txt");
        let out_res = tmp("acct_res.txt");
        for (out, accounting) in [
            (&out_inc, ColoredAccounting::Incremental),
            (&out_res, ColoredAccounting::Rescan),
        ] {
            execute(Command::Detect {
                path: graph_path.clone(),
                scheme: Scheme::BaselineVfColor,
                threads: Some(2),
                gamma: 1.0,
                assignments: Some(out.clone()),
                trace: None,
                accounting,
                sweep: SweepMode::Full,
                schedule: ScheduleMode::Fixed,
                vertex_epsilon: 0.0,
                refine: RefineMode::None,
                split_components: false,
            })
            .unwrap();
        }
        assert_eq!(
            read_assignments(&out_inc).unwrap(),
            read_assignments(&out_res).unwrap(),
            "accounting modes diverged"
        );
    }

    #[test]
    fn detect_active_sweep_deterministic_across_thread_counts() {
        // CLI-level determinism for the dirty-vertex schedule: identical
        // assignments at 1 and 4 worker threads, for the colored scheme.
        let graph_path = tmp("sweep.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.05,
            seed: 9,
            output: graph_path.clone(),
        })
        .unwrap();
        let out1 = tmp("sweep_a1.txt");
        let out4 = tmp("sweep_a4.txt");
        for (out, threads) in [(&out1, 1usize), (&out4, 4)] {
            execute(Command::Detect {
                path: graph_path.clone(),
                scheme: Scheme::BaselineVfColor,
                threads: Some(threads),
                gamma: 1.0,
                assignments: Some(out.clone()),
                trace: None,
                accounting: ColoredAccounting::Incremental,
                sweep: SweepMode::Active,
                schedule: ScheduleMode::Fixed,
                vertex_epsilon: 0.0,
                refine: RefineMode::None,
                split_components: false,
            })
            .unwrap();
        }
        assert_eq!(
            read_assignments(&out1).unwrap(),
            read_assignments(&out4).unwrap(),
            "active sweep diverged across thread counts"
        );
    }

    #[test]
    fn detect_geometric_schedule_deterministic_across_thread_counts() {
        // CLI-level determinism for the scheduled convergence engine:
        // identical assignments at 1 and 4 worker threads under
        // --schedule geometric --sweep active.
        let graph_path = tmp("sched.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.05,
            seed: 11,
            output: graph_path.clone(),
        })
        .unwrap();
        let out1 = tmp("sched_a1.txt");
        let out4 = tmp("sched_a4.txt");
        for (out, threads) in [(&out1, 1usize), (&out4, 4)] {
            execute(Command::Detect {
                path: graph_path.clone(),
                scheme: Scheme::BaselineVfColor,
                threads: Some(threads),
                gamma: 1.0,
                assignments: Some(out.clone()),
                trace: None,
                accounting: ColoredAccounting::Incremental,
                sweep: SweepMode::Active,
                schedule: ScheduleMode::Geometric,
                vertex_epsilon: 0.0,
                refine: RefineMode::None,
                split_components: false,
            })
            .unwrap();
        }
        assert_eq!(
            read_assignments(&out1).unwrap(),
            read_assignments(&out4).unwrap(),
            "geometric schedule diverged across thread counts"
        );
    }

    #[test]
    fn detect_rejects_invalid_vertex_epsilon() {
        let graph_path = tmp("veps.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 5,
            output: graph_path.clone(),
        })
        .unwrap();
        let err = execute(Command::Detect {
            path: graph_path,
            scheme: Scheme::Baseline,
            threads: Some(1),
            gamma: 1.0,
            assignments: None,
            trace: None,
            accounting: ColoredAccounting::Incremental,
            sweep: SweepMode::Full,
            schedule: ScheduleMode::Fixed,
            vertex_epsilon: -1.0,
            refine: RefineMode::None,
            split_components: false,
        })
        .unwrap_err();
        assert!(err.message().contains("vertex_epsilon"), "{err}");
    }

    #[test]
    fn generate_synthetic_families() {
        for family in ["er", "planted", "rmat"] {
            let p = tmp(&format!("fam_{family}.grb"));
            execute(Command::Generate {
                input: family.into(),
                scale: 0.02,
                seed: 1,
                output: p.clone(),
            })
            .unwrap();
            let g = io::load_path(&p).unwrap();
            assert!(g.num_vertices() > 0, "{family}");
            assert!(g.num_edges() > 0, "{family}");
        }
    }

    #[test]
    fn detect_split_components_matches_unsplit_bytes() {
        // The splitter's headline contract at CLI level: on the `blocks`
        // family (ascending contiguous component ranges) --split-components
        // writes a byte-identical assignment file, for both the serial and
        // the parallel baseline scheme.
        let graph_path = tmp("split.grb");
        execute(Command::Generate {
            input: "blocks".into(),
            scale: 0.08,
            seed: 17,
            output: graph_path.clone(),
        })
        .unwrap();
        for (scheme, tag) in [(Scheme::Baseline, "base"), (Scheme::Serial, "serial")] {
            let plain_out = tmp(&format!("split_plain_{tag}.txt"));
            let split_out = tmp(&format!("split_split_{tag}.txt"));
            for (out, split) in [(&plain_out, false), (&split_out, true)] {
                execute(Command::Detect {
                    path: graph_path.clone(),
                    scheme,
                    threads: Some(2),
                    gamma: 1.0,
                    assignments: Some(out.clone()),
                    trace: None,
                    accounting: ColoredAccounting::Incremental,
                    sweep: SweepMode::Full,
                    schedule: ScheduleMode::Fixed,
                    vertex_epsilon: 0.0,
                    refine: RefineMode::None,
                    split_components: split,
                })
                .unwrap();
            }
            assert_eq!(
                std::fs::read(&plain_out).unwrap(),
                std::fs::read(&split_out).unwrap(),
                "{tag}: split assignment bytes differ from unsplit"
            );
        }
    }

    #[test]
    fn components_command_profiles_blocks() {
        let graph_path = tmp("compprof.grb");
        execute(Command::Generate {
            input: "blocks".into(),
            scale: 0.05,
            seed: 3,
            output: graph_path.clone(),
        })
        .unwrap();
        execute(Command::Components { path: graph_path }).unwrap();
        // And on a connected input.
        let one = tmp("comp_one.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 3,
            output: one.clone(),
        })
        .unwrap();
        execute(Command::Components { path: one }).unwrap();
    }

    #[test]
    fn blocks_family_is_multi_component() {
        let g = planted_blocks(4_000, 9);
        let l = grappolo_graph::connected_components(&g);
        assert!(
            l.num_components() > 4,
            "blocks must be multi-component, got {}",
            l.num_components()
        );
        assert!(
            l.num_isolated() > 0,
            "blocks must include isolated vertices"
        );
        let (_, largest) = l.largest().unwrap();
        assert!(largest < g.num_vertices(), "one component swallowed all");
    }

    #[test]
    fn compare_identical_files() {
        let p = tmp("same.txt");
        std::fs::write(&p, "0 0\n1 0\n2 1\n").unwrap();
        execute(Command::Compare { a: p.clone(), b: p }).unwrap();
    }

    #[test]
    fn convert_between_formats() {
        let edges = tmp("c.edges");
        std::fs::write(&edges, "0 1 2.0\n1 2 1.0\n").unwrap();
        let metis = tmp("c.graph");
        execute(Command::Convert {
            input: edges.clone(),
            output: metis.clone(),
        })
        .unwrap();
        let g = io::load_path(&metis).unwrap();
        assert_eq!(g.num_edges(), 2);
        // Edge list → .grb binary and back: identical structure.
        let grb = tmp("c.grb");
        execute(Command::Convert {
            input: edges,
            output: grb.clone(),
        })
        .unwrap();
        let g2 = io::load_path(&grb).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn convert_upgrades_v1_grb_in_place() {
        // A legacy v1 file converted onto its own path comes back as a
        // sectioned v2 file holding the bitwise-identical graph.
        let g = grappolo_graph::gen::planted_partition(&Default::default()).0;
        let path = tmp("upgrade.grb");
        io::write_grb(&g, std::fs::File::create(&path).unwrap()).unwrap();
        execute(Command::Convert {
            input: path.clone(),
            output: path.clone(),
        })
        .unwrap();
        let head = std::fs::read(&path).unwrap();
        assert_eq!(u16::from_le_bytes(head[8..10].try_into().unwrap()), 2);
        assert!(io::load_path(&path).unwrap().bitwise_eq(&g));
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(execute(Command::Stats {
            path: "/no/such/file.bin".into()
        })
        .is_err());
        assert!(execute(Command::Generate {
            input: "bogus".into(),
            scale: 1.0,
            seed: 1,
            output: tmp("x.bin"),
        })
        .is_err());
    }

    #[test]
    fn read_assignments_validates() {
        let p = tmp("holes.txt");
        std::fs::write(&p, "0 1\n2 1\n").unwrap(); // vertex 1 missing
        let err = read_assignments(&p).unwrap_err();
        assert!(
            err.message().contains("vertex 1 has no assignment"),
            "{err}"
        );
        let q = tmp("bad.txt");
        std::fs::write(&q, "x y\n").unwrap();
        assert!(read_assignments(&q).is_err());
    }

    #[test]
    fn read_assignments_rejects_duplicate_vertex_lines() {
        let p = tmp("dups.txt");
        std::fs::write(&p, "0 1\n1 2\n# comment\n1 3\n2 0\n").unwrap();
        let err = read_assignments(&p).unwrap_err();
        // Both the offending line and the original are named.
        assert!(err.message().contains(":4:"), "{err}");
        assert!(
            err.message().contains("duplicate assignment for vertex 1"),
            "{err}"
        );
        assert!(err.message().contains("line 2"), "{err}");
    }

    #[test]
    fn audit_reports_length_mismatch() {
        let graph_path = tmp("audlen.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 7,
            output: graph_path.clone(),
        })
        .unwrap();
        let g = io::load_path(&graph_path).unwrap();
        let n = g.num_vertices();
        // One entry more than the graph has vertices.
        let assign_path = tmp("audlen_a.txt");
        let mut text = String::new();
        for v in 0..=n {
            text.push_str(&format!("{v} 0\n"));
        }
        std::fs::write(&assign_path, text).unwrap();
        let err = execute(Command::Audit {
            graph: graph_path,
            assignments: assign_path,
        })
        .unwrap_err();
        assert!(
            err.message()
                .contains(&format!("assignment has {} entries", n + 1))
                && err.message().contains(&format!("graph has {n} vertices")),
            "{err}"
        );
    }

    #[test]
    fn read_edge_batch_parses_and_reports_line_errors() {
        let p = tmp("batch_ok.txt");
        std::fs::write(&p, "# comment\n+ 0 1\n+ 1 2 2.5\n- 3 4\n= 5 6 0.5\n").unwrap();
        let batch = read_edge_batch(&p).unwrap();
        assert_eq!(
            batch,
            vec![
                EdgeDelta::Insert {
                    u: 0,
                    v: 1,
                    weight: 1.0
                },
                EdgeDelta::Insert {
                    u: 1,
                    v: 2,
                    weight: 2.5
                },
                EdgeDelta::Delete { u: 3, v: 4 },
                EdgeDelta::Reweight {
                    u: 5,
                    v: 6,
                    weight: 0.5
                },
            ]
        );
        for (name, content, needle) in [
            (
                "batch_op.txt",
                "+ 0 1\n* 2 3\n",
                ":2: unknown operation `*`",
            ),
            ("batch_missing.txt", "+ 0\n", ":1: missing target vertex"),
            ("batch_weight.txt", "= 0 1\n", ":1: missing weight"),
            ("batch_trail.txt", "- 0 1 9\n", ":1: trailing tokens"),
            ("batch_vertex.txt", "+ x 1\n", ":1: bad source vertex"),
        ] {
            let p = tmp(name);
            std::fs::write(&p, content).unwrap();
            let err = read_edge_batch(&p).unwrap_err();
            assert!(err.message().contains(needle), "{name}: {err}");
        }
    }

    #[test]
    fn update_round_trip() {
        // detect → write assignments → apply a small batch with `update`
        // → the rewritten assignment and graph load back cleanly and the
        // audit accepts the pair.
        let graph_path = tmp("upd.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 21,
            output: graph_path.clone(),
        })
        .unwrap();
        let assign_path = tmp("upd_a.txt");
        execute(Command::Detect {
            path: graph_path.clone(),
            scheme: Scheme::Baseline,
            threads: Some(2),
            gamma: 1.0,
            assignments: Some(assign_path.clone()),
            trace: None,
            accounting: ColoredAccounting::Incremental,
            sweep: SweepMode::Active,
            schedule: ScheduleMode::Fixed,
            vertex_epsilon: 0.0,
            refine: RefineMode::None,
            split_components: false,
        })
        .unwrap();
        let g = io::load_path(&graph_path).unwrap();
        let (u, v, _) = g.undirected_edges().next().unwrap();
        let batch_path = tmp("upd_b.txt");
        std::fs::write(
            &batch_path,
            format!("# small perturbation\n= {u} {v} 3.0\n+ 0 1 0.5\n"),
        )
        .unwrap();
        let out_assign = tmp("upd_a2.txt");
        let out_graph = tmp("upd_g2.grb");
        execute(Command::Update {
            graph: graph_path,
            assignments: assign_path,
            batch: batch_path,
            assignments_out: Some(out_assign.clone()),
            graph_out: Some(out_graph.clone()),
            threads: Some(2),
            gamma: 1.0,
            fallback: grappolo_core::config::DYNAMIC_FALLBACK_FRACTION,
        })
        .unwrap();
        let updated = read_assignments(&out_assign).unwrap();
        let g2 = io::load_path(&out_graph).unwrap();
        assert_eq!(updated.len(), g2.num_vertices());
        assert_eq!(g2.edge_weight(u, v), Some(3.0));
        execute(Command::Audit {
            graph: out_graph,
            assignments: out_assign,
        })
        .unwrap();
    }

    #[test]
    fn update_rejects_mismatched_assignment() {
        let graph_path = tmp("updmis.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 23,
            output: graph_path.clone(),
        })
        .unwrap();
        let assign_path = tmp("updmis_a.txt");
        std::fs::write(&assign_path, "0 0\n1 0\n2 1\n").unwrap();
        let batch_path = tmp("updmis_b.txt");
        std::fs::write(&batch_path, "+ 0 1\n").unwrap();
        let err = execute(Command::Update {
            graph: graph_path,
            assignments: assign_path,
            batch: batch_path,
            assignments_out: None,
            graph_out: None,
            threads: Some(1),
            gamma: 1.0,
            fallback: grappolo_core::config::DYNAMIC_FALLBACK_FRACTION,
        })
        .unwrap_err();
        assert!(
            err.message().contains("assignment has 3 entries")
                && err.message().contains("graph has"),
            "{err}"
        );
    }

    #[test]
    fn detect_refine_and_audit_round_trip() {
        // detect --refine leiden writes an assignment the audit subcommand
        // accepts; the audit also runs on unrefined output.
        let graph_path = tmp("refine.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.05,
            seed: 13,
            output: graph_path.clone(),
        })
        .unwrap();
        let out = tmp("refine_a.txt");
        execute(Command::Detect {
            path: graph_path.clone(),
            scheme: Scheme::BaselineVfColor,
            threads: Some(2),
            gamma: 1.0,
            assignments: Some(out.clone()),
            trace: None,
            accounting: ColoredAccounting::Incremental,
            sweep: SweepMode::Active,
            schedule: ScheduleMode::Geometric,
            vertex_epsilon: 0.0,
            refine: RefineMode::Leiden,
            split_components: false,
        })
        .unwrap();
        execute(Command::Audit {
            graph: graph_path,
            assignments: out,
        })
        .unwrap();
    }

    #[test]
    fn detect_rejects_refine_with_rescan() {
        // The builder turns the invalid combination into a CLI error.
        let graph_path = tmp("refres.grb");
        execute(Command::Generate {
            input: "planted".into(),
            scale: 0.02,
            seed: 3,
            output: graph_path.clone(),
        })
        .unwrap();
        let err = execute(Command::Detect {
            path: graph_path,
            scheme: Scheme::BaselineVfColor,
            threads: Some(1),
            gamma: 1.0,
            assignments: None,
            trace: None,
            accounting: ColoredAccounting::Rescan,
            sweep: SweepMode::Full,
            schedule: ScheduleMode::Fixed,
            vertex_epsilon: 0.0,
            refine: RefineMode::Leiden,
            split_components: false,
        })
        .unwrap_err();
        assert!(
            err.message().contains("refine") || err.message().contains("rescan"),
            "{err}"
        );
    }

    #[test]
    fn color_command_runs() {
        let graph_path = tmp("col.bin");
        execute(Command::Generate {
            input: "rgg".into(),
            scale: 0.02,
            seed: 2,
            output: graph_path.clone(),
        })
        .unwrap();
        execute(Command::Color {
            path: graph_path.clone(),
            balanced: false,
        })
        .unwrap();
        execute(Command::Color {
            path: graph_path,
            balanced: true,
        })
        .unwrap();
    }
}
