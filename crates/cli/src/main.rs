//! The `grappolo` command-line binary.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(grappolo_cli::run(&argv));
}
