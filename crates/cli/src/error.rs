//! Typed CLI errors with distinct process exit codes, so scripts and CI
//! can tell failure classes apart without parsing stderr:
//!
//! | code | meaning                                            |
//! |------|----------------------------------------------------|
//! | 0    | success                                            |
//! | 1    | generic runtime failure                            |
//! | 2    | usage / argument parse error                       |
//! | 3    | I/O failure (missing file, permission, disk)       |
//! | 4    | invalid input or configuration (parse, validation) |
//! | 5    | `audit` found internally disconnected communities  |

use grappolo_graph::io::IoError;

/// Exit code: generic runtime failure.
pub const EXIT_RUNTIME: i32 = 1;
/// Exit code: usage / argument parse error (set by `run`, not here).
pub const EXIT_USAGE: i32 = 2;
/// Exit code: I/O failure.
pub const EXIT_IO: i32 = 3;
/// Exit code: invalid input or configuration.
pub const EXIT_INVALID: i32 = 4;
/// Exit code: `audit` ran fine but found disconnected communities.
pub const EXIT_AUDIT_FINDING: i32 = 5;

/// A command failure carrying its process exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError {
    code: i32,
    message: String,
}

impl CliError {
    /// An error with an explicit exit code.
    pub fn new(code: i32, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// Generic runtime failure (exit 1).
    pub fn runtime(message: impl Into<String>) -> Self {
        Self::new(EXIT_RUNTIME, message)
    }

    /// I/O failure (exit 3).
    pub fn io(message: impl Into<String>) -> Self {
        Self::new(EXIT_IO, message)
    }

    /// Invalid input or configuration (exit 4).
    pub fn invalid(message: impl Into<String>) -> Self {
        Self::new(EXIT_INVALID, message)
    }

    /// `audit` finding (exit 5): the run succeeded, the assignment did not.
    pub fn audit_finding(message: impl Into<String>) -> Self {
        Self::new(EXIT_AUDIT_FINDING, message)
    }

    /// Classifies a graph-layer [`IoError`] under `context`: underlying
    /// I/O failures exit 3, parse/validation failures exit 4.
    pub fn from_io(context: impl std::fmt::Display, e: IoError) -> Self {
        let code = match e {
            IoError::Io(_) => EXIT_IO,
            IoError::Parse { .. } | IoError::Build(_) => EXIT_INVALID,
        };
        Self::new(code, format!("{context}: {e}"))
    }

    /// The process exit code.
    pub fn code(&self) -> i32 {
        self.code
    }

    /// The human-readable message (printed to stderr by `run`).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Bare strings (library validation messages reached through `?`) count
/// as generic runtime failures; classify explicitly where it matters.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        Self::runtime(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_codes() {
        assert_eq!(CliError::runtime("x").code(), 1);
        assert_eq!(CliError::io("x").code(), 3);
        assert_eq!(CliError::invalid("x").code(), 4);
        assert_eq!(CliError::audit_finding("x").code(), 5);
        assert_eq!(CliError::new(7, "x").code(), 7);
    }

    #[test]
    fn io_errors_classify_by_variant() {
        let io = IoError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        let e = CliError::from_io("loading g.grb", io);
        assert_eq!(e.code(), EXIT_IO);
        assert!(e.message().contains("loading g.grb"), "{e}");
        let parse = IoError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert_eq!(CliError::from_io("x", parse).code(), EXIT_INVALID);
    }

    #[test]
    fn strings_become_runtime_errors() {
        let e: CliError = String::from("boom").into();
        assert_eq!(e.code(), EXIT_RUNTIME);
        assert_eq!(e.message(), "boom");
    }
}
