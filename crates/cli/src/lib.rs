//! # grappolo-cli
//!
//! Command-line interface for the grappolo-rs library:
//!
//! ```text
//! grappolo generate <input-id|generator> [--scale F] [--seed N] -o FILE
//! grappolo stats    <graph-file>
//! grappolo detect   <graph-file> [--scheme S] [--threads N] [--gamma F]
//!                   [--assignments FILE] [--trace FILE]
//! grappolo color    <graph-file> [--balanced]
//! grappolo compare  <assignments-a> <assignments-b>
//! grappolo convert  <in-file> <out-file>
//! ```
//!
//! Graph formats are dispatched on extension (`.edges`/`.txt`,
//! `.graph`/`.metis`, `.bin`); assignment files are one `vertex community`
//! pair per line.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

/// Entry point shared by the binary and the tests. Returns the process exit
/// code.
pub fn run(argv: &[String]) -> i32 {
    match args::parse(argv) {
        Ok(cmd) => match commands::execute(cmd) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            2
        }
    }
}
