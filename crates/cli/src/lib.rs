//! # grappolo-cli
//!
//! Command-line interface for the grappolo-rs library:
//!
//! ```text
//! grappolo generate <input-id|generator> [--scale F] [--seed N] -o FILE
//! grappolo stats    <graph-file>
//! grappolo detect   <graph-file> [--scheme S] [--threads N] [--gamma F]
//!                   [--assignments FILE] [--trace FILE]
//! grappolo serve    <graph-file> [--addr A] [--server-threads N] …
//! grappolo query    --addr A [--script FILE] [command…]
//! grappolo color    <graph-file> [--balanced]
//! grappolo compare  <assignments-a> <assignments-b>
//! grappolo convert  <in-file> <out-file>
//! ```
//!
//! Graph formats are dispatched on extension (`.edges`/`.txt`,
//! `.graph`/`.metis`, `.bin`); assignment files are one `vertex community`
//! pair per line.
//!
//! Exit codes are typed (see [`error`]): 0 success, 1 runtime, 2 usage,
//! 3 I/O, 4 invalid input/config, 5 audit finding.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;

pub use error::CliError;

/// Entry point shared by the binary and the tests. Returns the process exit
/// code.
pub fn run(argv: &[String]) -> i32 {
    match args::parse(argv) {
        Ok(cmd) => match commands::execute(cmd) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("error: {}", e.message());
                e.code()
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            error::EXIT_USAGE
        }
    }
}
