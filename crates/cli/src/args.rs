//! Hand-rolled argument parsing (keeps the dependency set to the
//! offline-sanctioned crates).

use grappolo_core::{ColoredAccounting, RefineMode, ScheduleMode, Scheme, SweepMode};
use std::path::PathBuf;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
grappolo — parallel Louvain community detection (grappolo-rs)

USAGE:
  grappolo generate <input-id> [--scale F] [--seed N] -o FILE
      input-id: cnr | copapersdblp | channel | europe-osm | soc-livejournal |
                mg1 | rgg | uk-2002 | nlpkkt240 | mg2 | friendster
      synthetic families (CI scenario matrix): er | planted | rmat | blocks
      (`blocks` is a disconnected union of planted-partition blocks plus
      isolated vertices — the component-splitter workload)
  grappolo stats <graph-file>
  grappolo components <graph-file>
      print the weakly-connected-component profile: component count, largest
      component, isolated vertices, top component sizes
  grappolo detect <graph-file> [--scheme serial|baseline|vf|color]
                  [--threads N] [--gamma F] [--assignments FILE] [--trace FILE]
                  [--accounting incremental|rescan] [--sweep full|active]
                  [--schedule fixed|geometric] [--vertex-epsilon F]
                  [--refine leiden|none] [--split-components]
      --accounting: colored-sweep modularity accounting — `incremental`
      (default; O(#moves) deltas at each color-batch barrier) or `rescan`
      (the historical full-recompute baseline, for differential runs)
      --sweep: iteration schedule — `full` (default; every iteration scans
      all vertices, the paper's trajectory) or `active` (dirty-vertex work
      lists: only vertices whose neighborhood changed are re-examined;
      activity-proportional iterations, deterministic across thread counts)
      --schedule: within-phase convergence schedule — `fixed` (default;
      aggregate net-gain stop at the phase threshold, the paper's scheme) or
      `geometric` (per-vertex gain gate tightening geometrically to a floor,
      scaled to the graph's total weight; phases terminate when the frontier
      empties at the floor — pairs naturally with `--sweep active`)
      --vertex-epsilon: per-vertex convergence epsilon (absolute modularity
      gain; 0 = off). A vertex whose best available gain is below it stays
      put and leaves the work list until a neighbor moves
      --refine: post-sweep refinement — `none` (default; the paper's
      pipeline) or `leiden` (split internally disconnected communities into
      connected sub-communities and re-absorb profitable singletons before
      each rebuild; deterministic, never lowers modularity)
      --split-components: detect each weakly connected component as an
      independent run dispatched across the thread pool (no Louvain move
      ever crosses a component), then stitch labels in component-id order —
      bitwise independent of thread count
  grappolo update <graph-file> <assignments-file> <batch-file>
                  [--assignments-out FILE] [--graph-out FILE]
                  [--threads N] [--gamma F] [--fallback F]
      apply a batch of edge deltas and re-converge the communities locally
      around the changed edges (incremental; untouched regions keep their
      labels bitwise). Batch file, one delta per line (`#` comments):
        + u v [w]   insert edge (default weight 1; duplicates merge by sum)
        - u v       delete edge
        = u v w     reweight edge
      --fallback: fraction of changed edges above which the update reruns
      detection from scratch instead (default 0.25)
  grappolo audit <graph-file> <assignments-file>
      print the connectivity report for an assignment: communities,
      internally disconnected count/fraction, min internal conductance.
      exit code 5 (distinct from could-not-run) when internally
      disconnected communities are found
  grappolo serve <graph-file> [--addr HOST:PORT] [--server-threads N]
                 [--queue-depth N] [--deadline-ms N] [--retry N]
                 [--backoff-ms N] [--threads N] [--gamma F] [--faults SPEC]
      resident partition service: load the graph, detect communities,
      answer line-oriented TCP queries (`ping`, `community-of <v>`,
      `members <c>`, `stats`, `metrics`, `update <batch-file>`,
      `snapshot-save <path>`, `quit`). Prints `listening HOST:PORT` when
      ready (--addr defaults to 127.0.0.1:0 = pick a free port). SIGTERM
      or SIGINT drains gracefully: in-flight work is cancelled
      cooperatively, queued requests finish, no partial files remain.
      --server-threads: request worker threads (default 4)
      --queue-depth: bounded request queue; overload answers `err busy`
      (default 128)
      --deadline-ms: per-request response deadline (default 2000)
      --retry / --backoff-ms: persistence retry attempts and base backoff
      (default 3 / 10)
      --threads / --gamma: detection thread count and resolution
      --faults: failpoint spec, e.g. `detect=panic:1,persist=err:2`
      (overrides the GRAPPOLO_FAULTS environment variable)
  grappolo query --addr HOST:PORT [--script FILE] [command…]
      one-shot client: send a single protocol command (the trailing
      words) or every non-comment line of --script FILE over one
      connection, printing each response line. Exits 0 when every
      response is `ok`, 1 if any is `err`, 3 on connection failure
  grappolo color <graph-file> [--balanced]
  grappolo compare <assignments-a> <assignments-b>
  grappolo convert <in-file> <out-file>
      e.g. `grappolo convert web.edges web.grb` caches a parsed graph in the
      binary .grb format, which later loads in O(read) (no re-parse/re-sort);
      `grappolo convert old.grb old.grb` upgrades a legacy v1 file to the
      sectioned v2 layout (chunk table + parallel decode) in place

Graph files: .edges/.txt (edge list), .graph/.metis (METIS),
             .grb (versioned binary, fastest to load), .bin (legacy binary).";

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a paper-suite proxy graph.
    Generate {
        /// Paper-input id.
        input: String,
        /// Size multiplier.
        scale: f64,
        /// Generator seed.
        seed: u64,
        /// Output path.
        output: PathBuf,
    },
    /// Print graph statistics (Table 1 columns).
    Stats {
        /// Graph path.
        path: PathBuf,
    },
    /// Print the weakly-connected-component profile.
    Components {
        /// Graph path.
        path: PathBuf,
    },
    /// Run community detection.
    Detect {
        /// Graph path.
        path: PathBuf,
        /// Heuristic scheme.
        scheme: Scheme,
        /// Thread count (None = default).
        threads: Option<usize>,
        /// Resolution γ.
        gamma: f64,
        /// Where to write `vertex community` lines.
        assignments: Option<PathBuf>,
        /// Where to write the JSON trace.
        trace: Option<PathBuf>,
        /// Colored-sweep modularity accounting mode.
        accounting: ColoredAccounting,
        /// Sweep iteration schedule (full vs dirty-vertex work lists).
        sweep: SweepMode,
        /// Within-phase threshold schedule (fixed vs geometric gate).
        schedule: ScheduleMode,
        /// Per-vertex convergence epsilon (0 = disabled).
        vertex_epsilon: f64,
        /// Post-sweep refinement mode.
        refine: RefineMode,
        /// Run each connected component as an independent detection.
        split_components: bool,
    },
    /// Apply a batch of edge deltas and re-converge incrementally.
    Update {
        /// Graph path.
        graph: PathBuf,
        /// Previous assignment path (`vertex community` lines).
        assignments: PathBuf,
        /// Edge-delta batch path (`+ u v [w]` / `- u v` / `= u v w` lines).
        batch: PathBuf,
        /// Where to write the updated assignment.
        assignments_out: Option<PathBuf>,
        /// Where to write the updated graph.
        graph_out: Option<PathBuf>,
        /// Thread count (None = default).
        threads: Option<usize>,
        /// Resolution γ.
        gamma: f64,
        /// Changed-edge fraction above which the update falls back to
        /// from-scratch detection.
        fallback: f64,
    },
    /// Audit an assignment's internal connectivity.
    Audit {
        /// Graph path.
        graph: PathBuf,
        /// Assignment path (`vertex community` lines).
        assignments: PathBuf,
    },
    /// Run the resident partition service.
    Serve {
        /// Graph path.
        graph: PathBuf,
        /// Bind address (port 0 picks a free port).
        addr: String,
        /// Request worker threads.
        server_threads: usize,
        /// Bounded request queue capacity.
        queue_depth: usize,
        /// Per-request deadline in milliseconds.
        deadline_ms: u64,
        /// Persistence retry attempts.
        retry: u32,
        /// Base persistence backoff in milliseconds.
        backoff_ms: u64,
        /// Detection thread count (None = default).
        threads: Option<usize>,
        /// Resolution γ.
        gamma: f64,
        /// Failpoint spec (overrides `GRAPPOLO_FAULTS`).
        faults: Option<String>,
    },
    /// Send protocol commands to a running service.
    Query {
        /// Server address.
        addr: String,
        /// File of protocol lines to send (`#` comments skipped).
        script: Option<PathBuf>,
        /// Single inline protocol command.
        command: Option<String>,
    },
    /// Color a graph and report class statistics.
    Color {
        /// Graph path.
        path: PathBuf,
        /// Apply the balancing post-pass.
        balanced: bool,
    },
    /// Compare two assignment files with Table 3 metrics.
    Compare {
        /// Benchmark assignment path.
        a: PathBuf,
        /// Candidate assignment path.
        b: PathBuf,
    },
    /// Convert between graph formats.
    Convert {
        /// Input path.
        input: PathBuf,
        /// Output path.
        output: PathBuf,
    },
    /// Print usage.
    Help,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter().map(String::as_str);
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&str> = it.collect();
    match sub {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "generate" => parse_generate(&rest),
        "stats" => {
            let path = positional(&rest, 0, "graph-file")?;
            Ok(Command::Stats { path: path.into() })
        }
        "components" => {
            let path = positional(&rest, 0, "graph-file")?;
            Ok(Command::Components { path: path.into() })
        }
        "detect" => parse_detect(&rest),
        "update" => parse_update(&rest),
        "serve" => parse_serve(&rest),
        "query" => parse_query(&rest),
        "audit" => {
            let graph = positional(&rest, 0, "graph-file")?;
            let assignments = positional(&rest, 1, "assignments-file")?;
            Ok(Command::Audit {
                graph: graph.into(),
                assignments: assignments.into(),
            })
        }
        "color" => {
            let path = positional(&rest, 0, "graph-file")?;
            let balanced = rest.contains(&"--balanced");
            Ok(Command::Color {
                path: path.into(),
                balanced,
            })
        }
        "compare" => {
            let a = positional(&rest, 0, "assignments-a")?;
            let b = positional(&rest, 1, "assignments-b")?;
            Ok(Command::Compare {
                a: a.into(),
                b: b.into(),
            })
        }
        "convert" => {
            let input = positional(&rest, 0, "in-file")?;
            let output = positional(&rest, 1, "out-file")?;
            Ok(Command::Convert {
                input: input.into(),
                output: output.into(),
            })
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn positional<'a>(rest: &[&'a str], idx: usize, name: &str) -> Result<&'a str, String> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(idx)
        .copied()
        .ok_or_else(|| format!("missing <{name}>"))
}

fn flag_value<'a>(rest: &[&'a str], flag: &str) -> Result<Option<&'a str>, String> {
    for (i, a) in rest.iter().enumerate() {
        if *a == flag {
            return rest
                .get(i + 1)
                .copied()
                .map(Some)
                .ok_or_else(|| format!("{flag} needs a value"));
        }
    }
    Ok(None)
}

fn parse_generate(rest: &[&str]) -> Result<Command, String> {
    let input = positional(rest, 0, "input-id")?.to_string();
    let scale: f64 = flag_value(rest, "--scale")?
        .map(|v| v.parse().map_err(|e| format!("bad --scale: {e}")))
        .transpose()?
        .unwrap_or(0.25);
    let seed: u64 = flag_value(rest, "--seed")?
        .map(|v| v.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    let output = flag_value(rest, "-o")?
        .or(flag_value(rest, "--output")?)
        .ok_or("generate requires -o FILE")?;
    Ok(Command::Generate {
        input,
        scale,
        seed,
        output: output.into(),
    })
}

fn parse_detect(rest: &[&str]) -> Result<Command, String> {
    let path = positional(rest, 0, "graph-file")?;
    let scheme = match flag_value(rest, "--scheme")?.unwrap_or("color") {
        "serial" => Scheme::Serial,
        "baseline" => Scheme::Baseline,
        "vf" => Scheme::BaselineVf,
        "color" => Scheme::BaselineVfColor,
        other => return Err(format!("unknown --scheme `{other}`")),
    };
    let threads = flag_value(rest, "--threads")?
        .map(|v| v.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?;
    let gamma: f64 = flag_value(rest, "--gamma")?
        .map(|v| v.parse().map_err(|e| format!("bad --gamma: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    let assignments = flag_value(rest, "--assignments")?.map(PathBuf::from);
    let trace = flag_value(rest, "--trace")?.map(PathBuf::from);
    let accounting = match flag_value(rest, "--accounting")?.unwrap_or("incremental") {
        "incremental" => ColoredAccounting::Incremental,
        "rescan" => ColoredAccounting::Rescan,
        other => return Err(format!("unknown --accounting `{other}`")),
    };
    let sweep = match flag_value(rest, "--sweep")?.unwrap_or("full") {
        "full" => SweepMode::Full,
        "active" => SweepMode::Active,
        other => return Err(format!("unknown --sweep `{other}`")),
    };
    let schedule = match flag_value(rest, "--schedule")?.unwrap_or("fixed") {
        "fixed" => ScheduleMode::Fixed,
        "geometric" => ScheduleMode::Geometric,
        other => return Err(format!("unknown --schedule `{other}`")),
    };
    let vertex_epsilon: f64 = flag_value(rest, "--vertex-epsilon")?
        .map(|v| v.parse().map_err(|e| format!("bad --vertex-epsilon: {e}")))
        .transpose()?
        .unwrap_or(0.0);
    let refine = match flag_value(rest, "--refine")?.unwrap_or("none") {
        "none" => RefineMode::None,
        "leiden" => RefineMode::Leiden,
        other => return Err(format!("unknown --refine `{other}`")),
    };
    let split_components = rest.contains(&"--split-components");
    Ok(Command::Detect {
        path: path.into(),
        scheme,
        threads,
        gamma,
        assignments,
        trace,
        accounting,
        sweep,
        schedule,
        vertex_epsilon,
        refine,
        split_components,
    })
}

fn parse_update(rest: &[&str]) -> Result<Command, String> {
    let graph = positional(rest, 0, "graph-file")?;
    let assignments = positional(rest, 1, "assignments-file")?;
    let batch = positional(rest, 2, "batch-file")?;
    let assignments_out = flag_value(rest, "--assignments-out")?.map(PathBuf::from);
    let graph_out = flag_value(rest, "--graph-out")?.map(PathBuf::from);
    let threads = flag_value(rest, "--threads")?
        .map(|v| v.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?;
    let gamma: f64 = flag_value(rest, "--gamma")?
        .map(|v| v.parse().map_err(|e| format!("bad --gamma: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    let fallback: f64 = flag_value(rest, "--fallback")?
        .map(|v| v.parse().map_err(|e| format!("bad --fallback: {e}")))
        .transpose()?
        .unwrap_or(grappolo_core::config::DYNAMIC_FALLBACK_FRACTION);
    Ok(Command::Update {
        graph: graph.into(),
        assignments: assignments.into(),
        batch: batch.into(),
        assignments_out,
        graph_out,
        threads,
        gamma,
        fallback,
    })
}

fn parse_serve(rest: &[&str]) -> Result<Command, String> {
    let graph = positional(rest, 0, "graph-file")?;
    let addr = flag_value(rest, "--addr")?
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let server_threads: usize = flag_value(rest, "--server-threads")?
        .map(|v| v.parse().map_err(|e| format!("bad --server-threads: {e}")))
        .transpose()?
        .unwrap_or(4);
    let queue_depth: usize = flag_value(rest, "--queue-depth")?
        .map(|v| v.parse().map_err(|e| format!("bad --queue-depth: {e}")))
        .transpose()?
        .unwrap_or(128);
    let deadline_ms: u64 = flag_value(rest, "--deadline-ms")?
        .map(|v| v.parse().map_err(|e| format!("bad --deadline-ms: {e}")))
        .transpose()?
        .unwrap_or(2000);
    let retry: u32 = flag_value(rest, "--retry")?
        .map(|v| v.parse().map_err(|e| format!("bad --retry: {e}")))
        .transpose()?
        .unwrap_or(3);
    let backoff_ms: u64 = flag_value(rest, "--backoff-ms")?
        .map(|v| v.parse().map_err(|e| format!("bad --backoff-ms: {e}")))
        .transpose()?
        .unwrap_or(10);
    let threads = flag_value(rest, "--threads")?
        .map(|v| v.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?;
    let gamma: f64 = flag_value(rest, "--gamma")?
        .map(|v| v.parse().map_err(|e| format!("bad --gamma: {e}")))
        .transpose()?
        .unwrap_or(1.0);
    let faults = flag_value(rest, "--faults")?.map(String::from);
    Ok(Command::Serve {
        graph: graph.into(),
        addr,
        server_threads,
        queue_depth,
        deadline_ms,
        retry,
        backoff_ms,
        threads,
        gamma,
        faults,
    })
}

fn parse_query(rest: &[&str]) -> Result<Command, String> {
    // The trailing protocol command may contain words that look like
    // positionals, so walk the tokens explicitly: known flags consume a
    // value, everything else joins the command.
    let mut addr = None;
    let mut script = None;
    let mut words: Vec<&str> = Vec::new();
    let mut it = rest.iter();
    while let Some(&tok) = it.next() {
        match tok {
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?.to_string()),
            "--script" => script = Some(PathBuf::from(*it.next().ok_or("--script needs a value")?)),
            other if other.starts_with("--") => {
                return Err(format!("unknown query flag `{other}`"))
            }
            word => words.push(word),
        }
    }
    let addr = addr.ok_or("query requires --addr HOST:PORT")?;
    let command = if words.is_empty() {
        None
    } else {
        Some(words.join(" "))
    };
    if command.is_none() && script.is_none() {
        return Err("query needs a protocol command or --script FILE".to_string());
    }
    Ok(Command::Query {
        addr,
        script,
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(&args("generate cnr --scale 0.5 --seed 7 -o g.bin")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                input: "cnr".into(),
                scale: 0.5,
                seed: 7,
                output: "g.bin".into()
            }
        );
    }

    #[test]
    fn generate_defaults() {
        let cmd = parse(&args("generate mg1 -o x.edges")).unwrap();
        match cmd {
            Command::Generate { scale, seed, .. } => {
                assert_eq!(scale, 0.25);
                assert_eq!(seed, 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn generate_requires_output() {
        assert!(parse(&args("generate cnr")).is_err());
    }

    #[test]
    fn parses_detect_with_options() {
        let cmd = parse(&args(
            "detect g.bin --scheme vf --threads 4 --gamma 2.0 --assignments out.txt",
        ))
        .unwrap();
        match cmd {
            Command::Detect {
                scheme,
                threads,
                gamma,
                assignments,
                trace,
                accounting,
                sweep,
                schedule,
                vertex_epsilon,
                refine,
                split_components,
                ..
            } => {
                assert_eq!(scheme, Scheme::BaselineVf);
                assert_eq!(threads, Some(4));
                assert_eq!(gamma, 2.0);
                assert_eq!(assignments, Some("out.txt".into()));
                assert_eq!(trace, None);
                assert_eq!(accounting, ColoredAccounting::Incremental);
                assert_eq!(sweep, SweepMode::Full);
                assert_eq!(schedule, ScheduleMode::Fixed);
                assert_eq!(vertex_epsilon, 0.0);
                assert_eq!(refine, RefineMode::None);
                assert!(!split_components);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn detect_refine_modes() {
        match parse(&args("detect g.bin --refine leiden")).unwrap() {
            Command::Detect { refine, .. } => assert_eq!(refine, RefineMode::Leiden),
            _ => panic!(),
        }
        match parse(&args("detect g.bin --refine none")).unwrap() {
            Command::Detect { refine, .. } => assert_eq!(refine, RefineMode::None),
            _ => panic!(),
        }
        assert!(parse(&args("detect g.bin --refine louvain")).is_err());
        assert!(parse(&args("detect g.bin --refine")).is_err());
    }

    #[test]
    fn parses_update() {
        let cmd = parse(&args(
            "update g.grb prev.txt batch.txt --assignments-out next.txt --threads 8 \
             --gamma 1.5 --fallback 0.5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Update {
                graph: "g.grb".into(),
                assignments: "prev.txt".into(),
                batch: "batch.txt".into(),
                assignments_out: Some("next.txt".into()),
                graph_out: None,
                threads: Some(8),
                gamma: 1.5,
                fallback: 0.5,
            }
        );
        // Defaults.
        match parse(&args("update g.grb prev.txt batch.txt")).unwrap() {
            Command::Update {
                gamma,
                fallback,
                threads,
                assignments_out,
                graph_out,
                ..
            } => {
                assert_eq!(gamma, 1.0);
                assert_eq!(fallback, grappolo_core::config::DYNAMIC_FALLBACK_FRACTION);
                assert_eq!(threads, None);
                assert_eq!(assignments_out, None);
                assert_eq!(graph_out, None);
            }
            _ => panic!(),
        }
        // All three positionals are required.
        assert!(parse(&args("update g.grb prev.txt")).is_err());
        assert!(parse(&args("update g.grb prev.txt batch.txt --threads")).is_err());
    }

    #[test]
    fn parses_audit() {
        assert_eq!(
            parse(&args("audit g.bin out.txt")).unwrap(),
            Command::Audit {
                graph: "g.bin".into(),
                assignments: "out.txt".into()
            }
        );
        assert!(parse(&args("audit g.bin")).is_err());
    }

    #[test]
    fn detect_schedule_modes() {
        match parse(&args("detect g.bin --schedule geometric")).unwrap() {
            Command::Detect { schedule, .. } => assert_eq!(schedule, ScheduleMode::Geometric),
            _ => panic!(),
        }
        match parse(&args("detect g.bin --schedule fixed --vertex-epsilon 1e-7")).unwrap() {
            Command::Detect {
                schedule,
                vertex_epsilon,
                ..
            } => {
                assert_eq!(schedule, ScheduleMode::Fixed);
                assert_eq!(vertex_epsilon, 1e-7);
            }
            _ => panic!(),
        }
        assert!(parse(&args("detect g.bin --schedule linear")).is_err());
        assert!(parse(&args("detect g.bin --schedule")).is_err());
        assert!(parse(&args("detect g.bin --vertex-epsilon nope")).is_err());
    }

    #[test]
    fn detect_sweep_modes() {
        match parse(&args("detect g.bin --sweep active")).unwrap() {
            Command::Detect { sweep, .. } => assert_eq!(sweep, SweepMode::Active),
            _ => panic!(),
        }
        match parse(&args("detect g.bin --sweep full")).unwrap() {
            Command::Detect { sweep, .. } => assert_eq!(sweep, SweepMode::Full),
            _ => panic!(),
        }
        assert!(parse(&args("detect g.bin --sweep lazy")).is_err());
        assert!(parse(&args("detect g.bin --sweep")).is_err());
    }

    #[test]
    fn detect_split_components_flag() {
        match parse(&args("detect g.grb --split-components --threads 8")).unwrap() {
            Command::Detect {
                split_components,
                threads,
                ..
            } => {
                assert!(split_components);
                assert_eq!(threads, Some(8));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_components() {
        assert_eq!(
            parse(&args("components g.grb")).unwrap(),
            Command::Components {
                path: "g.grb".into()
            }
        );
        assert!(parse(&args("components")).is_err());
    }

    #[test]
    fn detect_default_scheme_is_color() {
        match parse(&args("detect g.bin")).unwrap() {
            Command::Detect { scheme, .. } => assert_eq!(scheme, Scheme::BaselineVfColor),
            _ => panic!(),
        }
    }

    #[test]
    fn detect_accounting_modes() {
        match parse(&args("detect g.bin --accounting rescan")).unwrap() {
            Command::Detect { accounting, .. } => {
                assert_eq!(accounting, ColoredAccounting::Rescan)
            }
            _ => panic!(),
        }
        match parse(&args("detect g.bin --accounting incremental")).unwrap() {
            Command::Detect { accounting, .. } => {
                assert_eq!(accounting, ColoredAccounting::Incremental)
            }
            _ => panic!(),
        }
        assert!(parse(&args("detect g.bin --accounting atomic")).is_err());
    }

    #[test]
    fn rejects_unknown_scheme_and_subcommand() {
        assert!(parse(&args("detect g.bin --scheme turbo")).is_err());
        assert!(parse(&args("detect g.bin --accounting")).is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parses_simple_subcommands() {
        assert_eq!(
            parse(&args("stats g.metis")).unwrap(),
            Command::Stats {
                path: "g.metis".into()
            }
        );
        assert_eq!(
            parse(&args("compare a.txt b.txt")).unwrap(),
            Command::Compare {
                a: "a.txt".into(),
                b: "b.txt".into()
            }
        );
        assert_eq!(
            parse(&args("convert a.edges b.bin")).unwrap(),
            Command::Convert {
                input: "a.edges".into(),
                output: "b.bin".into()
            }
        );
        assert_eq!(
            parse(&args("color g.bin --balanced")).unwrap(),
            Command::Color {
                path: "g.bin".into(),
                balanced: true
            }
        );
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn flag_needs_value() {
        assert!(parse(&args("generate cnr --scale")).is_err());
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        match parse(&args("serve g.grb")).unwrap() {
            Command::Serve {
                graph,
                addr,
                server_threads,
                queue_depth,
                deadline_ms,
                retry,
                backoff_ms,
                threads,
                gamma,
                faults,
            } => {
                assert_eq!(graph, PathBuf::from("g.grb"));
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!(server_threads, 4);
                assert_eq!(queue_depth, 128);
                assert_eq!(deadline_ms, 2000);
                assert_eq!(retry, 3);
                assert_eq!(backoff_ms, 10);
                assert_eq!(threads, None);
                assert_eq!(gamma, 1.0);
                assert_eq!(faults, None);
            }
            _ => panic!(),
        }
        match parse(&args(
            "serve g.grb --addr 127.0.0.1:7101 --server-threads 8 --queue-depth 2 \
             --deadline-ms 500 --retry 5 --backoff-ms 2 --threads 4 --gamma 1.5 \
             --faults detect=panic:1",
        ))
        .unwrap()
        {
            Command::Serve {
                addr,
                server_threads,
                queue_depth,
                deadline_ms,
                retry,
                backoff_ms,
                threads,
                gamma,
                faults,
                ..
            } => {
                assert_eq!(addr, "127.0.0.1:7101");
                assert_eq!(server_threads, 8);
                assert_eq!(queue_depth, 2);
                assert_eq!(deadline_ms, 500);
                assert_eq!(retry, 5);
                assert_eq!(backoff_ms, 2);
                assert_eq!(threads, Some(4));
                assert_eq!(gamma, 1.5);
                assert_eq!(faults.as_deref(), Some("detect=panic:1"));
            }
            _ => panic!(),
        }
        assert!(parse(&args("serve")).is_err());
        assert!(parse(&args("serve g.grb --server-threads x")).is_err());
    }

    #[test]
    fn parses_query_inline_and_script() {
        assert_eq!(
            parse(&args("query --addr 127.0.0.1:7101 community-of 42")).unwrap(),
            Command::Query {
                addr: "127.0.0.1:7101".into(),
                script: None,
                command: Some("community-of 42".into()),
            }
        );
        assert_eq!(
            parse(&args("query --addr h:1 --script qs.txt")).unwrap(),
            Command::Query {
                addr: "h:1".into(),
                script: Some("qs.txt".into()),
                command: None,
            }
        );
        assert!(parse(&args("query community-of 1")).is_err(), "no --addr");
        assert!(parse(&args("query --addr h:1")).is_err(), "nothing to send");
        assert!(parse(&args("query --addr h:1 --frob x")).is_err());
    }
}
