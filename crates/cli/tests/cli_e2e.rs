//! End-to-end tests for the CLI surface: typed exit codes and the
//! `query` client against an in-process `grappolo_serve::Server`.

use grappolo_cli::run;
use grappolo_graph::gen::{planted_partition, PlantedConfig};
use grappolo_serve::{ServeConfig, Server};
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("grappolo_cli_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn missing_graph_file_exits_3() {
    let dir = tmp_dir("exit3");
    let missing = dir.join("no-such.grb");
    assert_eq!(run(&argv(&["stats", missing.to_str().unwrap()])), 3);
}

#[test]
fn unknown_generator_id_exits_4() {
    let dir = tmp_dir("exit4");
    let out = dir.join("out.grb");
    assert_eq!(
        run(&argv(&[
            "generate",
            "no-such-family",
            "-o",
            out.to_str().unwrap()
        ])),
        4
    );
    assert!(
        !out.exists(),
        "failed generate must not leave output behind"
    );
}

#[test]
fn malformed_graph_file_exits_4() {
    let dir = tmp_dir("exit4-parse");
    let bad = dir.join("bad.edges");
    std::fs::write(&bad, "0 not-a-vertex\n").unwrap();
    assert_eq!(run(&argv(&["stats", bad.to_str().unwrap()])), 4);
}

#[test]
fn usage_error_exits_2() {
    assert_eq!(run(&argv(&["no-such-subcommand"])), 2);
    assert_eq!(run(&argv(&["detect"])), 2);
}

#[test]
fn audit_distinguishes_finding_from_failure() {
    let dir = tmp_dir("audit-codes");
    let graph = dir.join("g.edges");
    // Two disjoint edges: {0,1} and {2,3}.
    std::fs::write(&graph, "0 1\n2 3\n").unwrap();

    // All four vertices in one community -> internally disconnected: exit 5.
    let bad = dir.join("bad.assign");
    std::fs::write(&bad, "0 0\n1 0\n2 0\n3 0\n").unwrap();
    assert_eq!(
        run(&argv(&[
            "audit",
            graph.to_str().unwrap(),
            bad.to_str().unwrap()
        ])),
        5
    );

    // Matching the component structure -> clean: exit 0.
    let good = dir.join("good.assign");
    std::fs::write(&good, "0 0\n1 0\n2 1\n3 1\n").unwrap();
    assert_eq!(
        run(&argv(&[
            "audit",
            graph.to_str().unwrap(),
            good.to_str().unwrap()
        ])),
        0
    );

    // Could-not-run (missing assignment file) -> exit 3, not 5.
    let missing = dir.join("no-such.assign");
    assert_eq!(
        run(&argv(&[
            "audit",
            graph.to_str().unwrap(),
            missing.to_str().unwrap()
        ])),
        3
    );
}

#[test]
fn query_round_trips_against_in_process_server() {
    let (graph, _) = planted_partition(&PlantedConfig {
        num_vertices: 200,
        num_communities: 4,
        seed: 7,
        ..Default::default()
    });
    let handle = Server::start_with_graph(graph, ServeConfig::default()).unwrap();
    let addr = handle.addr().to_string();

    // Inline command succeeds.
    assert_eq!(run(&argv(&["query", "--addr", &addr, "ping"])), 0);
    assert_eq!(run(&argv(&["query", "--addr", &addr, "stats"])), 0);

    // Script file with several commands succeeds end to end.
    let dir = tmp_dir("query-script");
    let script = dir.join("script.txt");
    std::fs::write(&script, "# smoke\nping\ncommunity-of 0\nmembers 0\nstats\n").unwrap();
    assert_eq!(
        run(&argv(&[
            "query",
            "--addr",
            &addr,
            "--script",
            script.to_str().unwrap()
        ])),
        0
    );

    // A request the server answers with `err ...` makes the client exit 1.
    assert_eq!(
        run(&argv(&["query", "--addr", &addr, "community-of", "999999"])),
        1
    );

    handle.shutdown();

    // Connecting to a dead server is an I/O failure: exit 3.
    assert_eq!(run(&argv(&["query", "--addr", &addr, "ping"])), 3);
}
