//! The immutable snapshot readers answer from, and the atomic cell that
//! swaps it.
//!
//! Queries never lock anything for longer than an `Arc` clone: the
//! [`SnapshotCell`] holds an `Arc<Snapshot>` behind a `parking_lot`
//! `RwLock`, readers clone the `Arc` under a brief read lock, and the
//! detect worker publishes a replacement with a brief write lock. A
//! failed or panicked detection simply never reaches `store`, so the
//! last good snapshot keeps serving.

use grappolo_core::Community;
use grappolo_graph::CsrGraph;
use parking_lot::RwLock;
use std::sync::Arc;

/// One consistent `(graph, assignment)` state of the service.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The graph the assignment was computed on.
    pub graph: CsrGraph,
    /// Dense community labels on `graph`'s vertices.
    pub assignment: Vec<Community>,
    /// Number of non-empty communities.
    pub num_communities: usize,
    /// Modularity of `assignment` on `graph`.
    pub modularity: f64,
    /// Publication counter: 0 for the startup snapshot, +1 per swap.
    pub epoch: u64,
}

impl Snapshot {
    /// The community of vertex `v`, or `None` if out of range.
    pub fn community_of(&self, v: usize) -> Option<Community> {
        self.assignment.get(v).copied()
    }

    /// Members of community `c` in ascending vertex order (deterministic
    /// response bytes regardless of who asks from which thread).
    pub fn members(&self, c: Community) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &label)| label == c)
            .map(|(v, _)| v)
            .collect()
    }

    /// The `stats` response body.
    pub fn stats_line(&self) -> String {
        format!(
            "n={} m={} communities={} modularity={:.6} epoch={}",
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.num_communities,
            self.modularity,
            self.epoch
        )
    }
}

/// Atomically swappable `Arc<Snapshot>` holder.
#[derive(Debug)]
pub struct SnapshotCell {
    cell: RwLock<Arc<Snapshot>>,
}

impl SnapshotCell {
    /// Wraps the startup snapshot (its `epoch` is forced to 0).
    pub fn new(mut initial: Snapshot) -> Self {
        initial.epoch = 0;
        Self {
            cell: RwLock::new(Arc::new(initial)),
        }
    }

    /// The current snapshot. Cheap: one `Arc` clone under a read lock.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.cell.read())
    }

    /// Publishes `next` as the new snapshot, stamping it with the next
    /// epoch. Returns the epoch it was published at.
    pub fn store(&self, mut next: Snapshot) -> u64 {
        let mut slot = self.cell.write();
        next.epoch = slot.epoch + 1;
        let epoch = next.epoch;
        *slot = Arc::new(next);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::from_unweighted_edges;

    fn snap(assignment: Vec<Community>) -> Snapshot {
        let graph = from_unweighted_edges(assignment.len(), [(0u32, 1u32)]).unwrap();
        let num_communities = assignment
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        Snapshot {
            graph,
            assignment,
            num_communities,
            modularity: 0.0,
            epoch: 99, // overwritten by the cell
        }
    }

    #[test]
    fn queries_read_the_assignment() {
        let s = snap(vec![0, 1, 0, 1]);
        assert_eq!(s.community_of(2), Some(0));
        assert_eq!(s.community_of(4), None);
        assert_eq!(s.members(1), vec![1, 3]);
        assert!(s.members(7).is_empty());
    }

    #[test]
    fn cell_swaps_and_stamps_epochs() {
        let cell = SnapshotCell::new(snap(vec![0, 0]));
        assert_eq!(cell.load().epoch, 0);
        let e1 = cell.store(snap(vec![0, 1]));
        assert_eq!(e1, 1);
        assert_eq!(cell.load().epoch, 1);
        assert_eq!(cell.load().assignment, vec![0, 1]);
        assert_eq!(cell.store(snap(vec![1, 1])), 2);
    }

    #[test]
    fn readers_keep_their_snapshot_across_swaps() {
        let cell = SnapshotCell::new(snap(vec![0, 0]));
        let held = cell.load();
        cell.store(snap(vec![0, 1]));
        assert_eq!(held.assignment, vec![0, 0], "held Arc is immutable");
        assert_eq!(cell.load().assignment, vec![0, 1]);
    }
}
