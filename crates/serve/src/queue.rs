//! Bounded request queue with explicit load shedding.
//!
//! Connection handlers [`try_push`](BoundedQueue::try_push) work items;
//! a full queue sheds the request immediately (the client gets an
//! explicit `err busy`, never an unbounded wait), and worker threads
//! [`pop`](BoundedQueue::pop) until the queue is closed *and* drained —
//! which is exactly the graceful-shutdown contract: accepted requests
//! complete, new ones are refused.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Outcome of a [`BoundedQueue::try_push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Push {
    /// The item was queued and a worker will process it.
    Accepted,
    /// The queue was full; the item was dropped (backpressure).
    Shed,
    /// The queue is closed (shutdown in progress); the item was dropped.
    Closed,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items. Capacity 0 sheds every
    /// push — useful for forcing the `busy` path in tests.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, item: T) -> Push {
        let mut state = self.lock();
        if state.closed {
            return Push::Closed;
        }
        if state.items.len() >= self.capacity {
            return Push::Shed;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Push::Accepted
    }

    /// Blocks until an item is available or the queue is closed and
    /// drained (then returns `None` — the worker's exit signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending items still drain, new pushes are
    /// refused, and idle workers wake up to exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Number of queued (unclaimed) items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Push::Accepted);
        assert_eq!(q.try_push(2), Push::Accepted);
        assert_eq!(q.try_push(3), Push::Shed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Push::Accepted, "slot freed");
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Push::Shed);
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1);
        q.try_push(2);
        q.close();
        assert_eq!(q.try_push(3), Push::Closed);
        assert_eq!(q.pop(), Some(1), "pending items still drain");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed = exit");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn items_cross_threads_in_order() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.pop() {
                    seen.push(v);
                }
                seen
            })
        };
        for i in 0..32 {
            while q.try_push(i) != Push::Accepted {
                std::thread::yield_now();
            }
        }
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }
}
