//! Deterministic fault injection — the failpoint layer behind every
//! robustness test in this crate.
//!
//! A [`FaultPlan`] maps named *points* (`"load"`, `"detect"`, `"persist"`,
//! `"persist-write"`, `"socket"`, `"deadline"`) to armed [`FaultAction`]s
//! with a trigger budget. Instrumented code calls [`FaultPlan::hit`] at the
//! point; an armed `Err` returns an injected error, an armed `Panic`
//! panics, and an unarmed or exhausted point is a no-op. Plans are
//! instance-based (one per server) and `Arc`-shared internally, so
//! concurrent tests never interfere through global state.
//!
//! Plans parse from a compact spec (`GRAPPOLO_FAULTS` or `--faults`):
//!
//! ```text
//! detect=panic:1,persist=err:2,persist-write=trunc:64
//! ```
//!
//! `err`/`panic` take an optional `:N` trigger count (default: unlimited);
//! `trunc:BYTES` arms a byte budget consumed by write paths through
//! [`FaultWriter`].

use rustc_hash::FxHashMap;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// What an armed failpoint does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected error from the instrumented operation.
    Err,
    /// Panic inside the instrumented operation.
    Panic,
    /// For write paths: let the first `N` bytes through, then fail the
    /// write — the mid-write truncation crash.
    Truncate(u64),
}

#[derive(Clone, Copy, Debug)]
struct Armed {
    action: FaultAction,
    /// Remaining triggers; `u32::MAX` means unlimited.
    times: u32,
}

/// The error an `Err`-armed failpoint injects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultError {
    /// The failpoint that fired.
    pub point: String,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at `{}`", self.point)
    }
}

impl std::error::Error for FaultError {}

/// A shared, mutable map of armed failpoints.
///
/// Cloning shares the underlying plan: a test can keep a clone and
/// re-arm points while the server runs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    points: Arc<Mutex<FxHashMap<String, Armed>>>,
}

impl FaultPlan {
    /// An empty plan (all points unarmed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `point` with `action` for `times` triggers (`u32::MAX` =
    /// unlimited). Re-arming replaces any previous state.
    pub fn arm(&self, point: &str, action: FaultAction, times: u32) {
        let mut map = self.lock();
        if times == 0 {
            map.remove(point);
        } else {
            map.insert(point.to_string(), Armed { action, times });
        }
    }

    /// Disarms `point`.
    pub fn disarm(&self, point: &str) {
        self.lock().remove(point);
    }

    /// Whether no point is armed.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Fires `point` if armed with `Err` or `Panic`, consuming one
    /// trigger. `Truncate` arms are left for [`FaultPlan::write_budget`].
    ///
    /// # Panics
    ///
    /// Panics (on purpose) when the point is armed with
    /// [`FaultAction::Panic`].
    pub fn hit(&self, point: &str) -> Result<(), FaultError> {
        match self.take(point, false) {
            None => Ok(()),
            Some(FaultAction::Truncate(_)) => Ok(()),
            Some(FaultAction::Err) => Err(FaultError {
                point: point.to_string(),
            }),
            Some(FaultAction::Panic) => panic!("injected panic at `{point}`"),
        }
    }

    /// Consumes one `Truncate` trigger at `point`, returning the byte
    /// budget for a [`FaultWriter`]. `Err`/`Panic` arms are not consumed.
    pub fn write_budget(&self, point: &str) -> Option<u64> {
        match self.take(point, true) {
            Some(FaultAction::Truncate(bytes)) => Some(bytes),
            _ => None,
        }
    }

    /// Takes one trigger from `point` if its armed action matches the
    /// requested kind (`truncate_only` selects `Truncate` arms).
    fn take(&self, point: &str, truncate_only: bool) -> Option<FaultAction> {
        let mut map = self.lock();
        let armed = map.get_mut(point)?;
        if matches!(armed.action, FaultAction::Truncate(_)) != truncate_only {
            return None;
        }
        let action = armed.action;
        if armed.times != u32::MAX {
            armed.times -= 1;
            if armed.times == 0 {
                map.remove(point);
            }
        }
        Some(action)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<String, Armed>> {
        // A panic-armed point panicking while the lock is held is not
        // possible (hit() panics after release), but recover regardless.
        self.points.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parses a plan spec: comma-separated `point=action` entries where
    /// `action` is `err[:N]`, `panic[:N]`, or `trunc:BYTES`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let plan = Self::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (point, action) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry `{entry}` is not `point=action`"))?;
            let (kind, arg) = match action.split_once(':') {
                Some((k, a)) => (k, Some(a)),
                None => (action, None),
            };
            let parse_times = |arg: Option<&str>| -> Result<u32, String> {
                match arg {
                    None => Ok(u32::MAX),
                    Some(a) => a
                        .parse::<u32>()
                        .map_err(|e| format!("bad trigger count in `{entry}`: {e}")),
                }
            };
            let (act, times) = match kind {
                "err" => (FaultAction::Err, parse_times(arg)?),
                "panic" => (FaultAction::Panic, parse_times(arg)?),
                "trunc" => {
                    let bytes = arg
                        .ok_or_else(|| format!("`{entry}` needs `trunc:BYTES`"))?
                        .parse::<u64>()
                        .map_err(|e| format!("bad byte budget in `{entry}`: {e}"))?;
                    (FaultAction::Truncate(bytes), 1)
                }
                other => return Err(format!("unknown fault action `{other}` in `{entry}`")),
            };
            plan.arm(point.trim(), act, times);
        }
        Ok(plan)
    }

    /// Parses the `GRAPPOLO_FAULTS` environment variable; unset or empty
    /// yields an empty plan.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("GRAPPOLO_FAULTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(Self::new()),
        }
    }
}

/// A [`Write`] adapter that forwards the first `budget` bytes and then
/// fails every write — the injected mid-write truncation used by the
/// persistence crash tests.
pub struct FaultWriter<W> {
    inner: W,
    budget: u64,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner` with a byte budget.
    pub fn new(inner: W, budget: u64) -> Self {
        Self { inner, budget }
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.budget == 0 {
            return Err(std::io::Error::other(
                "injected write fault: byte budget exhausted",
            ));
        }
        let allowed = (self.budget.min(buf.len() as u64)) as usize;
        let written = self.inner.write(&buf[..allowed])?;
        self.budget -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_are_noops() {
        let plan = FaultPlan::new();
        assert!(plan.hit("load").is_ok());
        assert!(plan.write_budget("persist-write").is_none());
        assert!(plan.is_empty());
    }

    #[test]
    fn err_trigger_budget_counts_down() {
        let plan = FaultPlan::new();
        plan.arm("persist", FaultAction::Err, 2);
        assert!(plan.hit("persist").is_err());
        assert!(plan.hit("persist").is_err());
        assert!(plan.hit("persist").is_ok(), "budget exhausted");
        assert!(plan.is_empty());
    }

    #[test]
    fn unlimited_never_exhausts() {
        let plan = FaultPlan::new();
        plan.arm("load", FaultAction::Err, u32::MAX);
        for _ in 0..100 {
            assert!(plan.hit("load").is_err());
        }
    }

    #[test]
    #[should_panic(expected = "injected panic at `detect`")]
    fn panic_action_panics() {
        let plan = FaultPlan::new();
        plan.arm("detect", FaultAction::Panic, 1);
        let _ = plan.hit("detect");
    }

    #[test]
    fn truncate_budget_is_separate_from_hit() {
        let plan = FaultPlan::new();
        plan.arm("persist-write", FaultAction::Truncate(64), 1);
        // hit() ignores truncate arms.
        assert!(plan.hit("persist-write").is_ok());
        assert_eq!(plan.write_budget("persist-write"), Some(64));
        assert!(plan.write_budget("persist-write").is_none(), "consumed");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new();
        let other = plan.clone();
        other.arm("socket", FaultAction::Err, 1);
        assert!(plan.hit("socket").is_err());
        assert!(other.hit("socket").is_ok());
    }

    #[test]
    fn parses_spec_grammar() {
        let plan =
            FaultPlan::parse("detect=panic:1, persist=err:2 ,persist-write=trunc:100,load=err")
                .unwrap();
        assert!(plan.hit("persist").is_err());
        assert!(plan.hit("persist").is_err());
        assert!(plan.hit("persist").is_ok());
        assert_eq!(plan.write_budget("persist-write"), Some(100));
        assert!(plan.hit("load").is_err());
        assert!(plan.hit("load").is_err()); // unlimited

        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("p=warp").is_err());
        assert!(FaultPlan::parse("p=err:x").is_err());
        assert!(FaultPlan::parse("p=trunc").is_err());
    }

    #[test]
    fn fault_writer_truncates_at_budget() {
        let mut out = Vec::new();
        let mut w = FaultWriter::new(&mut out, 5);
        assert_eq!(w.write(b"abc").unwrap(), 3);
        assert_eq!(w.write(b"defg").unwrap(), 2, "clamped to budget");
        assert!(w.write(b"h").is_err(), "budget exhausted");
        assert_eq!(out, b"abcde");
    }
}
