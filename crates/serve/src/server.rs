//! The resident partition server.
//!
//! One listener thread accepts connections (nonblocking, polling the
//! stop flag so SIGTERM drains promptly); each connection gets a reader
//! thread that parses one request per line and submits it to a
//! [`BoundedQueue`] shared by `server_threads` worker threads. The
//! reader waits for the worker's reply up to the per-request deadline —
//! queue-full requests shed immediately with `err busy`, expired ones
//! answer `err deadline-exceeded` (the work may still finish in the
//! background; only the response is abandoned).
//!
//! Reads (`community-of`, `members`, `stats`) answer from the current
//! [`Snapshot`] without any coordination beyond an `Arc` clone.
//! Mutations (`update`, `snapshot-save`) serialize on a mutate lock;
//! a failed or panicked re-detection never reaches the snapshot cell,
//! so the last good snapshot keeps serving — the crash-safety
//! contract the fault-injection tests pin down.

use crate::faults::FaultPlan;
use crate::persist::{self, BackoffPolicy};
use crate::protocol::{self, Request};
use crate::queue::{BoundedQueue, Push};
use crate::snapshot::{Snapshot, SnapshotCell};
use grappolo_core::{
    detect_communities_cancellable, update_communities_cancellable, CancelToken, DynamicError,
    LouvainConfig, SweepMode,
};
use grappolo_graph::io::{self, IoError};
use grappolo_graph::{parse_edge_batch, CsrGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads answering requests.
    pub server_threads: usize,
    /// Bounded request queue capacity; a full queue sheds with `err busy`.
    pub queue_depth: usize,
    /// Per-request response deadline.
    pub deadline: Duration,
    /// Retry schedule for persistence.
    pub backoff: BackoffPolicy,
    /// Detection configuration for startup and `update` re-convergence.
    pub detect: LouvainConfig,
    /// Armed failpoints (empty in production).
    pub faults: FaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            server_threads: 4,
            queue_depth: 128,
            deadline: Duration::from_secs(2),
            backoff: BackoffPolicy::default(),
            detect: LouvainConfig::builder()
                .sweep(SweepMode::Active)
                .build()
                .expect("default serve detect config is valid"),
            faults: FaultPlan::new(),
        }
    }
}

/// Service counters, exported by the `metrics` protocol command.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Request lines submitted (well-formed or not).
    pub requests: AtomicU64,
    /// Requests refused because the queue was full.
    pub shed: AtomicU64,
    /// Requests whose deadline expired before a reply.
    pub deadline_expired: AtomicU64,
    /// `update` runs that errored or panicked (snapshot kept).
    pub detect_failures: AtomicU64,
    /// `snapshot-save` runs that exhausted their retry budget.
    pub persist_failures: AtomicU64,
    /// Successful snapshot swaps.
    pub snapshot_swaps: AtomicU64,
}

impl Metrics {
    fn line(&self) -> String {
        format!(
            "ok requests={} shed={} deadline-expired={} detect-failures={} \
             persist-failures={} snapshot-swaps={}",
            self.requests.load(Ordering::SeqCst),
            self.shed.load(Ordering::SeqCst),
            self.deadline_expired.load(Ordering::SeqCst),
            self.detect_failures.load(Ordering::SeqCst),
            self.persist_failures.load(Ordering::SeqCst),
            self.snapshot_swaps.load(Ordering::SeqCst),
        )
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum ServeError {
    /// Could not bind or configure the listening socket.
    Bind(std::io::Error),
    /// Could not load the graph (includes injected `load` faults).
    Load(IoError),
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "binding listener: {e}"),
            ServeError::Load(e) => write!(f, "loading graph: {e}"),
            ServeError::Config(m) => write!(f, "invalid serve config: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct WorkItem {
    request: Request,
    reply: mpsc::Sender<String>,
}

struct ServerState {
    cell: SnapshotCell,
    detect: LouvainConfig,
    faults: FaultPlan,
    backoff: BackoffPolicy,
    deadline: Duration,
    metrics: Metrics,
    cancel: CancelToken,
    /// Serializes `update`/`snapshot-save` so at most one mutation runs.
    mutate: parking_lot::Mutex<()>,
}

/// The resident server. Construct with [`Server::start_from_path`] or
/// [`Server::start_with_graph`].
pub struct Server;

impl Server {
    /// Loads a graph (any `grappolo` format), runs the initial detection,
    /// and starts serving.
    pub fn start_from_path(path: &Path, config: ServeConfig) -> Result<ServerHandle, ServeError> {
        config
            .faults
            .hit("load")
            .map_err(|e| ServeError::Load(IoError::Io(std::io::Error::other(e.to_string()))))?;
        let graph = io::load_path(path).map_err(ServeError::Load)?;
        Self::start_with_graph(graph, config)
    }

    /// Runs the initial detection on `graph` and starts serving. The
    /// `detect` failpoint is *not* consulted here — it targets `update`
    /// re-detections, so a fault-armed server still starts with a good
    /// snapshot to preserve.
    pub fn start_with_graph(
        graph: CsrGraph,
        config: ServeConfig,
    ) -> Result<ServerHandle, ServeError> {
        if config.server_threads == 0 {
            return Err(ServeError::Config("server_threads must be ≥ 1".into()));
        }
        let cancel = CancelToken::new();
        let result = detect_communities_cancellable(&graph, &config.detect, &cancel)
            .expect("fresh token is never cancelled");
        let initial = Snapshot {
            graph,
            assignment: result.assignment,
            num_communities: result.num_communities,
            modularity: result.modularity,
            epoch: 0,
        };
        let state = Arc::new(ServerState {
            cell: SnapshotCell::new(initial),
            detect: config.detect,
            faults: config.faults,
            backoff: config.backoff,
            deadline: config.deadline,
            metrics: Metrics::default(),
            cancel,
            mutate: parking_lot::Mutex::new(()),
        });
        let queue = Arc::new(BoundedQueue::<WorkItem>::new(config.queue_depth));
        let stop = Arc::new(AtomicBool::new(false));

        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Bind)?;

        let workers: Vec<JoinHandle<()>> = (0..config.server_threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Some(item) = queue.pop() {
                        let response = handle_request(&state, item.request);
                        let _ = item.reply.send(response);
                    }
                })
            })
            .collect();

        let listener_join = {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Request/response round trips are one small
                            // packet each way; Nagle + delayed ACK would
                            // add ~40ms per turn otherwise.
                            let _ = stream.set_nodelay(true);
                            if state.faults.hit("socket").is_err() {
                                // Injected socket failure: drop the
                                // connection on the floor; the client sees
                                // EOF and may retry.
                                drop(stream);
                                continue;
                            }
                            let queue = Arc::clone(&queue);
                            let state = Arc::clone(&state);
                            std::thread::spawn(move || handle_connection(stream, state, queue));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        };

        Ok(ServerHandle {
            addr,
            stop,
            queue,
            state,
            listener_join: Some(listener_join),
            workers,
        })
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](ServerHandle::shutdown) leaves the threads running for
/// the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<WorkItem>>,
    state: Arc<ServerState>,
    listener_join: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.state.metrics
    }

    /// The current snapshot (what queries answer from).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.state.cell.load()
    }

    /// The live fault plan — tests re-arm failpoints mid-run through it.
    pub fn faults(&self) -> FaultPlan {
        self.state.faults.clone()
    }

    /// Graceful drain: stop accepting, cancel any in-flight detection,
    /// let queued requests finish, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.state.cancel.cancel();
        self.queue.close();
        if let Some(j) = self.listener_join.take() {
            let _ = j.join();
        }
        for j in self.workers.drain(..) {
            let _ = j.join();
        }
    }

    /// Blocks until `should_stop` returns true (polled every `poll`),
    /// then drains. The CLI passes the SIGTERM latch here.
    pub fn serve_until(self, should_stop: impl Fn() -> bool, poll: Duration) {
        while !should_stop() {
            std::thread::sleep(poll);
        }
        self.shutdown();
    }
}

fn handle_connection(
    stream: TcpStream,
    state: Arc<ServerState>,
    queue: Arc<BoundedQueue<WorkItem>>,
) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" {
            break;
        }
        state.metrics.requests.fetch_add(1, Ordering::SeqCst);
        // One write syscall per response: a split payload/newline write
        // would re-introduce the Nagle stall set_nodelay avoids.
        let mut response = submit_and_wait(&state, &queue, line);
        response.push('\n');
        if writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn submit_and_wait(state: &ServerState, queue: &BoundedQueue<WorkItem>, line: &str) -> String {
    let request = match protocol::parse(line) {
        Ok(r) => r,
        Err(e) => return format!("err bad-request {e}"),
    };
    // The `deadline` failpoint makes deadline expiry deterministic: an
    // armed request is treated as already expired, no timing races.
    if state.faults.hit("deadline").is_err() {
        state
            .metrics
            .deadline_expired
            .fetch_add(1, Ordering::SeqCst);
        return "err deadline-exceeded".to_string();
    }
    let (tx, rx) = mpsc::channel();
    match queue.try_push(WorkItem { request, reply: tx }) {
        Push::Accepted => match rx.recv_timeout(state.deadline) {
            Ok(response) => response,
            Err(_) => {
                state
                    .metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::SeqCst);
                "err deadline-exceeded".to_string()
            }
        },
        Push::Shed => {
            state.metrics.shed.fetch_add(1, Ordering::SeqCst);
            "err busy queue full, retry later".to_string()
        }
        Push::Closed => "err shutting-down".to_string(),
    }
}

fn handle_request(state: &ServerState, request: Request) -> String {
    match request {
        Request::Ping => "ok pong".to_string(),
        Request::Stats => format!("ok {}", state.cell.load().stats_line()),
        Request::Metrics => state.metrics.line(),
        Request::CommunityOf(v) => {
            let snap = state.cell.load();
            match snap.community_of(v) {
                Some(c) => format!("ok {c}"),
                None => format!(
                    "err unknown-vertex {v} (graph has {} vertices)",
                    snap.graph.num_vertices()
                ),
            }
        }
        Request::Members(c) => protocol::members_response(&state.cell.load().members(c)),
        Request::Update(path) => run_update(state, &path),
        Request::SnapshotSave(path) => run_save(state, &path),
    }
}

/// Applies an edge-delta batch file: load → parse → cancellable
/// re-convergence under `catch_unwind` → atomic snapshot swap. Every
/// failure mode leaves the previous snapshot serving.
fn run_update(state: &ServerState, path: &Path) -> String {
    let _guard = state.mutate.lock();
    if state.cancel.is_cancelled() {
        return "err shutting-down".to_string();
    }
    if let Err(e) = state.faults.hit("load") {
        return format!("err load-failed {e}");
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return format!("err load-failed reading {}: {e}", path.display()),
    };
    let batch = match parse_edge_batch(&text) {
        Ok(b) => b,
        Err(e) => return format!("err bad-batch {}:{}", path.display(), e),
    };
    let snap = state.cell.load();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        state
            .faults
            .hit("detect")
            .map_err(|e| DynamicError::Failed(e.to_string()))?;
        update_communities_cancellable(
            &snap.graph,
            &snap.assignment,
            Some(snap.modularity),
            &batch,
            &state.detect,
            &state.cancel,
        )
    }));
    match outcome {
        Err(_) => {
            state.metrics.detect_failures.fetch_add(1, Ordering::SeqCst);
            "err detect-failed panic during re-detection (snapshot preserved)".to_string()
        }
        Ok(Err(DynamicError::Cancelled(_))) => "err shutting-down".to_string(),
        Ok(Err(DynamicError::Failed(m))) => {
            state.metrics.detect_failures.fetch_add(1, Ordering::SeqCst);
            format!("err detect-failed {m} (snapshot preserved)")
        }
        Ok(Ok(out)) => {
            let next = Snapshot {
                graph: out.graph,
                assignment: out.assignment,
                num_communities: out.num_communities,
                modularity: out.modularity,
                epoch: 0, // stamped by the cell
            };
            let epoch = state.cell.store(next);
            state.metrics.snapshot_swaps.fetch_add(1, Ordering::SeqCst);
            format!(
                "ok updated communities={} modularity={:.6} epoch={epoch}",
                out.num_communities, out.modularity
            )
        }
    }
}

fn run_save(state: &ServerState, path: &Path) -> String {
    let _guard = state.mutate.lock();
    let snap = state.cell.load();
    match persist::save_snapshot_atomic(&snap, path, &state.backoff, &state.faults) {
        Ok(()) => format!(
            "ok saved {} {} epoch={}",
            path.display(),
            persist::assignment_path(path).display(),
            snap.epoch
        ),
        Err(e) => {
            state
                .metrics
                .persist_failures
                .fetch_add(1, Ordering::SeqCst);
            format!("err persist-failed {e}")
        }
    }
}
