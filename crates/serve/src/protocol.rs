//! The line-oriented wire protocol.
//!
//! One request per line, one response line per request, in order. Every
//! response starts with `ok ` or `err `; error responses carry a
//! machine-readable reason word first (`busy`, `deadline-exceeded`,
//! `bad-request`, `unknown-vertex`, `detect-failed`, `persist-failed`,
//! `load-failed`, `shutting-down`) followed by human context. Responses
//! are pure functions of the published snapshot, so their bytes are
//! identical regardless of which worker thread answers.
//!
//! ```text
//! ping                      → ok pong
//! community-of <v>          → ok <community>
//! members <c>               → ok <count> <v0> <v1> …
//! stats                     → ok n=… m=… communities=… modularity=… epoch=…
//! metrics                   → ok requests=… shed=… …
//! update <batch-file>       → ok updated communities=… modularity=… epoch=…
//! snapshot-save <path>      → ok saved <path> <path>.assign epoch=…
//! quit                      → (closes the connection)
//! ```

use std::path::PathBuf;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Community label of one vertex.
    CommunityOf(usize),
    /// Member vertices of one community.
    Members(u32),
    /// Snapshot-level statistics.
    Stats,
    /// Service counters (requests, shed, deadline, …).
    Metrics,
    /// Apply an edge-delta batch file and re-converge.
    Update(PathBuf),
    /// Persist the current snapshot (graph + assignment) crash-safely.
    SnapshotSave(PathBuf),
}

/// Parses one request line. The path commands take the rest of the line
/// verbatim (paths may contain spaces).
pub fn parse(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let arg = |name: &str| -> Result<&str, String> {
        if rest.is_empty() {
            Err(format!("`{verb}` needs <{name}>"))
        } else {
            Ok(rest)
        }
    };
    let bare = |req: Request| -> Result<Request, String> {
        if rest.is_empty() {
            Ok(req)
        } else {
            Err(format!("`{verb}` takes no argument"))
        }
    };
    match verb {
        "ping" => bare(Request::Ping),
        "stats" => bare(Request::Stats),
        "metrics" => bare(Request::Metrics),
        "community-of" => {
            let v = arg("vertex")?
                .parse::<usize>()
                .map_err(|e| format!("bad vertex: {e}"))?;
            Ok(Request::CommunityOf(v))
        }
        "members" => {
            let c = arg("community")?
                .parse::<u32>()
                .map_err(|e| format!("bad community: {e}"))?;
            Ok(Request::Members(c))
        }
        "update" => Ok(Request::Update(PathBuf::from(arg("batch-file")?))),
        "snapshot-save" => Ok(Request::SnapshotSave(PathBuf::from(arg("path")?))),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Formats the `members` success response: count then ascending vertices.
pub fn members_response(members: &[usize]) -> String {
    let mut out = format!("ok {}", members.len());
    for v in members {
        out.push(' ');
        out.push_str(&v.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(parse("ping"), Ok(Request::Ping));
        assert_eq!(parse("  stats  "), Ok(Request::Stats));
        assert_eq!(parse("metrics"), Ok(Request::Metrics));
        assert_eq!(parse("community-of 17"), Ok(Request::CommunityOf(17)));
        assert_eq!(parse("members 3"), Ok(Request::Members(3)));
        assert_eq!(
            parse("update /tmp/batch file.txt"),
            Ok(Request::Update(PathBuf::from("/tmp/batch file.txt")))
        );
        assert_eq!(
            parse("snapshot-save /tmp/out.grb"),
            Ok(Request::SnapshotSave(PathBuf::from("/tmp/out.grb")))
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("community-of").is_err());
        assert!(parse("community-of x").is_err());
        assert!(parse("members -1").is_err());
        assert!(parse("update").is_err());
        assert!(parse("snapshot-save").is_err());
        assert!(parse("ping extra").is_err());
        assert!(parse("stats now").is_err());
        assert!(parse("frobnicate 1").is_err());
    }

    #[test]
    fn members_response_format() {
        assert_eq!(members_response(&[]), "ok 0");
        assert_eq!(members_response(&[2, 5, 9]), "ok 3 2 5 9");
    }
}
