//! # grappolo-serve
//!
//! A crash-safe resident partition service for grappolo-rs: load a graph
//! once, keep the detected communities hot in memory, answer concurrent
//! queries over a minimal line-oriented TCP protocol, and apply dynamic
//! edge-batch updates without ever blocking readers.
//!
//! Robustness properties (each pinned by a fault-injection test):
//!
//! * **Readers never block** — queries answer from an immutable
//!   [`Snapshot`] behind an atomically swapped `Arc` ([`SnapshotCell`]).
//! * **Failure keeps the last good snapshot** — a failed or panicked
//!   re-detection (`update`) is caught and reported; the published
//!   snapshot is untouched.
//! * **Crash-safe persistence** — `snapshot-save` writes temp + fsync +
//!   atomic rename with retry/backoff ([`persist`]); a fault at any byte
//!   leaves the previous files intact and no temp siblings.
//! * **Backpressure, not collapse** — a bounded request queue
//!   ([`queue`]) sheds overload with an explicit `err busy`.
//! * **Deadlines** — every request answers within the configured
//!   deadline or reports `err deadline-exceeded`.
//! * **Graceful drain** — SIGTERM stops accepting, cancels in-flight
//!   detection cooperatively, drains queued requests, and exits with no
//!   partial files.
//! * **Determinism** — responses are pure functions of the snapshot and
//!   detection is bitwise deterministic, so response bytes are identical
//!   across server thread counts.
//!
//! The [`faults`] failpoint layer (`GRAPPOLO_FAULTS=point=action,…`)
//! injects errors, panics, and mid-write truncations at the load,
//! detect, persist, socket, and deadline paths — deterministically, per
//! server instance.

#![warn(missing_docs)]

pub mod faults;
pub mod persist;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use faults::{FaultAction, FaultError, FaultPlan, FaultWriter};
pub use persist::{save_snapshot_atomic, with_retry, BackoffPolicy};
pub use protocol::Request;
pub use queue::{BoundedQueue, Push};
pub use server::{Metrics, ServeConfig, ServeError, Server, ServerHandle};
pub use snapshot::{Snapshot, SnapshotCell};
