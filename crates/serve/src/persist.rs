//! Crash-safe snapshot persistence with retry and backoff.
//!
//! A snapshot saves as two sibling files, each written through
//! [`grappolo_graph::io::write_atomic`] (temp + fsync + rename): the
//! graph at the requested path (`.grb` v2) and the assignment at
//! `<path>.assign` (`vertex community` lines). A crash or injected
//! fault at any byte leaves the previous files byte-intact and no temp
//! siblings behind. Transient failures retry under an exponential
//! [`BackoffPolicy`]; the `persist` failpoint fails whole attempts and
//! `persist-write` truncates mid-write (exercising the temp-file
//! cleanup path).

use crate::faults::{FaultPlan, FaultWriter};
use crate::snapshot::Snapshot;
use grappolo_graph::io::{self, IoError};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Retry schedule for transient persistence failures: `attempts` tries,
/// sleeping `base * 2^i` between try `i` and `i + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts (≥ 1).
    pub attempts: u32,
    /// Base delay before the first retry.
    pub base: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            base: Duration::from_millis(10),
        }
    }
}

impl BackoffPolicy {
    /// The sleep before retry number `retry` (0-based).
    pub fn delay(&self, retry: u32) -> Duration {
        self.base.saturating_mul(1u32 << retry.min(16))
    }
}

/// Runs `op` up to `policy.attempts` times with exponential backoff,
/// returning the first success or the last error.
pub fn with_retry<T>(
    policy: &BackoffPolicy,
    mut op: impl FnMut() -> Result<T, IoError>,
) -> Result<T, IoError> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for i in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
        if i + 1 < attempts {
            std::thread::sleep(policy.delay(i));
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// The assignment sibling of a snapshot path.
pub fn assignment_path(graph_path: &Path) -> PathBuf {
    let mut s = graph_path.as_os_str().to_os_string();
    s.push(".assign");
    PathBuf::from(s)
}

/// Formats an assignment as `vertex community` lines.
pub fn format_assignment(assignment: &[u32]) -> String {
    let mut text = String::with_capacity(assignment.len() * 8);
    for (v, c) in assignment.iter().enumerate() {
        text.push_str(&format!("{v} {c}\n"));
    }
    text
}

/// Persists `snap` crash-safely at `path` (+ `<path>.assign`), retrying
/// transient failures per `policy`. Consults the `persist` (whole-attempt
/// error) and `persist-write` (mid-write truncation) failpoints on every
/// attempt.
pub fn save_snapshot_atomic(
    snap: &Snapshot,
    path: &Path,
    policy: &BackoffPolicy,
    faults: &FaultPlan,
) -> Result<(), IoError> {
    with_retry(policy, || {
        faults
            .hit("persist")
            .map_err(|e| IoError::Io(std::io::Error::other(e.to_string())))?;
        let budget = faults.write_budget("persist-write");
        io::write_atomic(path, |w| match budget {
            Some(b) => {
                let mut fw = FaultWriter::new(w, b);
                io::write_grb_v2(&snap.graph, &mut fw)
            }
            None => io::write_grb_v2(&snap.graph, w),
        })?;
        io::write_bytes_atomic(
            assignment_path(path),
            format_assignment(&snap.assignment).as_bytes(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultAction;
    use grappolo_graph::from_unweighted_edges;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn snap() -> Snapshot {
        let graph = from_unweighted_edges(4, [(0u32, 1u32), (1, 2), (2, 3)]).unwrap();
        Snapshot {
            graph,
            assignment: vec![0, 0, 1, 1],
            num_communities: 2,
            modularity: 0.25,
            epoch: 3,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("grappolo_serve_persist")
            .join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn backoff_delays_double() {
        let p = BackoffPolicy {
            attempts: 4,
            base: Duration::from_millis(2),
        };
        assert_eq!(p.delay(0), Duration::from_millis(2));
        assert_eq!(p.delay(1), Duration::from_millis(4));
        assert_eq!(p.delay(2), Duration::from_millis(8));
    }

    #[test]
    fn with_retry_recovers_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let policy = BackoffPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
        };
        let out = with_retry(&policy, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(IoError::Io(std::io::Error::other("flaky")))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn with_retry_exhausts_and_reports_last_error() {
        let calls = AtomicU32::new(0);
        let policy = BackoffPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
        };
        let err = with_retry::<()>(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(IoError::Io(std::io::Error::other("always")))
        })
        .unwrap_err();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(err.to_string().contains("always"));
    }

    #[test]
    fn save_round_trips_both_files() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("snap.grb");
        let s = snap();
        save_snapshot_atomic(&s, &path, &BackoffPolicy::default(), &FaultPlan::new()).unwrap();
        let g = io::load_path(&path).unwrap();
        assert!(g.bitwise_eq(&s.graph));
        let text = std::fs::read_to_string(assignment_path(&path)).unwrap();
        assert_eq!(text, "0 0\n1 0\n2 1\n3 1\n");
        assert!(io::list_tmp_siblings(&dir).is_empty());
    }

    #[test]
    fn persist_fault_retries_then_succeeds() {
        let dir = tmp_dir("retry");
        let path = dir.join("snap.grb");
        let faults = FaultPlan::new();
        faults.arm("persist", FaultAction::Err, 2);
        let policy = BackoffPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
        };
        save_snapshot_atomic(&snap(), &path, &policy, &faults).unwrap();
        assert!(io::load_path(&path).is_ok());
        assert!(faults.is_empty(), "both injected failures were consumed");
    }

    #[test]
    fn truncation_fault_preserves_previous_files_and_leaks_no_temp() {
        let dir = tmp_dir("trunc");
        let path = dir.join("snap.grb");
        let s = snap();
        // A good save first: these bytes must survive the faulty one.
        save_snapshot_atomic(&s, &path, &BackoffPolicy::default(), &FaultPlan::new()).unwrap();
        let good_graph = std::fs::read(&path).unwrap();
        let good_assign = std::fs::read(assignment_path(&path)).unwrap();

        let faults = FaultPlan::new();
        faults.arm("persist-write", FaultAction::Truncate(16), 1);
        let policy = BackoffPolicy {
            attempts: 1,
            base: Duration::from_millis(1),
        };
        let err = save_snapshot_atomic(&s, &path, &policy, &faults).unwrap_err();
        assert!(err.to_string().contains("injected write fault"), "{err}");
        assert_eq!(std::fs::read(&path).unwrap(), good_graph);
        assert_eq!(std::fs::read(assignment_path(&path)).unwrap(), good_assign);
        assert!(io::list_tmp_siblings(&dir).is_empty(), "temp file leaked");
    }

    #[test]
    fn truncation_fault_with_retry_budget_recovers() {
        // One truncation arm, two attempts: the first write dies mid-file,
        // the retry consumes no budget and lands cleanly.
        let dir = tmp_dir("trunc_retry");
        let path = dir.join("snap.grb");
        let faults = FaultPlan::new();
        faults.arm("persist-write", FaultAction::Truncate(16), 1);
        let policy = BackoffPolicy {
            attempts: 2,
            base: Duration::from_millis(1),
        };
        save_snapshot_atomic(&snap(), &path, &policy, &faults).unwrap();
        assert!(io::load_path(&path).is_ok());
        assert!(io::list_tmp_siblings(&dir).is_empty());
    }
}
