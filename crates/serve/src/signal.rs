//! Minimal SIGTERM/SIGINT latch without a libc dependency.
//!
//! The handler only sets an `AtomicBool` (the one async-signal-safe
//! thing worth doing); the accept loop polls [`term_requested`] and
//! drives the graceful drain from ordinary thread context.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_term(_signum: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT latch. Idempotent.
pub fn install_term_handler() {
    unsafe {
        signal(SIGTERM, on_term);
        signal(SIGINT, on_term);
    }
}

/// Whether a termination signal has arrived since the last reset.
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}

/// Clears the latch (tests; or a supervisor that handles the signal
/// itself and restarts the serve loop).
pub fn reset_term_flag() {
    TERM_FLAG.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_sets_and_resets() {
        reset_term_flag();
        assert!(!term_requested());
        on_term(SIGTERM);
        assert!(term_requested());
        reset_term_flag();
        assert!(!term_requested());
    }
}
