//! End-to-end tests for the resident partition service: real TCP
//! clients against an in-process server, with deterministic fault
//! injection through the failpoint layer.

use grappolo_graph::gen::{planted_partition, PlantedConfig};
use grappolo_graph::{io, CsrGraph};
use grappolo_serve::{
    BackoffPolicy, FaultAction, FaultPlan, ServeConfig, ServeError, Server, ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn test_graph() -> CsrGraph {
    planted_partition(&PlantedConfig {
        num_vertices: 300,
        num_communities: 6,
        seed: 42,
        ..Default::default()
    })
    .0
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("grappolo_serve_e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config_with_threads(server_threads: usize) -> ServeConfig {
    ServeConfig {
        server_threads,
        ..ServeConfig::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Self {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        Self {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn req(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        self.writer.flush().unwrap();
        let mut response = String::new();
        self.reader.read_line(&mut response).unwrap();
        assert!(
            response.ends_with('\n'),
            "connection closed mid-response to `{line}`"
        );
        response.trim_end().to_string()
    }
}

/// The canonical query script the determinism tests byte-compare.
fn query_script(handle: &ServerHandle) -> Vec<String> {
    let mut c = Client::connect(handle);
    let mut out = Vec::new();
    out.push(c.req("ping"));
    out.push(c.req("stats"));
    for v in [0usize, 1, 57, 150, 299] {
        out.push(c.req(&format!("community-of {v}")));
    }
    for comm in 0u32..6 {
        out.push(c.req(&format!("members {comm}")));
    }
    out.push(c.req("community-of 10000")); // error responses are bytes too
    out
}

#[test]
fn serves_basic_queries() {
    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    let mut c = Client::connect(&handle);
    assert_eq!(c.req("ping"), "ok pong");
    let stats = c.req("stats");
    assert!(stats.starts_with("ok n=300 "), "{stats}");
    assert!(stats.contains("epoch=0"), "{stats}");
    let first = c.req("community-of 0");
    assert!(first.starts_with("ok "), "{first}");
    let label: u32 = first[3..].parse().unwrap();
    let members = c.req(&format!("members {label}"));
    assert!(members.starts_with("ok "), "{members}");
    // Vertex 0 appears in its own community's member list.
    let fields: Vec<&str> = members.split(' ').collect();
    assert!(fields[2..].contains(&"0"), "{members}");
    assert!(c
        .req("community-of 10000")
        .starts_with("err unknown-vertex"));
    assert!(c.req("frobnicate").starts_with("err bad-request"));
    handle.shutdown();
}

#[test]
fn responses_byte_identical_across_1_8_16_server_threads() {
    let mut transcripts = Vec::new();
    for threads in [1usize, 8, 16] {
        let handle = Server::start_with_graph(test_graph(), config_with_threads(threads)).unwrap();
        transcripts.push((threads, query_script(&handle)));
        handle.shutdown();
    }
    let (_, reference) = &transcripts[0];
    for (threads, got) in &transcripts[1..] {
        assert_eq!(
            got, reference,
            "responses diverged between 1 and {threads} server threads"
        );
    }
}

#[test]
fn update_applies_batch_and_bumps_epoch() {
    let dir = tmp_dir("update");
    let batch = dir.join("batch.txt");
    std::fs::write(&batch, "+ 0 150 5.0\n+ 1 151 5.0\n").unwrap();
    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    let mut c = Client::connect(&handle);
    let before = c.req("stats");
    let resp = c.req(&format!("update {}", batch.display()));
    assert!(resp.starts_with("ok updated "), "{resp}");
    assert!(resp.contains("epoch=1"), "{resp}");
    let after = c.req("stats");
    assert_ne!(before, after);
    assert!(after.contains("epoch=1"), "{after}");
    assert_eq!(handle.snapshot().graph.edge_weight(0, 150), Some(5.0));
    handle.shutdown();
}

#[test]
fn injected_load_failure_keeps_snapshot() {
    for threads in [1usize, 8] {
        let dir = tmp_dir(&format!("loadfail_{threads}"));
        let batch = dir.join("batch.txt");
        std::fs::write(&batch, "+ 0 150 5.0\n").unwrap();
        let handle = Server::start_with_graph(test_graph(), config_with_threads(threads)).unwrap();
        handle.faults().arm("load", FaultAction::Err, 1);
        let mut c = Client::connect(&handle);
        let resp = c.req(&format!("update {}", batch.display()));
        assert!(resp.starts_with("err load-failed"), "{resp}");
        // Snapshot untouched: epoch still 0, queries keep working.
        assert!(c.req("stats").contains("epoch=0"));
        // The fault was one-shot; the retry succeeds.
        assert!(c
            .req(&format!("update {}", batch.display()))
            .starts_with("ok updated"));
        handle.shutdown();
    }
}

#[test]
fn detect_panic_preserves_last_good_snapshot() {
    for threads in [1usize, 8] {
        let dir = tmp_dir(&format!("panic_{threads}"));
        let batch = dir.join("batch.txt");
        std::fs::write(&batch, "+ 0 150 5.0\n").unwrap();
        let handle = Server::start_with_graph(test_graph(), config_with_threads(threads)).unwrap();
        let before = query_script(&handle);

        handle.faults().arm("detect", FaultAction::Panic, 1);
        let mut c = Client::connect(&handle);
        let resp = c.req(&format!("update {}", batch.display()));
        assert!(resp.starts_with("err detect-failed panic"), "{resp}");
        assert!(resp.contains("snapshot preserved"), "{resp}");

        // The daemon keeps serving the last good snapshot, byte-for-byte.
        assert_eq!(query_script(&handle), before);
        assert_eq!(handle.snapshot().epoch, 0);

        // And it still accepts work: the disarmed path succeeds.
        assert!(c
            .req(&format!("update {}", batch.display()))
            .starts_with("ok updated"));
        assert_eq!(handle.snapshot().epoch, 1);
        handle.shutdown();
    }
}

#[test]
fn detect_error_fault_preserves_snapshot() {
    let dir = tmp_dir("detect_err");
    let batch = dir.join("batch.txt");
    std::fs::write(&batch, "+ 0 150 5.0\n").unwrap();
    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    handle.faults().arm("detect", FaultAction::Err, 1);
    let mut c = Client::connect(&handle);
    let resp = c.req(&format!("update {}", batch.display()));
    assert!(resp.starts_with("err detect-failed"), "{resp}");
    assert_eq!(handle.snapshot().epoch, 0);
    handle.shutdown();
}

#[test]
fn persist_fault_exhausts_retries_and_preserves_files() {
    for threads in [1usize, 8] {
        let dir = tmp_dir(&format!("persist_{threads}"));
        let out = dir.join("snap.grb");
        let mut config = config_with_threads(threads);
        config.backoff = BackoffPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
        };
        let handle = Server::start_with_graph(test_graph(), config).unwrap();
        let mut c = Client::connect(&handle);

        // A good save first — its bytes must survive the faulty one.
        assert!(c
            .req(&format!("snapshot-save {}", out.display()))
            .starts_with("ok saved"));
        let good = std::fs::read(&out).unwrap();

        // More failures than retry attempts: the save fails as a whole…
        handle.faults().arm("persist", FaultAction::Err, 3);
        let resp = c.req(&format!("snapshot-save {}", out.display()));
        assert!(resp.starts_with("err persist-failed"), "{resp}");
        assert!(
            handle.faults().is_empty(),
            "all 3 attempts consumed a fault"
        );
        // …and the previous files are byte-intact with no temp leak.
        assert_eq!(std::fs::read(&out).unwrap(), good);
        assert!(io::list_tmp_siblings(&dir).is_empty());

        // Fewer failures than attempts: backoff rides through.
        handle.faults().arm("persist", FaultAction::Err, 2);
        assert!(c
            .req(&format!("snapshot-save {}", out.display()))
            .starts_with("ok saved"));
        handle.shutdown();
    }
}

#[test]
fn persist_truncation_fault_leaves_no_partial_file() {
    let dir = tmp_dir("persist_trunc");
    let out = dir.join("snap.grb");
    let config = ServeConfig {
        backoff: BackoffPolicy {
            attempts: 1,
            base: Duration::from_millis(1),
        },
        ..ServeConfig::default()
    };
    let handle = Server::start_with_graph(test_graph(), config).unwrap();
    handle
        .faults()
        .arm("persist-write", FaultAction::Truncate(32), 1);
    let mut c = Client::connect(&handle);
    let resp = c.req(&format!("snapshot-save {}", out.display()));
    assert!(resp.starts_with("err persist-failed"), "{resp}");
    assert!(!out.exists(), "truncated write must not surface a file");
    assert!(io::list_tmp_siblings(&dir).is_empty());
    // Disarmed, the same request lands a loadable file.
    assert!(c
        .req(&format!("snapshot-save {}", out.display()))
        .starts_with("ok saved"));
    assert!(io::load_path(&out).is_ok());
    handle.shutdown();
}

#[test]
fn deadline_failpoint_reports_deterministically() {
    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    handle.faults().arm("deadline", FaultAction::Err, 2);
    let mut c = Client::connect(&handle);
    assert_eq!(c.req("ping"), "err deadline-exceeded");
    assert_eq!(c.req("stats"), "err deadline-exceeded");
    assert_eq!(c.req("ping"), "ok pong", "failpoint exhausted");
    let metrics = c.req("metrics");
    assert!(metrics.contains("deadline-expired=2"), "{metrics}");
    handle.shutdown();
}

#[test]
fn zero_depth_queue_sheds_with_busy() {
    let config = ServeConfig {
        queue_depth: 0,
        ..ServeConfig::default()
    };
    let handle = Server::start_with_graph(test_graph(), config).unwrap();
    let mut c = Client::connect(&handle);
    let resp = c.req("ping");
    assert!(resp.starts_with("err busy"), "{resp}");
    assert!(
        handle
            .metrics()
            .shed
            .load(std::sync::atomic::Ordering::SeqCst)
            >= 1
    );
    handle.shutdown();
}

#[test]
fn socket_fault_drops_connection_then_recovers() {
    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    handle.faults().arm("socket", FaultAction::Err, 1);
    // First connection is dropped by the injected accept fault: either the
    // connect itself fails or the first read sees EOF.
    if let Ok(stream) = TcpStream::connect(handle.addr()) {
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        let _ = writeln!(w, "ping");
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap_or(0);
        assert_eq!(n, 0, "injected socket fault should close the connection");
    }
    // The retry goes through.
    let mut c = Client::connect(&handle);
    assert_eq!(c.req("ping"), "ok pong");
    handle.shutdown();
}

#[test]
fn concurrent_readers_see_wellformed_consistent_responses() {
    let handle = Server::start_with_graph(test_graph(), config_with_threads(8)).unwrap();
    let addr = handle.addr();
    let readers: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut transcript = Vec::new();
                for _ in 0..20 {
                    for q in ["community-of 0", "members 0", "stats"] {
                        writeln!(writer, "{q}").unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        assert!(line.starts_with("ok "), "{q} → {line}");
                        transcript.push(line);
                    }
                }
                transcript
            })
        })
        .collect();
    let transcripts: Vec<_> = readers.into_iter().map(|j| j.join().unwrap()).collect();
    // No mutations ran, so every reader saw the identical byte stream.
    for t in &transcripts[1..] {
        assert_eq!(t, &transcripts[0]);
    }
    handle.shutdown();
}

#[test]
fn shutdown_during_active_detection_is_clean() {
    let dir = tmp_dir("drain");
    // A batch dense enough to force real re-convergence work.
    let mut text = String::new();
    for i in 0..60u32 {
        text.push_str(&format!("+ {} {} 2.0\n", i, (i + 150) % 300));
    }
    let batch = dir.join("batch.txt");
    std::fs::write(&batch, text).unwrap();

    let handle = Server::start_with_graph(test_graph(), ServeConfig::default()).unwrap();
    let addr = handle.addr();
    let updater = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writeln!(writer, "update {}", batch.display()).unwrap();
        let mut line = String::new();
        let _ = reader.read_line(&mut line);
        line
    });
    // Let the update reach the worker, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(10));
    handle.shutdown();
    // The client either got a completed answer or a clean shutdown/cancel
    // response — never a hung connection (join proves termination).
    let line = updater.join().unwrap();
    assert!(
        line.is_empty()
            || line.starts_with("ok updated")
            || line.starts_with("err shutting-down")
            || line.starts_with("err deadline-exceeded"),
        "unexpected drain response: {line:?}"
    );
    // No partial files: the drain never leaves temp siblings behind.
    assert!(io::list_tmp_siblings(&dir).is_empty());
}

#[test]
fn start_from_path_load_fault_fails_startup() {
    let dir = tmp_dir("startload");
    let path = dir.join("g.grb");
    io::save_path(&test_graph(), &path).unwrap();

    let config = ServeConfig {
        faults: FaultPlan::parse("load=err:1").unwrap(),
        ..ServeConfig::default()
    };
    match Server::start_from_path(&path, config) {
        Err(ServeError::Load(e)) => assert!(e.to_string().contains("injected"), "{e}"),
        Err(other) => panic!("expected load error, got {other}"),
        Ok(_) => panic!("expected load error, got a running server"),
    }
    // Same path, no fault: starts and serves.
    let handle = Server::start_from_path(&path, ServeConfig::default()).unwrap();
    let mut c = Client::connect(&handle);
    assert!(c.req("stats").starts_with("ok n=300 "));
    handle.shutdown();
}
