//! Modularity (Eq. 3) and modularity-gain (Eq. 4) kernels, shared by the
//! serial and parallel algorithms.
//!
//! Floating-point policy: every reduction that feeds a *convergence decision*
//! uses [`det_sum`] — fixed-size chunking with an ordered sequential combine —
//! so results are bitwise identical for any rayon thread count. This is what
//! lets the non-colored parallel variants honor the paper's stability claim
//! (§5.4: "stable in that it always produces the same output regardless of
//! the number of cores used").

use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Community identifier. Community labels are vertex ids of the current
/// phase's graph (`0..n`), exactly as in the paper's minimum-label heuristic
/// where "communities at any given stage … \[are\] labeled numerically".
pub type Community = u32;

/// Fixed chunk width for deterministic parallel sums.
const DET_CHUNK: usize = 4096;

/// Deterministic parallel sum of `f(i)` for `i in 0..n`: chunk sums are
/// computed in parallel but combined in index order, so the result does not
/// depend on the thread count or scheduling.
pub fn det_sum<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let num_chunks = n.div_ceil(DET_CHUNK);
    let partials: Vec<f64> = (0..num_chunks)
        .into_par_iter()
        .map(|c| {
            let start = c * DET_CHUNK;
            let end = (start + DET_CHUNK).min(n);
            let mut acc = 0.0;
            for i in start..end {
                acc += f(i);
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// Community weighted degrees `a_C = Σ_{i∈C} k_i` (Eq. 2), indexed by
/// community label. The scatter is sequential in vertex order, which makes it
/// deterministic; it is O(n) and negligible next to the sweep.
pub fn community_degrees(g: &CsrGraph, assignment: &[Community]) -> Vec<f64> {
    let n = g.num_vertices();
    debug_assert_eq!(assignment.len(), n);
    let mut a = vec![0.0f64; n];
    for v in 0..n {
        a[assignment[v] as usize] += g.weighted_degree(v as VertexId);
    }
    a
}

/// Community sizes (member counts), indexed by community label.
pub fn community_sizes(assignment: &[Community]) -> Vec<u32> {
    let mut sizes = vec![0u32; assignment.len()];
    for &c in assignment {
        sizes[c as usize] += 1;
    }
    sizes
}

/// `Σ_i e_{i→C(i)}`: every intra-community adjacency entry summed from both
/// endpoints (self-loops once). Equals `2 × (intra non-loop weight) +
/// (intra loop weight)` and is the first term of Eq. 3 before the `1/2m`.
pub fn intra_community_weight(g: &CsrGraph, assignment: &[Community]) -> f64 {
    det_sum(g.num_vertices(), |v| {
        let cv = assignment[v];
        g.neighbors(v as VertexId)
            .filter(|&(u, _)| assignment[u as usize] == cv)
            .map(|(_, w)| w)
            .sum()
    })
}

/// Modularity of a partition (Eq. 3):
/// `Q = (1/2m) Σ_i e_{i→C(i)} − Σ_C (a_C / 2m)²`.
pub fn modularity(g: &CsrGraph, assignment: &[Community]) -> f64 {
    modularity_with_resolution(g, assignment, 1.0)
}

/// Generalized modularity with resolution parameter `γ` (the paper's
/// future-work item (iv); `γ = 1` is Eq. 3):
/// `Q_γ = (1/2m) Σ_i e_{i→C(i)} − γ Σ_C (a_C / 2m)²`.
pub fn modularity_with_resolution(g: &CsrGraph, assignment: &[Community], gamma: f64) -> f64 {
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let e_in = intra_community_weight(g, assignment);
    let a = community_degrees(g, assignment);
    let two_m = 2.0 * m;
    let null = det_sum(a.len(), |c| {
        let x = a[c] / two_m;
        x * x
    });
    e_in / two_m - gamma * null
}

/// Scratch space for per-vertex neighbor-community aggregation. One instance
/// per worker thread (rayon `map_with`); reused across vertices to avoid
/// per-vertex allocation (perf-book: reuse workhorse collections).
#[derive(Clone, Debug, Default)]
pub struct NeighborScratch {
    /// Distinct neighboring communities with accumulated edge weight.
    pub entries: Vec<(Community, f64)>,
}

impl NeighborScratch {
    /// Collects `e_{i→C}` for every community `C` adjacent to `v` (excluding
    /// `v`'s self-loop, which moves with the vertex and cancels in gain
    /// comparisons). Entries are sorted by community label ascending —
    /// the order the minimum-label heuristic requires.
    pub fn gather(&mut self, g: &CsrGraph, assignment: &[Community], v: VertexId) {
        self.entries.clear();
        for (u, w) in g.neighbors(v) {
            if u == v {
                continue;
            }
            self.entries.push((assignment[u as usize], w));
        }
        self.entries.sort_unstable_by_key(|&(c, _)| c);
        // In-place merge of duplicate community labels.
        let mut out = 0usize;
        for i in 0..self.entries.len() {
            if out > 0 && self.entries[out - 1].0 == self.entries[i].0 {
                self.entries[out - 1].1 += self.entries[i].1;
            } else {
                self.entries[out] = self.entries[i];
                out += 1;
            }
        }
        self.entries.truncate(out);
    }
}

/// Inputs to one vertex's migration decision.
#[derive(Clone, Copy, Debug)]
pub struct MoveContext {
    /// The vertex's current community.
    pub current: Community,
    /// `k_i`, the vertex's weighted degree.
    pub k: f64,
    /// `m`, the graph's total weight.
    pub m: f64,
    /// `a_{C(i)}` *including* `i` (the source community's degree).
    pub a_current: f64,
    /// Resolution parameter γ (1.0 = paper's Eq. 4).
    pub gamma: f64,
}

/// The outcome of a migration decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveDecision {
    /// Chosen community (may equal the current one).
    pub target: Community,
    /// Modularity gain of moving there (Eq. 4); 0 when staying.
    pub gain: f64,
}

/// Evaluates Eq. 4 over sorted candidate communities and returns the target
/// per Eq. 5 with the paper's **generalized minimum-label heuristic**: among
/// equal-gain maxima, the smallest community label wins (§5.1). `a_of` maps a
/// community label to its current degree `a_C`.
///
/// The gain of moving `i` from `C(i)` to `C(j)` (Eq. 4) is, with
/// `a_src' = a_{C(i)} − k_i`:
/// `ΔQ = (e_{i→C(j)} − e_{i→C(i)∖{i}})/m + 2·k_i·(a_src' − a_{C(j)})/(2m)²`.
/// Staying (`C(j) = C(i)`) evaluates to exactly 0 by construction.
pub fn best_move(
    ctx: &MoveContext,
    candidates: &[(Community, f64)],
    a_of: impl Fn(Community) -> f64,
) -> MoveDecision {
    let two_m = 2.0 * ctx.m;
    let a_src_without = a_of(ctx.current) - ctx.k;
    // e_{i→C(i)∖{i}}: weight to co-members, excluding the self-loop.
    let e_src = candidates
        .iter()
        .find(|&&(c, _)| c == ctx.current)
        .map(|&(_, w)| w)
        .unwrap_or(0.0);

    let mut best = MoveDecision { target: ctx.current, gain: 0.0 };
    for &(c, e_c) in candidates {
        if c == ctx.current {
            continue;
        }
        let gain = (e_c - e_src) / ctx.m
            + ctx.gamma * 2.0 * ctx.k * (a_src_without - a_of(c)) / (two_m * two_m);
        // Strict `>` over label-ascending candidates implements the
        // generalized minimum-label tie-break.
        if gain > best.gain {
            best = MoveDecision { target: c, gain };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::{from_unweighted_edges, from_weighted_edges};

    fn two_triangles() -> CsrGraph {
        // Two triangles joined by one bridge: the canonical Q = 10/28 ≈ 0.357
        // example (for the 2-community partition).
        from_unweighted_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn modularity_two_triangles_exact() {
        let g = two_triangles();
        let part = vec![0, 0, 0, 1, 1, 1];
        // m=7; e_in = 2*(3+3)=12; Σ(a/2m)^2 = (7/14)^2 * 2 = 0.5
        // Q = 12/14 - 0.5 = 0.357142857…
        let q = modularity(&g, &part);
        assert!((q - (12.0 / 14.0 - 0.5)).abs() < 1e-12, "{q}");
    }

    #[test]
    fn singletons_modularity() {
        let g = two_triangles();
        let part: Vec<u32> = (0..6).collect();
        // e_in = 0; Q = -Σ (k_i/2m)^2.
        let expected: f64 = -(0..6)
            .map(|v| {
                let k = g.weighted_degree(v);
                (k / 14.0) * (k / 14.0)
            })
            .sum::<f64>();
        assert!((modularity(&g, &part) - expected).abs() < 1e-12);
    }

    #[test]
    fn all_in_one_community_zero() {
        // With everything in one community, Q = 2m/2m − (2m/2m)² = 0.
        let g = two_triangles();
        let part = vec![0u32; 6];
        assert!((modularity(&g, &part)).abs() < 1e-12);
    }

    #[test]
    fn self_loop_counts_once_in_e_in() {
        let g = from_weighted_edges(2, [(0, 1, 1.0), (0, 0, 2.0)]).unwrap();
        // One community: e_in = 2*1 + 2 = 4 = 2m → Q = 1 − 1 = 0.
        assert!((modularity(&g, &[0, 0])).abs() < 1e-12);
        // Separate: e_in = loop only = 2. m = 2. k0 = 3, k1 = 1.
        let q = modularity(&g, &[0, 1]);
        let expect = 2.0 / 4.0 - ((3.0 / 4.0f64).powi(2) + (1.0 / 4.0f64).powi(2));
        assert!((q - expect).abs() < 1e-12);
    }

    #[test]
    fn resolution_extremes() {
        let g = two_triangles();
        let split = vec![0, 0, 0, 1, 1, 1];
        let merged = vec![0u32; 6];
        // γ = 0: only intra weight matters → merged (everything intra) wins.
        let q0_split = modularity_with_resolution(&g, &split, 0.0);
        let q0_merged = modularity_with_resolution(&g, &merged, 0.0);
        assert!(q0_merged > q0_split);
        // γ large: null model dominates → split wins.
        let q9_split = modularity_with_resolution(&g, &split, 9.0);
        let q9_merged = modularity_with_resolution(&g, &merged, 9.0);
        assert!(q9_split > q9_merged);
    }

    #[test]
    fn community_degrees_and_sizes() {
        let g = two_triangles();
        let part = vec![0, 0, 0, 1, 1, 1];
        let a = community_degrees(&g, &part);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 7.0);
        assert_eq!(community_sizes(&part)[0], 3);
        let total: f64 = a.iter().sum();
        assert_eq!(total, 2.0 * g.total_weight());
    }

    #[test]
    fn det_sum_matches_serial() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = vals.iter().sum();
        let det = det_sum(vals.len(), |i| vals[i]);
        // det_sum chunks at 4096, so exact equality is not guaranteed vs the
        // fully-serial order, but it must be self-consistent and close.
        assert!((det - serial).abs() < 1e-9);
        assert_eq!(det, det_sum(vals.len(), |i| vals[i]));
    }

    #[test]
    fn det_sum_empty() {
        assert_eq!(det_sum(0, |_| 1.0), 0.0);
    }

    #[test]
    fn scratch_gathers_sorted_merged() {
        let g = from_weighted_edges(
            4,
            [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 4.0), (0, 0, 9.0)],
        )
        .unwrap();
        let assignment = vec![5u32 % 4, 3, 3, 1]; // v1,v2 → comm 3; v3 → comm 1
        let mut s = NeighborScratch::default();
        s.gather(&g, &assignment, 0);
        // self-loop excluded; comm 1 (w 4), comm 3 (1+2=3), sorted by label.
        assert_eq!(s.entries, vec![(1, 4.0), (3, 3.0)]);
    }

    #[test]
    fn best_move_prefers_positive_gain() {
        // Vertex 0 between two communities; candidate with more weight wins.
        let ctx = MoveContext { current: 0, k: 2.0, m: 10.0, a_current: 2.0, gamma: 1.0 };
        let candidates = vec![(1u32, 1.0), (2u32, 2.0)];
        let a = |c: Community| match c {
            0 => 2.0,
            _ => 4.0,
        };
        let d = best_move(&ctx, &candidates, a);
        assert_eq!(d.target, 2);
        assert!(d.gain > 0.0);
    }

    #[test]
    fn best_move_min_label_tie_break() {
        // Two identical candidates — the generalized ML heuristic picks the
        // smaller label (§5.1, Fig. 2 case 2).
        let ctx = MoveContext { current: 9, k: 1.0, m: 5.0, a_current: 1.0, gamma: 1.0 };
        let candidates = vec![(3u32, 1.0), (7u32, 1.0)];
        let d = best_move(&ctx, &candidates, |c| if c == 9 { 1.0 } else { 2.0 });
        assert_eq!(d.target, 3);
    }

    #[test]
    fn best_move_stays_when_all_negative() {
        // Staying yields 0; an unattractive move must not be taken.
        let ctx = MoveContext { current: 0, k: 5.0, m: 10.0, a_current: 10.0, gamma: 1.0 };
        // e_src = 4 (strong ties to own community), candidate weak.
        let candidates = vec![(0u32, 4.0), (1u32, 0.1)];
        let d = best_move(&ctx, &candidates, |c| if c == 0 { 10.0 } else { 8.0 });
        assert_eq!(d.target, 0);
        assert_eq!(d.gain, 0.0);
    }

    #[test]
    fn gain_matches_modularity_delta() {
        // Brute-force check: predicted ΔQ equals Q(after) − Q(before) for a
        // single move on a small weighted graph (the guarantee §3 builds on).
        let g = from_weighted_edges(
            5,
            [
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 1.5),
                (4, 0, 1.0),
                (1, 3, 2.5),
            ],
        )
        .unwrap();
        let before = vec![0u32, 0, 2, 2, 4];
        let q_before = modularity(&g, &before);
        // Move vertex 4 (currently alone) into community 2.
        let v: VertexId = 4;
        let mut scratch = NeighborScratch::default();
        scratch.gather(&g, &before, v);
        let a = community_degrees(&g, &before);
        let ctx = MoveContext {
            current: before[v as usize],
            k: g.weighted_degree(v),
            m: g.total_weight(),
            a_current: a[before[v as usize] as usize],
            gamma: 1.0,
        };
        let decision = best_move(&ctx, &scratch.entries, |c| a[c as usize]);
        let mut after = before.clone();
        after[v as usize] = decision.target;
        let q_after = modularity(&g, &after);
        assert!(
            (q_after - q_before - decision.gain).abs() < 1e-12,
            "predicted {} actual {}",
            decision.gain,
            q_after - q_before
        );
    }
}
