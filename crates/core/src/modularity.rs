//! Modularity (Eq. 3) and modularity-gain (Eq. 4) kernels, shared by the
//! serial and parallel algorithms.
//!
//! # The flat timestamped neighbor scan
//!
//! The hottest operation in the whole codebase is the per-vertex
//! neighbor-community aggregation feeding Eq. 4: for vertex `i`, collect
//! `e_{i→C}` for every community `C` adjacent to `i`. The original
//! implementation pushed `(community, weight)` pairs and sorted them —
//! O(deg·log deg) per vertex per iteration. [`NeighborScratch`] now uses a
//! **generation-stamped dense scratch** (Staudt & Meyerhenke's flat
//! per-thread hashtable, and the GVE-Louvain lineage's per-thread
//! collision-free map): two `n`-sized arrays, `stamp` (which generation last
//! touched a community) and `slot` (where that community's accumulator lives
//! in the touched list `entries`). A gather is then O(deg) with no sorting
//! and no per-vertex allocation; bumping the generation invalidates the
//! whole scratch in O(1).
//!
//! Entries come out in **first-touch (adjacency) order**, not label order.
//! The paper's generalized minimum-label heuristic (§5.1) is preserved
//! because [`best_move`] breaks equal-gain ties by explicit label
//! comparison, which is order-independent: per-candidate gains are computed
//! by the same float expression regardless of scan order, so "maximum gain,
//! then minimum label" selects the identical target the sorted scan did.
//!
//! # Incremental accounting
//!
//! [`ModularityTracker`] maintains `Σ_i e_{i→C(i)}` and `Σ_C a_C²` across
//! iterations by applying only the committed moves, so the per-iteration
//! modularity is O(#moves + Σ deg(moved)) instead of a full O(m) rescan.
//! The O(m) recomputation survives only as a `debug_assert` cross-check
//! (`ModularityTracker::drift_from_full`).
//!
//! # Floating-point / determinism policy
//!
//! Every reduction that feeds a *convergence decision* is ordered: batch
//! `e_in` deltas go through [`det_sum`] (fixed-size chunking with an ordered
//! sequential combine) and `a_C`/`Σ a_C²` updates are applied in ascending
//! vertex order of the move list, which itself is assembled in vertex order.
//! Results are therefore bitwise identical for any rayon thread count — the
//! paper's §5.4 stability claim ("stable in that it always produces the same
//! output regardless of the number of cores used") extended to the
//! incremental state.

use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Community identifier. Community labels are vertex ids of the current
/// phase's graph (`0..n`), exactly as in the paper's minimum-label heuristic
/// where "communities at any given stage … \[are\] labeled numerically".
pub type Community = u32;

/// Fixed chunk width for deterministic parallel sums.
const DET_CHUNK: usize = 4096;

/// Deterministic parallel sum of `f(i)` for `i in 0..n`: chunk sums are
/// computed in parallel but combined in index order, so the result does not
/// depend on the thread count or scheduling. Chunks are coarse units of
/// work (`DET_CHUNK` adds each), so the shim's uniform grain rule is
/// overridden with `with_min_len(1)` — the same convention every other
/// coarse-item iterator in the workspace uses; without it a multi-million
/// element sum would run inline because its *chunk count* sits under the
/// 1024-item default grain.
pub fn det_sum<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let num_chunks = n.div_ceil(DET_CHUNK);
    let partials: Vec<f64> = (0..num_chunks)
        .into_par_iter()
        .with_min_len(1)
        .map(|c| {
            let start = c * DET_CHUNK;
            let end = (start + DET_CHUNK).min(n);
            let mut acc = 0.0;
            for i in start..end {
                acc += f(i);
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// Community weighted degrees `a_C = Σ_{i∈C} k_i` (Eq. 2), indexed by
/// community label. The scatter is sequential in vertex order, which makes it
/// deterministic. The sweeps no longer call this per iteration (they carry
/// `a` incrementally); it remains the canonical initializer and the
/// debug-time cross-check.
pub fn community_degrees(g: &CsrGraph, assignment: &[Community]) -> Vec<f64> {
    let n = g.num_vertices();
    debug_assert_eq!(assignment.len(), n);
    let mut a = vec![0.0f64; n];
    for v in 0..n {
        a[assignment[v] as usize] += g.weighted_degree(v as VertexId);
    }
    a
}

/// Community sizes (member counts), indexed by community label.
pub fn community_sizes(assignment: &[Community]) -> Vec<u32> {
    let mut sizes = vec![0u32; assignment.len()];
    for &c in assignment {
        sizes[c as usize] += 1;
    }
    sizes
}

/// `Σ_i e_{i→C(i)}`: every intra-community adjacency entry summed from both
/// endpoints (self-loops once). Equals `2 × (intra non-loop weight) +
/// (intra loop weight)` and is the first term of Eq. 3 before the `1/2m`.
pub fn intra_community_weight(g: &CsrGraph, assignment: &[Community]) -> f64 {
    det_sum(g.num_vertices(), |v| {
        let cv = assignment[v];
        g.neighbors(v as VertexId)
            .filter(|&(u, _)| assignment[u as usize] == cv)
            .map(|(_, w)| w)
            .sum()
    })
}

/// Modularity of a partition (Eq. 3):
/// `Q = (1/2m) Σ_i e_{i→C(i)} − Σ_C (a_C / 2m)²`.
pub fn modularity(g: &CsrGraph, assignment: &[Community]) -> f64 {
    modularity_with_resolution(g, assignment, 1.0)
}

/// Generalized modularity with resolution parameter `γ` (the paper's
/// future-work item (iv); `γ = 1` is Eq. 3):
/// `Q_γ = (1/2m) Σ_i e_{i→C(i)} − γ Σ_C (a_C / 2m)²`.
pub fn modularity_with_resolution(g: &CsrGraph, assignment: &[Community], gamma: f64) -> f64 {
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let e_in = intra_community_weight(g, assignment);
    let a = community_degrees(g, assignment);
    let two_m = 2.0 * m;
    let null = det_sum(a.len(), |c| {
        let x = a[c] / two_m;
        x * x
    });
    e_in / two_m - gamma * null
}

/// Per-thread scratch for neighbor-community aggregation: a generation-
/// stamped dense map from community label to an accumulator slot in
/// [`NeighborScratch::entries`].
///
/// One instance per worker (rayon `map_init`), reused across vertices so a
/// gather is O(deg) with no allocation and no sort. `stamp[c] == generation`
/// marks community `c` as touched in the current gather and `slot[c]` holds
/// the index of its `(c, weight)` accumulator; bumping `generation`
/// invalidates everything in O(1).
#[derive(Clone, Debug, Default)]
pub struct NeighborScratch {
    /// Distinct neighboring communities with accumulated edge weight, in
    /// **first-touch (adjacency) order** — not sorted by label.
    pub entries: Vec<(Community, f64)>,
    /// Per-community mark word: generation in the high 32 bits, `entries`
    /// slot index in the low 32. One word (instead of separate stamp/slot
    /// arrays) halves the random cache traffic per accumulated neighbor.
    marks: Vec<u64>,
    /// Current gather generation.
    generation: u32,
}

impl NeighborScratch {
    /// Scratch pre-sized for community labels `< n` (labels are phase-graph
    /// vertex ids). `default()` works too; the arrays grow on first use.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            entries: Vec::new(),
            marks: vec![0; n],
            generation: 0,
        }
    }

    /// Starts a new aggregation over community labels `< n`.
    #[inline]
    pub fn begin(&mut self, n: usize) {
        self.entries.clear();
        if self.marks.len() < n {
            if self.marks.is_empty() {
                // First use of a `default()` scratch: `vec![0; n]` goes
                // through alloc_zeroed (lazily-faulted zero pages), so a
                // freshly-created per-chunk scratch only pays for the pages
                // its gathers actually touch — not an eager O(n) fill.
                self.marks = vec![0; n];
            } else {
                self.marks.resize(n, 0);
            }
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // u32 wrap: stale generations could collide; reset once every
            // 2³² gathers.
            self.marks.fill(0);
            self.generation = 1;
        }
    }

    /// Adds `w` to community `c`'s accumulator (O(1)).
    #[inline]
    pub fn accumulate(&mut self, c: Community, w: f64) {
        let mark = self.marks[c as usize];
        if (mark >> 32) as u32 == self.generation {
            self.entries[mark as u32 as usize].1 += w;
        } else {
            self.marks[c as usize] = ((self.generation as u64) << 32) | self.entries.len() as u64;
            self.entries.push((c, w));
        }
    }

    /// Collects `e_{i→C}` for every community `C` adjacent to `v` (excluding
    /// `v`'s self-loop, which moves with the vertex and cancels in gain
    /// comparisons), with communities read through `community_of`. Entries
    /// end up in first-touch order; weights accumulate in adjacency order.
    #[inline]
    pub fn gather_by(
        &mut self,
        g: &CsrGraph,
        v: VertexId,
        community_of: impl Fn(usize) -> Community,
    ) {
        self.begin(g.num_vertices());
        for (u, w) in g.neighbors(v) {
            if u == v {
                continue;
            }
            self.accumulate(community_of(u as usize), w);
        }
    }

    /// [`Self::gather_by`] against a plain assignment slice.
    #[inline]
    pub fn gather(&mut self, g: &CsrGraph, assignment: &[Community], v: VertexId) {
        self.gather_by(g, v, |u| assignment[u]);
    }

    /// The weight accumulated toward community `c` in the current gather
    /// (0.0 if `c` was not touched) — an O(1) marks lookup, replacing the
    /// linear candidate scan [`best_move`] would otherwise pay for
    /// `e_{i→C(i)}`. Bitwise-identical to that scan's result: both read the
    /// same accumulator slot.
    #[inline]
    pub fn weight_to(&self, c: Community) -> f64 {
        let mark = self.marks[c as usize];
        if (mark >> 32) as u32 == self.generation {
            self.entries[mark as u32 as usize].1
        } else {
            0.0
        }
    }
}

/// Worker slots in a [`ScratchPool`]: slot 0 serves threads outside any
/// resident pool (the caller participating in its own region, tests, the
/// serial path); slots `1..` serve resident workers by
/// [`rayon::current_worker_index`]. 32 worker slots cover every realistic
/// pool; larger pools wrap modulo and merely share a slot (contention, not
/// incorrectness).
const SCRATCH_SLOTS: usize = 33;

/// The persistent per-worker arena of [`NeighborScratch`]es behind every
/// `map_init` gather in the sweeps, the rebuild, and the reference ladder.
///
/// `map_init` builds one state value per executed task and drops it when
/// the task ends, so a sweep that launches many small parallel regions (one
/// per color batch per iteration) would otherwise allocate — and fault in —
/// a fresh `n`-sized `marks` array for every region. Checking scratches out
/// of the pool makes the allocation amortize across the whole run: a task's
/// `init` pops a warmed scratch (marks sized, generation valid) from the
/// slot owned by the executing worker and the guard pushes it back on drop.
///
/// Scratches live in **worker-indexed slots**, so on the resident pool a
/// worker keeps re-checking-out the scratch it warmed — cache- and
/// NUMA-friendly — and the checkout is an uncontended lock in the steady
/// state. [`ScratchPool::global`] is the process-wide instance: because
/// the resident workers are themselves process-wide, scratches persist not
/// just across iterations but across *phases* (each phase's smaller graph
/// reuses the previous phase's already-faulted marks; `begin` re-sizes).
/// Checkout order has no effect on results — the generation stamp makes any
/// scratch state equivalent — so determinism is untouched.
#[derive(Debug)]
pub struct ScratchPool {
    slots: Vec<std::sync::Mutex<Vec<NeighborScratch>>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchPool {
    /// An empty pool; scratches are created on first checkout.
    pub fn new() -> Self {
        Self {
            slots: (0..SCRATCH_SLOTS)
                .map(|_| std::sync::Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// The process-global pool — the arena the resident workers keep warm
    /// for the lifetime of the process. Prefer this over per-phase pools so
    /// buffers survive phase transitions.
    pub fn global() -> &'static ScratchPool {
        static GLOBAL: std::sync::OnceLock<ScratchPool> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(ScratchPool::new)
    }

    /// The slot owned by the executing thread.
    fn slot(&self) -> &std::sync::Mutex<Vec<NeighborScratch>> {
        let idx = match rayon::current_worker_index() {
            Some(i) => 1 + i % (self.slots.len() - 1),
            None => 0,
        };
        &self.slots[idx]
    }

    /// Checks a scratch out of the executing worker's slot (creating one if
    /// the slot is dry). The guard returns it to the same slot on drop.
    pub fn take(&self) -> PooledScratch<'_> {
        let slot = self.slot();
        let scratch = slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        PooledScratch { scratch, slot }
    }
}

/// A checked-out [`NeighborScratch`]; derefs to the scratch and returns it
/// to its worker's [`ScratchPool`] slot on drop.
#[derive(Debug)]
pub struct PooledScratch<'a> {
    scratch: NeighborScratch,
    slot: &'a std::sync::Mutex<Vec<NeighborScratch>>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = NeighborScratch;
    fn deref(&self) -> &NeighborScratch {
        &self.scratch
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut NeighborScratch {
        &mut self.scratch
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(std::mem::take(&mut self.scratch));
    }
}

/// Inputs to one vertex's migration decision.
#[derive(Clone, Copy, Debug)]
pub struct MoveContext {
    /// The vertex's current community.
    pub current: Community,
    /// `k_i`, the vertex's weighted degree.
    pub k: f64,
    /// `m`, the graph's total weight.
    pub m: f64,
    /// `a_{C(i)}` *including* `i` (the source community's degree).
    pub a_current: f64,
    /// Resolution parameter γ (1.0 = paper's Eq. 4).
    pub gamma: f64,
}

/// The outcome of a migration decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveDecision {
    /// Chosen community (may equal the current one).
    pub target: Community,
    /// Modularity gain of moving there (Eq. 4); 0 when staying.
    pub gain: f64,
    /// `e_{i→C(i)∖{i}}` — weight to current co-members (found during the
    /// scan; feeds [`ModularityTracker::apply_move`] without a re-scan).
    pub e_src: f64,
    /// `e_{i→target}`; equals `e_src` when staying.
    pub e_tgt: f64,
}

/// Evaluates Eq. 4 over the candidate communities (any order) and returns
/// the target per Eq. 5 with the paper's **generalized minimum-label
/// heuristic**: among equal-gain maxima, the smallest community label wins
/// (§5.1). `a_of` maps a community label to its current degree `a_C`.
///
/// The gain of moving `i` from `C(i)` to `C(j)` (Eq. 4) is, with
/// `a_src' = a_{C(i)} − k_i`:
/// `ΔQ = (e_{i→C(j)} − e_{i→C(i)∖{i}})/m + 2·k_i·(a_src' − a_{C(j)})/(2m)²`.
/// Staying (`C(j) = C(i)`) evaluates to exactly 0 by construction.
///
/// The tie-break is order-independent: each candidate's gain is the same
/// float expression whatever the scan order, so comparing `(gain, label)`
/// pairs selects the same target the historical sorted-ascending scan did.
pub fn best_move(
    ctx: &MoveContext,
    candidates: &[(Community, f64)],
    a_of: impl Fn(Community) -> f64,
) -> MoveDecision {
    // e_{i→C(i)∖{i}}: weight to co-members, excluding the self-loop.
    let e_src = candidates
        .iter()
        .find(|&&(c, _)| c == ctx.current)
        .map(|&(_, w)| w)
        .unwrap_or(0.0);
    best_move_with_src(ctx, candidates, e_src, a_of)
}

/// [`best_move`] with `e_src = e_{i→C(i)∖{i}}` supplied by the caller —
/// the sweeps read it from the gather scratch in O(1)
/// ([`NeighborScratch::weight_to`]) instead of re-scanning the candidate
/// list. Decision arithmetic is identical to [`best_move`].
pub fn best_move_with_src(
    ctx: &MoveContext,
    candidates: &[(Community, f64)],
    e_src: f64,
    a_of: impl Fn(Community) -> f64,
) -> MoveDecision {
    let two_m = 2.0 * ctx.m;
    let a_src_without = a_of(ctx.current) - ctx.k;
    // Hoist the two divisions out of the candidate loop (the loop body runs
    // once per adjacent community per vertex per iteration — the hottest
    // arithmetic in the codebase).
    let inv_m = 1.0 / ctx.m;
    let null_factor = ctx.gamma * 2.0 * ctx.k / (two_m * two_m);

    let mut best = MoveDecision {
        target: ctx.current,
        gain: 0.0,
        e_src,
        e_tgt: e_src,
    };
    for &(c, e_c) in candidates {
        if c == ctx.current {
            continue;
        }
        let gain = (e_c - e_src) * inv_m + null_factor * (a_src_without - a_of(c));
        // Strictly better gain wins; an exactly equal gain wins only with a
        // smaller label (minimum-label heuristic). Staying keeps priority at
        // gain 0: a non-current `best` only ever holds gain > 0.
        if gain > best.gain || (gain == best.gain && best.target != ctx.current && c < best.target)
        {
            best = MoveDecision {
                target: c,
                gain,
                e_src,
                e_tgt: e_c,
            };
        }
    }
    best
}

/// Incrementally maintained modularity state for one phase:
/// `e_in = Σ_i e_{i→C(i)}` and `null_sum = Σ_C a_C²`, with
/// `Q = e_in/2m − γ·null_sum/(2m)²`.
///
/// The full O(m)+O(n) rescan happens once at construction; afterwards every
/// committed move updates both terms in O(1) (plus O(deg) for the parallel
/// batch's `e_in` correction), in an order that does not depend on the
/// thread count.
#[derive(Clone, Debug)]
pub struct ModularityTracker {
    /// `Σ_i e_{i→C(i)}` (every intra adjacency entry, self-loops once).
    pub e_in: f64,
    /// `Σ_C a_C²`.
    pub null_sum: f64,
    two_m: f64,
    gamma: f64,
}

impl ModularityTracker {
    /// Full-scan initialization (parallel, deterministic reductions).
    pub fn new(g: &CsrGraph, assignment: &[Community], a: &[f64], gamma: f64) -> Self {
        let e_in = intra_community_weight(g, assignment);
        let null_sum = det_sum(a.len(), |c| a[c] * a[c]);
        Self {
            e_in,
            null_sum,
            two_m: 2.0 * g.total_weight(),
            gamma,
        }
    }

    /// Full-scan initialization with plain loops — for the serial scheme,
    /// which must never touch the rayon pool.
    pub fn new_serial(g: &CsrGraph, assignment: &[Community], a: &[f64], gamma: f64) -> Self {
        let mut e_in = 0.0f64;
        for v in 0..g.num_vertices() as VertexId {
            let cv = assignment[v as usize];
            for (u, w) in g.neighbors(v) {
                if assignment[u as usize] == cv {
                    e_in += w;
                }
            }
        }
        let mut null_sum = 0.0f64;
        for &ac in a {
            null_sum += ac * ac;
        }
        Self {
            e_in,
            null_sum,
            two_m: 2.0 * g.total_weight(),
            gamma,
        }
    }

    /// Assembles a tracker from externally accumulated sums — for callers
    /// that already hold `Σ e_{i→C(i)}` and `Σ a_C²` (e.g. the refinement
    /// pass, which accumulates both during its component traversal) and
    /// must not pay another full rescan.
    pub fn from_parts(g: &CsrGraph, e_in: f64, null_sum: f64, gamma: f64) -> Self {
        Self {
            e_in,
            null_sum,
            two_m: 2.0 * g.total_weight(),
            gamma,
        }
    }

    /// Current modularity, O(1).
    #[inline]
    pub fn modularity(&self) -> f64 {
        self.e_in / self.two_m - self.gamma * self.null_sum / (self.two_m * self.two_m)
    }

    /// Moves weighted degree `k` from community `from` to `to`, updating
    /// `a` in place and `null_sum = Σ a_C²` by the exact difference — the
    /// shared accounting core of [`Self::apply_move`] and
    /// [`Self::apply_batch`].
    #[inline]
    fn transfer_degree(&mut self, k: f64, from: Community, to: Community, a: &mut [f64]) {
        // A no-op "move" would double-write a[from] and corrupt null_sum.
        debug_assert_ne!(from, to, "transfer_degree requires from != to");
        let a_from = a[from as usize];
        let a_to = a[to as usize];
        self.null_sum +=
            (a_from - k) * (a_from - k) - a_from * a_from + (a_to + k) * (a_to + k) - a_to * a_to;
        a[from as usize] = a_from - k;
        a[to as usize] = a_to + k;
    }

    /// Applies one immediately-committed move (the serial sweep): `v` with
    /// degree `k` leaves `from` for `to`, where `e_src = e_{v→from∖{v}}` and
    /// `e_tgt = e_{v→to}` come from the gather that produced the decision.
    /// Updates `a` in place.
    #[inline]
    pub fn apply_move(
        &mut self,
        k: f64,
        e_src: f64,
        e_tgt: f64,
        from: Community,
        to: Community,
        a: &mut [f64],
    ) {
        // Both directions of every (v, co-member) edge enter/leave e_in.
        self.e_in += 2.0 * (e_tgt - e_src);
        self.transfer_degree(k, from, to, a);
    }

    /// Applies one parallel iteration's batch of simultaneous moves.
    ///
    /// `moved` lists the vertices with `c_prev[v] != c_curr[v]` in ascending
    /// vertex order. An adjacency entry `(x → y)` contributes to `e_in` iff
    /// `C(x) == C(y)`, so only entries incident to a moved vertex can
    /// change. Scanning the moved vertices visits `(v → u)` once from `v`;
    /// the mirrored entry `(u → v)` is visited by `u`'s own scan when `u`
    /// also moved, and accounted with a factor of two otherwise. The
    /// reduction is a [`det_sum`] over the moved list and the `a`/`null_sum`
    /// updates run sequentially in list order, so the result is bitwise
    /// independent of the thread count. Cost: O(Σ deg(moved)), which decays
    /// with the move count instead of staying at O(m).
    pub fn apply_batch(
        &mut self,
        g: &CsrGraph,
        c_prev: &[Community],
        c_curr: &[Community],
        moved: &[VertexId],
        a: &mut [f64],
        sizes: &mut [u32],
    ) {
        let delta = det_sum(moved.len(), |i| {
            let v = moved[i];
            let pv = c_prev[v as usize];
            let cv = c_curr[v as usize];
            let mut acc = 0.0;
            for (u, w) in g.neighbors(v) {
                if u == v {
                    continue; // a self-loop is always intra
                }
                let pu = c_prev[u as usize];
                let cu = c_curr[u as usize];
                let change = (cu == cv) as i32 - (pu == pv) as i32;
                if change != 0 {
                    // If u also moved it will account for (u → v) itself;
                    // otherwise v accounts for both directions.
                    let factor = if pu != cu { 1.0 } else { 2.0 };
                    acc += factor * change as f64 * w;
                }
            }
            acc
        });
        self.e_in += delta;
        for &v in moved {
            let from = c_prev[v as usize];
            let to = c_curr[v as usize];
            self.transfer_degree(g.weighted_degree(v), from, to, a);
            sizes[from as usize] -= 1;
            sizes[to as usize] += 1;
        }
    }

    /// Applies one color batch's moves — the colored sweep's barrier commit.
    ///
    /// Precondition: the movers form an **independent set** (no two movers
    /// adjacent — guaranteed when all come from one distance-1 color class),
    /// so each mover's `e_src`/`e_tgt`, captured from the gather that
    /// produced its decision, is still exact at commit time: none of its
    /// neighbors changed community within the batch. Each `(v, co-member)`
    /// edge therefore enters/leaves `e_in` with a factor of exactly 2 and no
    /// double counting between movers.
    ///
    /// Determinism: the per-move `e_in` deltas are reduced through
    /// [`det_sum`] — parallel partials combined left-to-right in fixed chunk
    /// order — and the `a`/`null_sum`/`sizes` updates run sequentially in
    /// `moves` order (ascending vertex order when the caller commits a color
    /// batch). Cost: O(#moves), replacing the colored phase's historical
    /// O(m) full rescan.
    pub fn apply_independent_batch(
        &mut self,
        moves: &[IndependentMove],
        a: &mut [f64],
        sizes: &mut [u32],
    ) {
        self.e_in += det_sum(moves.len(), |i| 2.0 * (moves[i].e_tgt - moves[i].e_src));
        for mv in moves {
            self.transfer_degree(mv.k, mv.from, mv.to, a);
            sizes[mv.from as usize] -= 1;
            sizes[mv.to as usize] += 1;
        }
    }

    /// Absolute deviation of the tracked modularity from a full O(m) + O(n)
    /// recomputation — the debug-assert cross-check that replaced the
    /// per-iteration rescan on the hot path.
    pub fn drift_from_full(&self, g: &CsrGraph, assignment: &[Community]) -> f64 {
        (self.modularity() - modularity_with_resolution(g, assignment, self.gamma)).abs()
    }
}

/// One committed move of a color batch, as consumed by
/// [`ModularityTracker::apply_independent_batch`]: vertex of weighted degree
/// `k` leaves `from` for `to`, with `e_src = e_{v→from∖{v}}` and
/// `e_tgt = e_{v→to}` captured from the decision's gather.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndependentMove {
    /// The mover's weighted degree `k_v`.
    pub k: f64,
    /// Weight from the mover to its old co-members (self-loop excluded).
    pub e_src: f64,
    /// Weight from the mover to the target community's members.
    pub e_tgt: f64,
    /// Community the mover leaves.
    pub from: Community,
    /// Community the mover joins.
    pub to: Community,
}

/// Tolerance for the incremental-vs-full debug cross-checks: fp drift of the
/// incremental sums stays many orders of magnitude below any modularity
/// difference the convergence thresholds (≥ 1e-6) can act on.
pub const TRACKER_DRIFT_TOLERANCE: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::{from_unweighted_edges, from_weighted_edges};

    fn two_triangles() -> CsrGraph {
        // Two triangles joined by one bridge: the canonical Q = 10/28 ≈ 0.357
        // example (for the 2-community partition).
        from_unweighted_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]).unwrap()
    }

    #[test]
    fn modularity_two_triangles_exact() {
        let g = two_triangles();
        let part = vec![0, 0, 0, 1, 1, 1];
        // m=7; e_in = 2*(3+3)=12; Σ(a/2m)^2 = (7/14)^2 * 2 = 0.5
        // Q = 12/14 - 0.5 = 0.357142857…
        let q = modularity(&g, &part);
        assert!((q - (12.0 / 14.0 - 0.5)).abs() < 1e-12, "{q}");
    }

    #[test]
    fn singletons_modularity() {
        let g = two_triangles();
        let part: Vec<u32> = (0..6).collect();
        // e_in = 0; Q = -Σ (k_i/2m)^2.
        let expected: f64 = -(0..6)
            .map(|v| {
                let k = g.weighted_degree(v);
                (k / 14.0) * (k / 14.0)
            })
            .sum::<f64>();
        assert!((modularity(&g, &part) - expected).abs() < 1e-12);
    }

    #[test]
    fn all_in_one_community_zero() {
        // With everything in one community, Q = 2m/2m − (2m/2m)² = 0.
        let g = two_triangles();
        let part = vec![0u32; 6];
        assert!((modularity(&g, &part)).abs() < 1e-12);
    }

    #[test]
    fn self_loop_counts_once_in_e_in() {
        let g = from_weighted_edges(2, [(0, 1, 1.0), (0, 0, 2.0)]).unwrap();
        // One community: e_in = 2*1 + 2 = 4 = 2m → Q = 1 − 1 = 0.
        assert!((modularity(&g, &[0, 0])).abs() < 1e-12);
        // Separate: e_in = loop only = 2. m = 2. k0 = 3, k1 = 1.
        let q = modularity(&g, &[0, 1]);
        let expect = 2.0 / 4.0 - ((3.0 / 4.0f64).powi(2) + (1.0 / 4.0f64).powi(2));
        assert!((q - expect).abs() < 1e-12);
    }

    #[test]
    fn resolution_extremes() {
        let g = two_triangles();
        let split = vec![0, 0, 0, 1, 1, 1];
        let merged = vec![0u32; 6];
        // γ = 0: only intra weight matters → merged (everything intra) wins.
        let q0_split = modularity_with_resolution(&g, &split, 0.0);
        let q0_merged = modularity_with_resolution(&g, &merged, 0.0);
        assert!(q0_merged > q0_split);
        // γ large: null model dominates → split wins.
        let q9_split = modularity_with_resolution(&g, &split, 9.0);
        let q9_merged = modularity_with_resolution(&g, &merged, 9.0);
        assert!(q9_split > q9_merged);
    }

    #[test]
    fn community_degrees_and_sizes() {
        let g = two_triangles();
        let part = vec![0, 0, 0, 1, 1, 1];
        let a = community_degrees(&g, &part);
        assert_eq!(a[0], 7.0);
        assert_eq!(a[1], 7.0);
        assert_eq!(community_sizes(&part)[0], 3);
        let total: f64 = a.iter().sum();
        assert_eq!(total, 2.0 * g.total_weight());
    }

    #[test]
    fn det_sum_matches_serial() {
        let vals: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let serial: f64 = vals.iter().sum();
        let det = det_sum(vals.len(), |i| vals[i]);
        // det_sum chunks at 4096, so exact equality is not guaranteed vs the
        // fully-serial order, but it must be self-consistent and close.
        assert!((det - serial).abs() < 1e-9);
        assert_eq!(det, det_sum(vals.len(), |i| vals[i]));
    }

    #[test]
    fn det_sum_empty() {
        assert_eq!(det_sum(0, |_| 1.0), 0.0);
    }

    #[test]
    fn scratch_gathers_merged_first_touch_order() {
        let g =
            from_weighted_edges(4, [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 4.0), (0, 0, 9.0)]).unwrap();
        let assignment = vec![5u32 % 4, 3, 3, 1]; // v1,v2 → comm 3; v3 → comm 1
        let mut s = NeighborScratch::default();
        s.gather(&g, &assignment, 0);
        // Self-loop excluded; comm 3 first touched (via v1, then v2 merges),
        // then comm 1 — first-touch order, weights merged in adjacency order.
        assert_eq!(s.entries, vec![(3, 3.0), (1, 4.0)]);
        // Reuse on another vertex resets cleanly.
        s.gather(&g, &assignment, 3);
        assert_eq!(s.entries, vec![(assignment[0], 4.0)]);
    }

    #[test]
    fn scratch_with_capacity_matches_default() {
        let g = two_triangles();
        let part = vec![0u32, 0, 1, 1, 2, 2];
        let mut lazy = NeighborScratch::default();
        let mut sized = NeighborScratch::with_capacity(g.num_vertices());
        for v in 0..6 {
            lazy.gather(&g, &part, v);
            sized.gather(&g, &part, v);
            assert_eq!(lazy.entries, sized.entries, "vertex {v}");
        }
    }

    #[test]
    fn best_move_prefers_positive_gain() {
        // Vertex 0 between two communities; candidate with more weight wins.
        let ctx = MoveContext {
            current: 0,
            k: 2.0,
            m: 10.0,
            a_current: 2.0,
            gamma: 1.0,
        };
        let candidates = vec![(1u32, 1.0), (2u32, 2.0)];
        let a = |c: Community| match c {
            0 => 2.0,
            _ => 4.0,
        };
        let d = best_move(&ctx, &candidates, a);
        assert_eq!(d.target, 2);
        assert!(d.gain > 0.0);
    }

    #[test]
    fn best_move_min_label_tie_break_any_order() {
        // Two identical candidates — the generalized ML heuristic picks the
        // smaller label (§5.1, Fig. 2 case 2) regardless of candidate order.
        let ctx = MoveContext {
            current: 9,
            k: 1.0,
            m: 5.0,
            a_current: 1.0,
            gamma: 1.0,
        };
        let a_of = |c: Community| if c == 9 { 1.0 } else { 2.0 };
        let d = best_move(&ctx, &[(3u32, 1.0), (7u32, 1.0)], a_of);
        assert_eq!(d.target, 3);
        let d_rev = best_move(&ctx, &[(7u32, 1.0), (3u32, 1.0)], a_of);
        assert_eq!(d_rev.target, 3, "tie-break must not depend on scan order");
        assert_eq!(d.gain, d_rev.gain);
    }

    #[test]
    fn best_move_stays_when_all_negative() {
        // Staying yields 0; an unattractive move must not be taken.
        let ctx = MoveContext {
            current: 0,
            k: 5.0,
            m: 10.0,
            a_current: 10.0,
            gamma: 1.0,
        };
        // e_src = 4 (strong ties to own community), candidate weak.
        let candidates = vec![(0u32, 4.0), (1u32, 0.1)];
        let d = best_move(&ctx, &candidates, |c| if c == 0 { 10.0 } else { 8.0 });
        assert_eq!(d.target, 0);
        assert_eq!(d.gain, 0.0);
    }

    #[test]
    fn best_move_zero_gain_never_moves() {
        // A candidate whose gain is exactly 0 must lose to staying, even
        // with a smaller label (the tie clause guards on a non-current best).
        let ctx = MoveContext {
            current: 5,
            k: 0.0,
            m: 10.0,
            a_current: 0.0,
            gamma: 1.0,
        };
        // k = 0 makes every gain term 0 when e_c == e_src == 0.
        let d = best_move(&ctx, &[(1u32, 0.0)], |_| 3.0);
        assert_eq!(d.target, 5);
    }

    #[test]
    fn gain_matches_modularity_delta() {
        // Brute-force check: predicted ΔQ equals Q(after) − Q(before) for a
        // single move on a small weighted graph (the guarantee §3 builds on).
        let g = from_weighted_edges(
            5,
            [
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 1.5),
                (4, 0, 1.0),
                (1, 3, 2.5),
            ],
        )
        .unwrap();
        let before = vec![0u32, 0, 2, 2, 4];
        let q_before = modularity(&g, &before);
        // Move vertex 4 (currently alone) into community 2.
        let v: VertexId = 4;
        let mut scratch = NeighborScratch::default();
        scratch.gather(&g, &before, v);
        let a = community_degrees(&g, &before);
        let ctx = MoveContext {
            current: before[v as usize],
            k: g.weighted_degree(v),
            m: g.total_weight(),
            a_current: a[before[v as usize] as usize],
            gamma: 1.0,
        };
        let decision = best_move(&ctx, &scratch.entries, |c| a[c as usize]);
        let mut after = before.clone();
        after[v as usize] = decision.target;
        let q_after = modularity(&g, &after);
        assert!(
            (q_after - q_before - decision.gain).abs() < 1e-12,
            "predicted {} actual {}",
            decision.gain,
            q_after - q_before
        );
    }

    #[test]
    fn tracker_apply_move_tracks_full_recompute() {
        let g = two_triangles();
        let mut assignment = vec![0u32, 0, 2, 2, 4, 5];
        let mut a = community_degrees(&g, &assignment);
        let mut tracker = ModularityTracker::new(&g, &assignment, &a, 1.0);
        assert!(tracker.drift_from_full(&g, &assignment) < 1e-12);

        // Move vertex 4 into community 5, then vertex 5 into community 2.
        for (v, to) in [(4u32, 5u32), (5u32, 2u32)] {
            let mut scratch = NeighborScratch::default();
            scratch.gather(&g, &assignment, v);
            let from = assignment[v as usize];
            let e_src = scratch
                .entries
                .iter()
                .find(|&&(c, _)| c == from)
                .map_or(0.0, |&(_, w)| w);
            let e_tgt = scratch
                .entries
                .iter()
                .find(|&&(c, _)| c == to)
                .map_or(0.0, |&(_, w)| w);
            tracker.apply_move(g.weighted_degree(v), e_src, e_tgt, from, to, &mut a);
            assignment[v as usize] = to;
            assert!(
                tracker.drift_from_full(&g, &assignment) < 1e-12,
                "tracker drifted after moving {v}"
            );
        }
        assert_eq!(a, community_degrees(&g, &assignment));
    }

    #[test]
    fn tracker_apply_batch_handles_simultaneous_moves() {
        // Both endpoints of the bridge move at once plus an unrelated vertex
        // — exercises the moved/unmoved factor-of-two accounting.
        let g = two_triangles();
        let c_prev = vec![0u32, 0, 0, 1, 1, 1];
        let c_curr = vec![0u32, 0, 1, 0, 1, 4];
        let moved: Vec<VertexId> = vec![2, 3, 5];
        let mut a = community_degrees(&g, &c_prev);
        let mut sizes = community_sizes(&c_prev);
        let mut tracker = ModularityTracker::new(&g, &c_prev, &a, 1.0);
        tracker.apply_batch(&g, &c_prev, &c_curr, &moved, &mut a, &mut sizes);
        assert!(
            tracker.drift_from_full(&g, &c_curr) < 1e-12,
            "batch drift {}",
            tracker.drift_from_full(&g, &c_curr)
        );
        assert_eq!(a, community_degrees(&g, &c_curr));
        assert_eq!(sizes, community_sizes(&c_curr));
    }

    #[test]
    fn tracker_independent_batch_bitwise_matches_rescan() {
        // Vertices 1 and 4 are non-adjacent in the two-triangle graph, so
        // {1, 4} is an independent set and may commit as one color batch.
        // Integer weights make every sum exact, so the incremental state
        // must be *bitwise* equal to a from-scratch rescan.
        let g = two_triangles();
        let mut assignment = vec![0u32, 1, 2, 3, 4, 5];
        let mut a = community_degrees(&g, &assignment);
        let mut sizes = community_sizes(&assignment);
        let mut tracker = ModularityTracker::new(&g, &assignment, &a, 1.0);

        let mut scratch = NeighborScratch::default();
        let batch: Vec<(VertexId, Community)> = vec![(1, 0), (4, 3)];
        let mut moves = Vec::new();
        for &(v, to) in &batch {
            scratch.gather(&g, &assignment, v);
            let from = assignment[v as usize];
            let find = |c: Community| {
                scratch
                    .entries
                    .iter()
                    .find(|&&(cc, _)| cc == c)
                    .map_or(0.0, |&(_, w)| w)
            };
            moves.push(IndependentMove {
                k: g.weighted_degree(v),
                e_src: find(from),
                e_tgt: find(to),
                from,
                to,
            });
        }
        tracker.apply_independent_batch(&moves, &mut a, &mut sizes);
        for &(v, to) in &batch {
            assignment[v as usize] = to;
        }

        assert_eq!(a, community_degrees(&g, &assignment));
        assert_eq!(sizes, community_sizes(&assignment));
        let rescan = ModularityTracker::new(&g, &assignment, &a, 1.0);
        assert_eq!(tracker.e_in.to_bits(), rescan.e_in.to_bits());
        assert_eq!(tracker.null_sum.to_bits(), rescan.null_sum.to_bits());
        assert_eq!(
            tracker.modularity().to_bits(),
            rescan.modularity().to_bits()
        );
    }

    #[test]
    fn tracker_empty_independent_batch_is_noop() {
        let g = two_triangles();
        let assignment = vec![0u32, 0, 0, 1, 1, 1];
        let mut a = community_degrees(&g, &assignment);
        let mut sizes = community_sizes(&assignment);
        let mut tracker = ModularityTracker::new(&g, &assignment, &a, 1.0);
        let before = (tracker.e_in.to_bits(), tracker.null_sum.to_bits());
        tracker.apply_independent_batch(&[], &mut a, &mut sizes);
        assert_eq!((tracker.e_in.to_bits(), tracker.null_sum.to_bits()), before);
    }

    #[test]
    fn tracker_serial_init_matches_parallel_init() {
        let g = two_triangles();
        let assignment = vec![0u32, 0, 0, 1, 1, 1];
        let a = community_degrees(&g, &assignment);
        let p = ModularityTracker::new(&g, &assignment, &a, 1.0);
        let s = ModularityTracker::new_serial(&g, &assignment, &a, 1.0);
        assert!((p.e_in - s.e_in).abs() < 1e-12);
        assert!((p.null_sum - s.null_sum).abs() < 1e-12);
        assert!((p.modularity() - modularity(&g, &assignment)).abs() < 1e-12);
    }
}
