//! # grappolo-core
//!
//! Serial and parallel Louvain community detection — the Rust reproduction
//! of *"Parallel heuristics for scalable community detection"* (Lu,
//! Halappanavar, Kalyanaraman; Parallel Computing 47, 2015; extended from
//! IPDPS-W 2014), whose C++/OpenMP release is known as **Grappolo**.
//!
//! The three parallelization heuristics:
//! * **Minimum labeling** (§5.1) — [`modularity::best_move`] breaks
//!   equal-gain ties toward the smallest community label, and
//!   [`phase::singlet_veto`] blocks singleton↔singleton swaps.
//! * **Vertex following** (§5.3) — [`vf`] merges single-degree vertices into
//!   their neighbor before the iterations (Lemma 3 guarantees optimality of
//!   the merge), with a recursive chain-compression extension.
//! * **Coloring** (§5.2) — [`PhaseDriver::run_colored`] processes
//!   distance-1 color classes so no two adjacent vertices decide
//!   concurrently.
//!
//! Beyond the paper, [`refine`] adds an optional Leiden-style refinement
//! pass ([`RefineMode::Leiden`]) that splits internally disconnected
//! communities and re-absorbs the sub-`1/m` "crumb" singletons the
//! geometric gate forfeits, before each rebuild. All phase variants run
//! through one entry point, [`PhaseDriver`]; configs are best built with
//! [`LouvainConfig::builder`].
//!
//! Quick start:
//!
//! ```
//! use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};
//! use grappolo_core::{detect_with_scheme, Scheme};
//!
//! let (graph, _truth) = ring_of_cliques(&CliqueRingConfig::default());
//! let result = detect_with_scheme(&graph, Scheme::BaselineVfColor);
//! assert!(result.modularity > 0.7);
//! println!("{} communities, Q = {:.4}", result.num_communities, result.modularity);
//! ```

#![warn(missing_docs)]

pub mod active;
pub mod cancel;
pub mod config;
pub mod dendrogram;
pub mod driver;
pub mod dynamic;
pub mod history;
pub mod modularity;
pub mod parallel;
pub mod phase;
pub mod rebuild;
pub mod reference;
pub mod refine;
pub mod schedule;
pub mod serial;
pub mod split;
pub mod vf;

pub use active::ActiveSet;
pub use cancel::{CancelToken, Cancelled};
pub use config::{
    geometric_for, ColoredAccounting, ColoringSchedule, LouvainConfig, LouvainConfigBuilder,
    RebuildStrategy, RefineMode, RenumberStrategy, ScheduleSpec, Scheme, SweepMode,
};
pub use dendrogram::{Dendrogram, DendrogramLevel};
pub use driver::{
    detect_communities, detect_communities_cancellable, detect_with_scheme, CommunityResult,
};
pub use dynamic::{
    update_communities, update_communities_cancellable, DynamicError, DynamicOutcome,
};
pub use history::{IterationRecord, PhaseRecord, PhaseTimings, RunTrace};
pub use modularity::{modularity, modularity_with_resolution, Community};
pub use phase::{IterationStats, PhaseDriver, PhaseOutcome};
pub use refine::{refine_phase, RefineStats};
pub use schedule::{Convergence, ScheduleMode, ThresholdSchedule};
pub use vf::{vf_preprocess, vf_preprocess_recursive, VfResult};
