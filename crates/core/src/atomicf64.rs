//! Lock-free `f64` accumulator built on `AtomicU64` bit patterns.
//!
//! Rust has no `AtomicF64`; the paper's C++ implementation leans on
//! `__sync_fetch_and_add` for community-degree updates (§5.5). The CAS loop
//! below is the Rust analogue (Rust Atomics and Locks, ch. 2–3:
//! compare-exchange based fetch-update). Relaxed ordering is sufficient for
//! pure accumulation: rayon's join points provide the necessary
//! happens-before edges between the parallel sweep and the sequential reader.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomically updatable `f64`.
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates an accumulator holding `v`.
    #[inline]
    pub fn new(v: f64) -> Self {
        Self(AtomicU64::new(v.to_bits()))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        f64::from_bits(self.0.load(order))
    }

    /// Stores `v`.
    #[inline]
    pub fn store(&self, v: f64, order: Ordering) {
        self.0.store(v.to_bits(), order)
    }

    /// Atomically adds `delta`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, delta: f64, order: Ordering) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, order, Ordering::Relaxed)
            {
                Ok(prev) => return f64::from_bits(prev),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically subtracts `delta`, returning the previous value.
    #[inline]
    pub fn fetch_sub(&self, delta: f64, order: Ordering) -> f64 {
        self.fetch_add(-delta, order)
    }
}

/// Allocates a zeroed atomic f64 vector of length `n`.
pub fn atomic_f64_vec(n: usize) -> Vec<AtomicF64> {
    (0..n).map(|_| AtomicF64::new(0.0)).collect()
}

/// Snapshots an atomic vector into a plain `Vec<f64>`.
pub fn snapshot(v: &[AtomicF64]) -> Vec<f64> {
    v.iter().map(|a| a.load(Ordering::Relaxed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn basic_ops() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(Ordering::Relaxed), 1.5);
        a.store(2.0, Ordering::Relaxed);
        assert_eq!(a.fetch_add(0.5, Ordering::Relaxed), 2.0);
        assert_eq!(a.load(Ordering::Relaxed), 2.5);
        assert_eq!(a.fetch_sub(2.5, Ordering::Relaxed), 2.5);
        assert_eq!(a.load(Ordering::Relaxed), 0.0);
    }

    #[test]
    fn concurrent_adds_sum_correctly() {
        let a = AtomicF64::new(0.0);
        (0..10_000u32).into_par_iter().for_each(|_| {
            a.fetch_add(1.0, Ordering::Relaxed);
        });
        // Adding 1.0 ten thousand times is exact in f64.
        assert_eq!(a.load(Ordering::Relaxed), 10_000.0);
    }

    #[test]
    fn concurrent_mixed_add_sub() {
        let a = AtomicF64::new(500.0);
        (0..1_000u32).into_par_iter().for_each(|i| {
            if i % 2 == 0 {
                a.fetch_add(2.0, Ordering::Relaxed);
            } else {
                a.fetch_sub(2.0, Ordering::Relaxed);
            }
        });
        assert_eq!(a.load(Ordering::Relaxed), 500.0);
    }

    #[test]
    fn vec_helpers() {
        let v = atomic_f64_vec(4);
        v[2].fetch_add(3.25, Ordering::Relaxed);
        assert_eq!(snapshot(&v), vec![0.0, 0.0, 3.25, 0.0]);
    }

    #[test]
    fn negative_and_special_values() {
        let a = AtomicF64::new(-0.5);
        a.fetch_add(-1.5, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), -2.0);
    }
}
