//! Community hierarchy across phases.
//!
//! Each Louvain phase "represents a coarser level of hierarchy in the
//! community detection process" (§3). The driver records one
//! [`DendrogramLevel`] per phase so callers can inspect any intermediate
//! granularity, not just the final partition.

use crate::modularity::Community;
use grappolo_graph::VertexId;
use serde::{Deserialize, Serialize};

/// One phase's community structure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DendrogramLevel {
    /// Community label per phase-graph vertex (labels ⊆ `0..n_phase`).
    pub assignment: Vec<Community>,
    /// Dense renumbering: label → next level's vertex id (`u32::MAX` for
    /// labels with no members).
    pub renumber: Vec<Community>,
    /// Number of non-empty communities at this level.
    pub num_communities: usize,
}

/// The full hierarchy of a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dendrogram {
    /// Maps each original vertex to its phase-0 vertex (identity unless VF
    /// preprocessing merged it away).
    pub vf_mapping: Vec<VertexId>,
    /// Per-phase levels, coarsest last.
    pub levels: Vec<DendrogramLevel>,
}

impl Dendrogram {
    /// Number of hierarchy levels (phases executed).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Community assignment of the *original* vertices after phases
    /// `0..=level`, with dense labels `0..num_communities(level)`.
    ///
    /// Panics if `level >= num_levels()`.
    pub fn flatten_to_level(&self, level: usize) -> Vec<Community> {
        assert!(level < self.levels.len(), "level {level} out of range");
        self.vf_mapping
            .iter()
            .map(|&v0| {
                let mut cur = v0 as usize;
                for l in &self.levels[..=level] {
                    cur = l.renumber[l.assignment[cur] as usize] as usize;
                }
                cur as Community
            })
            .collect()
    }

    /// Final (coarsest) assignment of the original vertices with dense
    /// labels; empty input gives an empty assignment.
    pub fn flatten(&self) -> Vec<Community> {
        if self.levels.is_empty() {
            // No phases ran: every original vertex maps to its VF vertex.
            return self.vf_mapping.iter().map(|&v| v as Community).collect();
        }
        self.flatten_to_level(self.levels.len() - 1)
    }

    /// Community counts per level, coarsest last.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.num_communities).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 original vertices; VF merged 3 into 2 (mapping [0,1,2,2]);
    /// phase 0 groups {0,1} and {2} → 2 communities;
    /// phase 1 merges everything → 1 community.
    fn sample() -> Dendrogram {
        Dendrogram {
            vf_mapping: vec![0, 1, 2, 2],
            levels: vec![
                DendrogramLevel {
                    assignment: vec![1, 1, 2],
                    renumber: vec![Community::MAX, 0, 1],
                    num_communities: 2,
                },
                DendrogramLevel {
                    assignment: vec![0, 0],
                    renumber: vec![0, Community::MAX],
                    num_communities: 1,
                },
            ],
        }
    }

    #[test]
    fn flatten_intermediate_level() {
        let d = sample();
        assert_eq!(d.flatten_to_level(0), vec![0, 0, 1, 1]);
    }

    #[test]
    fn flatten_final() {
        let d = sample();
        assert_eq!(d.flatten(), vec![0, 0, 0, 0]);
        assert_eq!(d.level_sizes(), vec![2, 1]);
        assert_eq!(d.num_levels(), 2);
    }

    #[test]
    fn flatten_without_levels_is_vf_mapping() {
        let d = Dendrogram {
            vf_mapping: vec![0, 1, 1],
            levels: Vec::new(),
        };
        assert_eq!(d.flatten(), vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flatten_bad_level_panics() {
        sample().flatten_to_level(5);
    }
}
