//! Cooperative cancellation for long-running detection jobs.
//!
//! A [`CancelToken`] is a cloneable flag a supervisor (e.g. the
//! `grappolo serve` daemon draining on SIGTERM) sets from another thread.
//! The multi-phase driver polls it at phase boundaries and the dynamic
//! update path polls it around its single resume phase — cancellation is
//! cooperative and coarse-grained on purpose: sweeps never observe the
//! flag mid-iteration, so a run that completes uncancelled is bitwise
//! identical to one executed without any token at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cloneable cancellation flag shared between a job and its supervisor.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The job observed its [`CancelToken`] and stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_propagates_across_clones_and_threads() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }
}
