//! Inter-phase graph rebuild (§5.5): collapse each community into a
//! meta-vertex and aggregate edge weights.
//!
//! The paper's sequence: (i) renumber the non-empty communities (serial in
//! their release, with a parallel prefix-sum approach listed as future work —
//! both are implemented here, see [`RenumberStrategy`]); (ii)–(iii) aggregate
//! edges, in their case via a per-community map guarded by locks ("the former
//! requires one lock and the latter requires two"). We additionally provide
//! two deterministic lock-free aggregations: a global sort and — the default
//! — per-community accumulation through the same generation-stamped flat
//! scratch ([`NeighborScratch`]) the local-moving sweep uses, which is
//! O(deg) per row with only a small per-row sort for CSR ordering.
//!
//! Weight convention: traversing every adjacency entry means an intra-
//! community non-loop edge contributes twice to the meta-vertex self-loop and
//! a self-loop once; this preserves `Σ k` per community and therefore
//! modularity across the phase transition (tested below).

use crate::config::{RebuildStrategy, RenumberStrategy};
use crate::modularity::{Community, ScratchPool};
use grappolo_graph::{CsrGraph, SharedSlice, VertexId};
use parking_lot::Mutex;
use rayon::prelude::*;
use rustc_hash::FxHashMap;

/// Result of one rebuild.
#[derive(Clone, Debug)]
pub struct RebuildResult {
    /// The condensed graph; vertex `c` is renumbered community `c`.
    pub graph: CsrGraph,
    /// Maps an old community label to its new vertex id, `u32::MAX` for
    /// labels with no members.
    pub renumber: Vec<Community>,
    /// Number of non-empty communities (= new vertex count).
    pub num_communities: usize,
}

/// Renumbers the non-empty communities of `assignment` (labels in `0..n`)
/// to dense ids `0..k` in ascending label order. Both strategies produce the
/// identical mapping; they differ only in parallelism.
pub fn renumber_communities(
    assignment: &[Community],
    strategy: RenumberStrategy,
) -> (Vec<Community>, usize) {
    // Labels are phase-graph vertex ids (< len) in normal use, but accept any
    // label range defensively.
    let n = assignment
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0)
        .max(assignment.len());
    match strategy {
        RenumberStrategy::Serial => {
            let mut renum = vec![Community::MAX; n];
            let mut present = vec![false; n];
            for &c in assignment {
                present[c as usize] = true;
            }
            let mut next = 0 as Community;
            for c in 0..n {
                if present[c] {
                    renum[c] = next;
                    next += 1;
                }
            }
            (renum, next as usize)
        }
        RenumberStrategy::ParallelPrefix => {
            // Parallel mark.
            let present: Vec<std::sync::atomic::AtomicBool> = (0..n)
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect();
            assignment.par_iter().for_each(|&c| {
                present[c as usize].store(true, std::sync::atomic::Ordering::Relaxed);
            });
            // Chunked exclusive prefix sum over presence counts.
            const CHUNK: usize = 8192;
            let num_chunks = n.div_ceil(CHUNK).max(1);
            let counts: Vec<usize> = (0..num_chunks)
                .into_par_iter()
                .map(|ch| {
                    let start = ch * CHUNK;
                    let end = (start + CHUNK).min(n);
                    (start..end)
                        .filter(|&c| present[c].load(std::sync::atomic::Ordering::Relaxed))
                        .count()
                })
                .collect();
            let mut offsets = vec![0usize; num_chunks + 1];
            for i in 0..num_chunks {
                offsets[i + 1] = offsets[i] + counts[i];
            }
            let total = offsets[num_chunks];
            let mut renum = vec![Community::MAX; n];
            renum
                .par_chunks_mut(CHUNK)
                .enumerate()
                .for_each(|(ch, slice)| {
                    let start = ch * CHUNK;
                    let mut next = offsets[ch] as Community;
                    for (i, r) in slice.iter_mut().enumerate() {
                        if present[start + i].load(std::sync::atomic::Ordering::Relaxed) {
                            *r = next;
                            next += 1;
                        }
                    }
                });
            (renum, total)
        }
    }
}

/// Builds the condensed graph for `assignment` over `g`.
pub fn rebuild(
    g: &CsrGraph,
    assignment: &[Community],
    strategy: RebuildStrategy,
    renumber_strategy: RenumberStrategy,
) -> RebuildResult {
    assert_eq!(assignment.len(), g.num_vertices());
    let (renumber, num_communities) = renumber_communities(assignment, renumber_strategy);

    let graph = match strategy {
        RebuildStrategy::StampAggregate => rebuild_stamp(g, assignment, &renumber, num_communities),
        RebuildStrategy::SortAggregate => rebuild_sort(g, assignment, &renumber, num_communities),
        RebuildStrategy::LockMap => rebuild_lockmap(g, assignment, &renumber, num_communities),
    };
    RebuildResult {
        graph,
        renumber,
        num_communities,
    }
}

/// Groups vertices `0..n` by output row: returns `(offsets, members)` with
/// `members[offsets[r]..offsets[r + 1]]` listing row `r`'s vertices in
/// ascending id order (counting sort — deterministic).
pub(crate) fn group_by_row(
    n: usize,
    num_rows: usize,
    row_of: impl Fn(usize) -> Community,
) -> (Vec<usize>, Vec<VertexId>) {
    let mut offsets = vec![0usize; num_rows + 1];
    for v in 0..n {
        offsets[row_of(v) as usize + 1] += 1;
    }
    for r in 0..num_rows {
        offsets[r + 1] += offsets[r];
    }
    let mut cursor = offsets.clone();
    let mut members = vec![0 as VertexId; n];
    for v in 0..n {
        let r = row_of(v) as usize;
        members[cursor[r]] = v as VertexId;
        cursor[r] += 1;
    }
    (offsets, members)
}

/// Makes the low-id row authoritative for each inter-community pair and
/// mirrors its weight, restoring exact CSR symmetry when the two directions
/// were accumulated in different orders. Rows must be sorted by target.
pub(crate) fn mirror_low_id_rows(rows: &mut [Vec<(Community, f64)>]) {
    for u in 0..rows.len() {
        for idx in 0..rows[u].len() {
            let (v, w) = rows[u][idx];
            if (v as usize) > u {
                let row_v = &mut rows[v as usize];
                if let Ok(pos) = row_v.binary_search_by(|&(c, _)| c.cmp(&(u as Community))) {
                    row_v[pos].1 = w;
                }
            }
        }
    }
}

/// [`mirror_low_id_rows`] over assembled CSR arrays: for every
/// inter-row pair the low-id row's weight is copied onto the high-id
/// mirror entry (rows sorted by target, binary-searched). Semantically
/// identical to the rows-based pass — only the storage differs.
pub(crate) fn mirror_low_id_csr(offsets: &[usize], targets: &[Community], weights: &mut [f64]) {
    let num_rows = offsets.len() - 1;
    for u in 0..num_rows {
        for idx in offsets[u]..offsets[u + 1] {
            let v = targets[idx] as usize;
            if v > u {
                let row_v = &targets[offsets[v]..offsets[v + 1]];
                if let Ok(pos) = row_v.binary_search(&(u as Community)) {
                    weights[offsets[v] + pos] = weights[idx];
                }
            }
        }
    }
}

/// Assembles sorted per-community rows into a CSR graph.
pub(crate) fn rows_to_csr(rows: Vec<Vec<(Community, f64)>>) -> CsrGraph {
    let num_rows = rows.len();
    let mut offsets = vec![0usize; num_rows + 1];
    for (c, row) in rows.iter().enumerate() {
        offsets[c + 1] = offsets[c] + row.len();
    }
    let mut targets = Vec::with_capacity(offsets[num_rows]);
    let mut weights = Vec::with_capacity(offsets[num_rows]);
    for row in rows {
        for (c, w) in row {
            targets.push(c);
            weights.push(w);
        }
    }
    CsrGraph::from_sorted_adjacency(offsets, targets, weights)
}

/// Row count above which [`condense_stamped`] switches from the rows-based
/// assembly to the flat two-pass scatter. Measured crossover: with few
/// output rows the stamped mark array stays cache-resident, making the
/// flat path's second gather pass pure overhead (≈ 1.8× slower on a
/// 200-row condensation); by ~10⁵ rows the mark array spills past L2, the
/// two assemblies run at parity speed-wise, and the flat path wins on
/// memory — no per-row heap `Vec`s (one per community) and no doubled
/// `rows_to_csr` copy. 64 K rows ≈ a 512 KB mark array, the L2 boundary on
/// the reference container.
const FLAT_ASSEMBLY_MIN_ROWS: usize = 1 << 16;

/// Stamped-scratch condensation shared by the inter-phase rebuild and VF
/// compaction, with `row_of` mapping any original vertex to its output row.
/// Dispatches between the two bitwise-identical assemblies
/// ([`condense_stamped_flat`] / [`condense_stamped_rows`]) on
/// [`FLAT_ASSEMBLY_MIN_ROWS`]; since both produce identical CSR arrays
/// (property-tested), the dispatch cannot affect results — only speed and
/// peak memory.
pub(crate) fn condense_stamped(
    g: &CsrGraph,
    num_rows: usize,
    offsets: &[usize],
    members: &[VertexId],
    row_of: impl Fn(usize) -> Community + Sync + Send,
) -> CsrGraph {
    if num_rows >= FLAT_ASSEMBLY_MIN_ROWS {
        condense_stamped_flat(g, num_rows, offsets, members, row_of)
    } else {
        condense_stamped_rows(g, num_rows, offsets, members, row_of)
    }
}

/// Flat **two-pass** assembly directly into the output CSR arrays.
///
/// Pass 1 runs the stamped gather per output row counting its distinct
/// target rows; an exclusive prefix sum turns the counts into CSR offsets.
/// Pass 2 re-runs the gather and scatters each row's sorted `(target,
/// weight)` entries straight into its preallocated `targets`/`weights`
/// span — no per-row `Vec`, no `rows_to_csr` copy. Rows own disjoint
/// output spans, so the parallel scatter is race-free.
///
/// Every directed adjacency entry of the row's members is accumulated in
/// (member, adjacency) order — intra non-loop edges are seen from both
/// endpoints (doubling into the meta self-loop, the m-preserving
/// convention) and self-loops once. The accumulation order is fixed by the
/// CSR layout, so results are bitwise independent of the thread count; only
/// the final per-row sort (unique keys) orders the typically-short target
/// list. Mirror weights are then unified exactly as in the lock-map path so
/// the CSR stays bitwise symmetric.
pub(crate) fn condense_stamped_flat(
    g: &CsrGraph,
    num_rows: usize,
    offsets: &[usize],
    members: &[VertexId],
    row_of: impl Fn(usize) -> Community + Sync + Send,
) -> CsrGraph {
    // Pass 1: count each row's distinct neighbor rows (the gather without
    // materializing entries beyond the scratch).
    let counts: Vec<usize> = (0..num_rows as Community)
        .into_par_iter()
        .map_init(
            || ScratchPool::global().take(),
            |scratch, c| {
                scratch.begin(num_rows);
                for &v in &members[offsets[c as usize]..offsets[c as usize + 1]] {
                    for (u, w) in g.neighbors(v) {
                        scratch.accumulate(row_of(u as usize), w);
                    }
                }
                scratch.entries.len()
            },
        )
        .collect();
    let mut row_offsets = vec![0usize; num_rows + 1];
    for r in 0..num_rows {
        row_offsets[r + 1] = row_offsets[r] + counts[r];
    }
    let total = row_offsets[num_rows];

    // Pass 2: re-gather and scatter each row's sorted entries into its
    // span. Disjointness: row `r` writes exactly
    // `targets/weights[row_offsets[r]..row_offsets[r + 1]]`, and the
    // prefix-sum spans are non-overlapping by construction.
    let mut targets = vec![0 as Community; total];
    let mut weights = vec![0.0f64; total];
    let t_shared = SharedSlice::new(&mut targets);
    let w_shared = SharedSlice::new(&mut weights);
    (0..num_rows as Community)
        .into_par_iter()
        .map_init(
            || ScratchPool::global().take(),
            |scratch, c| {
                scratch.begin(num_rows);
                for &v in &members[offsets[c as usize]..offsets[c as usize + 1]] {
                    for (u, w) in g.neighbors(v) {
                        scratch.accumulate(row_of(u as usize), w);
                    }
                }
                scratch.entries.sort_unstable_by_key(|&(t, _)| t);
                let base = row_offsets[c as usize];
                debug_assert_eq!(scratch.entries.len(), counts[c as usize]);
                for (i, &(t, w)) in scratch.entries.iter().enumerate() {
                    // Safety: in bounds (base + i < row_offsets[c + 1] ≤ total)
                    // and this row's span is written by this worker only.
                    unsafe {
                        t_shared.write(base + i, t);
                        w_shared.write(base + i, w);
                    }
                }
            },
        )
        .for_each(drop);
    mirror_low_id_csr(&row_offsets, &targets, &mut weights);
    CsrGraph::from_sorted_adjacency(row_offsets, targets, weights)
}

/// The rows-based assembly of the stamped condensation — per-row
/// `Vec<(Community, f64)>`s collected then copied through [`rows_to_csr`].
/// Bitwise identical output to [`condense_stamped_flat`]
/// (property-tested); the faster assembly while the mark array stays
/// cache-resident (small row counts), and the `rebuild` bench's
/// `assembly_rows` arm.
pub(crate) fn condense_stamped_rows(
    g: &CsrGraph,
    num_rows: usize,
    offsets: &[usize],
    members: &[VertexId],
    row_of: impl Fn(usize) -> Community + Sync + Send,
) -> CsrGraph {
    let mut rows: Vec<Vec<(Community, f64)>> = (0..num_rows as Community)
        .into_par_iter()
        .map_init(
            || ScratchPool::global().take(),
            |scratch, c| {
                scratch.begin(num_rows);
                for &v in &members[offsets[c as usize]..offsets[c as usize + 1]] {
                    for (u, w) in g.neighbors(v) {
                        scratch.accumulate(row_of(u as usize), w);
                    }
                }
                let mut row = std::mem::take(&mut scratch.entries);
                row.sort_unstable_by_key(|&(t, _)| t);
                row
            },
        )
        .collect();
    mirror_low_id_rows(&mut rows);
    rows_to_csr(rows)
}

/// Default aggregation: [`condense_stamped`] over the renumbered
/// communities.
fn rebuild_stamp(
    g: &CsrGraph,
    assignment: &[Community],
    renumber: &[Community],
    num_communities: usize,
) -> CsrGraph {
    let row_of = |u: usize| renumber[assignment[u] as usize];
    let (offsets, members) = group_by_row(assignment.len(), num_communities, row_of);
    condense_stamped(g, num_communities, &offsets, &members, row_of)
}

/// Deterministic sort-based aggregation over all directed adjacency entries.
fn rebuild_sort(
    g: &CsrGraph,
    assignment: &[Community],
    renumber: &[Community],
    num_communities: usize,
) -> CsrGraph {
    let n = g.num_vertices();
    // Emit (cu, cv, w) for every stored adjacency entry.
    let mut entries: Vec<(Community, Community, f64)> = (0..n as VertexId)
        .into_par_iter()
        .flat_map_iter(|u| {
            let cu = renumber[assignment[u as usize] as usize];
            g.neighbors(u)
                .map(move |(v, w)| (cu, renumber[assignment[v as usize] as usize], w))
        })
        .collect();
    // Weight in the key ⇒ per-(cu,cv) runs merge in a fixed order; mirrored
    // runs share the same multiset of weights and thus the same float sum.
    entries.par_sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));

    let mut offsets = vec![0usize; num_communities + 1];
    let mut targets: Vec<VertexId> = Vec::new();
    let mut weights: Vec<f64> = Vec::new();
    let mut idx = 0usize;
    while idx < entries.len() {
        let (cu, cv, mut w) = entries[idx];
        idx += 1;
        while idx < entries.len() && entries[idx].0 == cu && entries[idx].1 == cv {
            w += entries[idx].2;
            idx += 1;
        }
        offsets[cu as usize + 1] += 1;
        targets.push(cv);
        weights.push(w);
    }
    for c in 0..num_communities {
        offsets[c + 1] += offsets[c];
    }
    CsrGraph::from_sorted_adjacency(offsets, targets, weights)
}

/// The paper's lock-per-community map aggregation: one lock per intra edge,
/// two per inter edge.
fn rebuild_lockmap(
    g: &CsrGraph,
    assignment: &[Community],
    renumber: &[Community],
    num_communities: usize,
) -> CsrGraph {
    let maps: Vec<Mutex<FxHashMap<Community, f64>>> = (0..num_communities)
        .map(|_| Mutex::new(FxHashMap::default()))
        .collect();

    // Traverse each undirected edge once (self-loops once).
    (0..g.num_vertices() as VertexId)
        .into_par_iter()
        .for_each(|u| {
            let cu = renumber[assignment[u as usize] as usize];
            for (v, w) in g.neighbors(u) {
                if v < u {
                    continue; // visit each undirected edge at its low endpoint
                }
                let cv = renumber[assignment[v as usize] as usize];
                if cu == cv {
                    // Intra-community: one lock. Non-loop contributes doubled.
                    let add = if u == v { w } else { 2.0 * w };
                    *maps[cu as usize].lock().entry(cu).or_insert(0.0) += add;
                } else {
                    // Inter-community: two locks.
                    *maps[cu as usize].lock().entry(cv).or_insert(0.0) += w;
                    *maps[cv as usize].lock().entry(cu).or_insert(0.0) += w;
                }
            }
        });

    // Drain maps into sorted CSR rows. The two directions of an
    // inter-community pair accumulate the same multiset of weights but in
    // unordered thread interleavings, so their float sums can differ in the
    // last ulp; `mirror_low_id_rows` restores exact CSR symmetry.
    let mut rows: Vec<Vec<(Community, f64)>> = maps
        .into_par_iter()
        .map(|m| {
            let mut row: Vec<(Community, f64)> = m.into_inner().into_iter().collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            row
        })
        .collect();
    mirror_low_id_rows(&mut rows);
    rows_to_csr(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{planted_partition, PlantedConfig};

    fn strategies() -> [(RebuildStrategy, RenumberStrategy); 6] {
        [
            (RebuildStrategy::StampAggregate, RenumberStrategy::Serial),
            (
                RebuildStrategy::StampAggregate,
                RenumberStrategy::ParallelPrefix,
            ),
            (RebuildStrategy::SortAggregate, RenumberStrategy::Serial),
            (
                RebuildStrategy::SortAggregate,
                RenumberStrategy::ParallelPrefix,
            ),
            (RebuildStrategy::LockMap, RenumberStrategy::Serial),
            (RebuildStrategy::LockMap, RenumberStrategy::ParallelPrefix),
        ]
    }

    #[test]
    fn two_triangles_condense() {
        let g = from_unweighted_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        let assignment = vec![0, 0, 0, 5, 5, 5]; // labels need not be dense
        for (s, r) in strategies() {
            let res = rebuild(&g, &assignment, s, r);
            assert_eq!(res.num_communities, 2, "{s:?}");
            let cg = &res.graph;
            assert_eq!(cg.num_vertices(), 2);
            // Each triangle: 3 intra edges → self-loop weight 6.
            assert_eq!(cg.self_loop_weight(0), 6.0);
            assert_eq!(cg.self_loop_weight(1), 6.0);
            assert_eq!(cg.edge_weight(0, 1), Some(1.0));
            // m preserved.
            assert_eq!(cg.total_weight(), g.total_weight());
        }
    }

    #[test]
    fn renumber_maps_ascending() {
        let assignment = vec![7, 3, 7, 0];
        for strat in [RenumberStrategy::Serial, RenumberStrategy::ParallelPrefix] {
            let (renum, k) = renumber_communities(&assignment, strat);
            assert_eq!(k, 3);
            assert_eq!(renum[0], 0);
            assert_eq!(renum[3], 1);
            assert_eq!(renum[7], 2);
            assert_eq!(renum[1], Community::MAX);
        }
    }

    #[test]
    fn renumber_strategies_agree_on_random_input() {
        let mut assignment = Vec::new();
        let mut state = 99u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            assignment.push((state >> 40) as u32 % 50_000);
        }
        let (a, ka) = renumber_communities(&assignment, RenumberStrategy::Serial);
        let (b, kb) = renumber_communities(&assignment, RenumberStrategy::ParallelPrefix);
        assert_eq!(ka, kb);
        assert_eq!(a, b);
    }

    #[test]
    fn strategies_agree_on_planted_graph() {
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let base = rebuild(
            &g,
            &truth,
            RebuildStrategy::SortAggregate,
            RenumberStrategy::Serial,
        );
        for (s, r) in strategies() {
            let res = rebuild(&g, &truth, s, r);
            assert_eq!(res.num_communities, base.num_communities);
            let (cg, bg) = (&res.graph, &base.graph);
            assert_eq!(cg.num_edges(), bg.num_edges(), "{s:?}/{r:?}");
            for v in 0..cg.num_vertices() as VertexId {
                let a: Vec<_> = cg.neighbors(v).collect();
                let b: Vec<_> = bg.neighbors(v).collect();
                assert_eq!(a.len(), b.len());
                for ((ta, wa), (tb, wb)) in a.iter().zip(b.iter()) {
                    assert_eq!(ta, tb);
                    assert!((wa - wb).abs() < 1e-9, "weight mismatch {wa} vs {wb}");
                }
            }
        }
    }

    #[test]
    fn stamp_rebuild_bitwise_deterministic_across_thread_counts() {
        // The default aggregation must keep the §5.4 stability guarantee:
        // identical CSR arrays (weights bit-for-bit) for any pool size.
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                rebuild(
                    &g,
                    &truth,
                    RebuildStrategy::StampAggregate,
                    RenumberStrategy::ParallelPrefix,
                )
            })
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.num_communities, r4.num_communities);
        for v in 0..r1.graph.num_vertices() as VertexId {
            let a: Vec<_> = r1.graph.neighbors(v).collect();
            let b: Vec<_> = r4.graph.neighbors(v).collect();
            assert_eq!(a, b, "row {v} differs between pool sizes");
        }
    }

    #[test]
    fn flat_assembly_bitwise_matches_rows_reference() {
        // The two-pass count + scatter assembly must reproduce the retained
        // rows-based reference exactly: same offsets, same targets, weights
        // bit-for-bit — on a community-rich partition, a scattered one, and
        // a singleton one.
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let scattered: Vec<Community> = (0..g.num_vertices() as u32).map(|v| v % 97).collect();
        let singleton: Vec<Community> = (0..g.num_vertices() as u32).collect();
        for assignment in [&truth, &scattered, &singleton] {
            let flat = crate::reference::rebuild_stamp_flat_assembly(&g, assignment);
            let rows = crate::reference::rebuild_stamp_rows_reference(&g, assignment);
            assert_eq!(flat.num_vertices(), rows.num_vertices());
            assert_eq!(flat.num_edges(), rows.num_edges());
            for v in 0..flat.num_vertices() as VertexId {
                let a: Vec<(VertexId, u64)> =
                    flat.neighbors(v).map(|(u, w)| (u, w.to_bits())).collect();
                let b: Vec<(VertexId, u64)> =
                    rows.neighbors(v).map(|(u, w)| (u, w.to_bits())).collect();
                assert_eq!(a, b, "row {v} differs between assemblies");
            }
        }
    }

    #[test]
    fn mirror_low_id_csr_matches_rows_pass() {
        // Same asymmetric input run through both mirror passes.
        let rows_input = vec![
            vec![(1u32, 1.0), (2u32, 2.0)],
            vec![(0u32, 1.5)],
            vec![(0u32, 2.5)],
        ];
        let mut rows = rows_input.clone();
        mirror_low_id_rows(&mut rows);
        let offsets = vec![0usize, 2, 3, 4];
        let targets = vec![1u32, 2, 0, 0];
        let mut weights = vec![1.0, 2.0, 1.5, 2.5];
        mirror_low_id_csr(&offsets, &targets, &mut weights);
        // Low-id row authoritative: (0,1) = 1.0 both ways, (0,2) = 2.0.
        assert_eq!(rows[1][0].1, 1.0);
        assert_eq!(rows[2][0].1, 2.0);
        assert_eq!(weights, vec![1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn stamp_rebuild_rows_are_exactly_symmetric() {
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let res = rebuild(
            &g,
            &truth,
            RebuildStrategy::StampAggregate,
            RenumberStrategy::Serial,
        );
        let cg = &res.graph;
        for u in 0..cg.num_vertices() as VertexId {
            for (v, w) in cg.neighbors(u) {
                if v != u {
                    assert_eq!(cg.edge_weight(v, u), Some(w), "asymmetry at ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn modularity_invariant_across_rebuild() {
        // Q(partition) on g == Q(singletons) on the condensed graph — the
        // fundamental invariant making multi-phase Louvain correct.
        let (g, truth) = planted_partition(&PlantedConfig {
            num_vertices: 1_500,
            num_communities: 15,
            ..Default::default()
        });
        let q_orig = modularity(&g, &truth);
        let res = rebuild(
            &g,
            &truth,
            RebuildStrategy::SortAggregate,
            RenumberStrategy::Serial,
        );
        let singleton: Vec<Community> = (0..res.graph.num_vertices() as Community).collect();
        let q_cond = modularity(&res.graph, &singleton);
        assert!(
            (q_orig - q_cond).abs() < 1e-12,
            "original {q_orig} vs condensed {q_cond}"
        );
    }

    #[test]
    fn singleton_assignment_rebuild_is_isomorphic() {
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let assignment: Vec<Community> = (0..4).collect();
        let res = rebuild(
            &g,
            &assignment,
            RebuildStrategy::SortAggregate,
            RenumberStrategy::Serial,
        );
        assert_eq!(res.graph.num_vertices(), 4);
        assert_eq!(res.graph.num_edges(), 3);
        assert_eq!(res.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn all_one_community_gives_single_loop() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2)]).unwrap();
        let res = rebuild(
            &g,
            &[0, 0, 0],
            RebuildStrategy::LockMap,
            RenumberStrategy::Serial,
        );
        assert_eq!(res.graph.num_vertices(), 1);
        assert_eq!(res.graph.self_loop_weight(0), 4.0); // 2 edges × 2
        assert_eq!(res.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn empty_graph_rebuild() {
        let g = CsrGraph::empty(0);
        let res = rebuild(
            &g,
            &[],
            RebuildStrategy::SortAggregate,
            RenumberStrategy::Serial,
        );
        assert_eq!(res.num_communities, 0);
        assert_eq!(res.graph.num_vertices(), 0);
    }

    #[test]
    fn self_loops_carry_through() {
        let g = grappolo_graph::from_weighted_edges(2, [(0, 0, 3.0), (0, 1, 1.0)]).unwrap();
        let res = rebuild(
            &g,
            &[0, 0],
            RebuildStrategy::SortAggregate,
            RenumberStrategy::Serial,
        );
        // loop 3.0 + edge doubled 2.0 = 5.0
        assert_eq!(res.graph.self_loop_weight(0), 5.0);
        assert_eq!(res.graph.total_weight(), g.total_weight());
    }
}
