//! Batched dynamic updates: apply an edge batch to a graph whose communities
//! are already known and **re-converge locally** instead of rerunning
//! detection from scratch.
//!
//! The driver composes machinery every prior layer already guarantees to be
//! bitwise deterministic across thread counts:
//!
//! 1. [`CsrGraph::apply_edge_batch_diff`] rebuilds the CSR arrays through
//!    the builder's count → prefix → scatter path and reports the net
//!    per-edge changes;
//! 2. the previous assignment is carried forward (new vertices enter as
//!    singletons labeled with their own id — old labels are `< old_n`, so
//!    the label spaces cannot collide);
//! 3. the [`ModularityTracker`] is reconstructed **algebraically**: given
//!    the old partition's modularity, `Σ e_in` is inverted from Eq. 3 (the
//!    same trick [`crate::refine`] uses for its `from_parts` tracker) and
//!    patched with the touched edges' weight deltas — no O(m) rescan of the
//!    updated graph;
//! 4. the endpoints of changed edges seed the [`crate::ActiveSet`] frontier
//!    and the unordered sweep resumes with pruning engaged from iteration 0,
//!    so vertices outside the dirty closure are never re-examined and keep
//!    their labels **bitwise** (the quiesced-region guarantee).
//!
//! Batches that change more than [`LouvainConfig::dynamic_fallback_fraction`]
//! of the updated graph's edges fall back to a from-scratch
//! [`detect_communities`] run — past that density the carried state is
//! mostly invalidated and local moving would do full-sweep work for worse
//! quality.

use crate::cancel::{CancelToken, Cancelled};
use crate::config::LouvainConfig;
use crate::driver::detect_communities_cancellable;
use crate::modularity::{
    community_degrees, community_sizes, det_sum, intra_community_weight, Community,
    ModularityTracker,
};
use crate::parallel::{unordered_resume_impl, ResumeState};
use grappolo_graph::{CsrGraph, EdgeDelta, MergePolicy, VertexId};

/// Result of one batched dynamic update.
#[derive(Clone, Debug)]
pub struct DynamicOutcome {
    /// The updated graph (batch applied).
    pub graph: CsrGraph,
    /// Community labels on the updated graph's vertices. On the incremental
    /// path labels are **carried**, not renumbered: a vertex untouched by
    /// the batch's dirty closure keeps its previous label bitwise. On the
    /// fallback path labels are the from-scratch run's dense labels.
    pub assignment: Vec<Community>,
    /// Modularity of `assignment` on the updated graph.
    pub modularity: f64,
    /// Number of (non-empty) communities.
    pub num_communities: usize,
    /// Local re-convergence iterations (0 when the batch was a no-op; the
    /// from-scratch total when `fell_back`).
    pub iterations: usize,
    /// Net per-edge changes the batch resolved to.
    pub changed_edges: usize,
    /// Dirty seed vertices (endpoints of changed edges).
    pub seed_vertices: usize,
    /// Whether the driver fell back to from-scratch detection.
    pub fell_back: bool,
}

/// Applies `batch` to `g` and re-converges the communities in `assignment`
/// locally around the changed edges.
///
/// `prev_modularity` is the modularity of (`g`, `assignment`) if the caller
/// tracked it (e.g. from a previous [`detect_communities`] or
/// `update_communities` run): the tracker is then seeded purely
/// algebraically. With `None`, one deterministic O(m) intra-weight scan of
/// the updated graph replaces it — still far cheaper than re-detection.
///
/// Duplicate inserts merge with [`MergePolicy::Sum`], matching
/// [`detect_communities`]' ingestion semantics.
///
/// Errors on an invalid config, an assignment that does not cover the graph
/// (`assignment has N entries, graph has M vertices`), out-of-range labels,
/// or a batch the delta API rejects.
pub fn update_communities(
    g: &CsrGraph,
    assignment: &[Community],
    prev_modularity: Option<f64>,
    batch: &[EdgeDelta],
    config: &LouvainConfig,
) -> Result<DynamicOutcome, String> {
    update_communities_cancellable(
        g,
        assignment,
        prev_modularity,
        batch,
        config,
        &CancelToken::new(),
    )
    .map_err(|e| match e {
        DynamicError::Failed(msg) => msg,
        DynamicError::Cancelled(_) => unreachable!("fresh token cannot be cancelled"),
    })
}

/// Why a cancellable dynamic update did not produce an outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynamicError {
    /// The supervisor set the [`CancelToken`] before the update finished;
    /// the carried assignment was discarded, nothing was mutated.
    Cancelled(Cancelled),
    /// Invalid input or config (same messages as [`update_communities`]).
    Failed(String),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Cancelled(c) => c.fmt(f),
            DynamicError::Failed(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for DynamicError {}

/// [`update_communities`] with cooperative cancellation: the token is
/// polled after the batch is applied and around the resume phase (the
/// from-scratch fallback polls it at every phase boundary via
/// [`detect_communities_cancellable`]). A run that completes with the
/// token unset is bitwise identical to the uncancellable entry point.
pub fn update_communities_cancellable(
    g: &CsrGraph,
    assignment: &[Community],
    prev_modularity: Option<f64>,
    batch: &[EdgeDelta],
    config: &LouvainConfig,
    token: &CancelToken,
) -> Result<DynamicOutcome, DynamicError> {
    config.validate().map_err(DynamicError::Failed)?;
    let fail = DynamicError::Failed;
    let check = |token: &CancelToken| -> Result<(), DynamicError> {
        if token.is_cancelled() {
            Err(DynamicError::Cancelled(Cancelled))
        } else {
            Ok(())
        }
    };
    check(token)?;
    let old_n = g.num_vertices();
    if assignment.len() != old_n {
        return Err(fail(format!(
            "assignment has {} entries, graph has {} vertices",
            assignment.len(),
            old_n
        )));
    }
    if let Some(&c) = assignment.iter().find(|&&c| c as usize >= old_n.max(1)) {
        return Err(fail(format!(
            "assignment label {c} out of range for a {old_n}-vertex graph"
        )));
    }

    let (g_new, changes) = g
        .apply_edge_batch_diff(batch, MergePolicy::Sum)
        .map_err(|e| fail(e.to_string()))?;
    check(token)?;

    // Dense batches invalidate the carried state: rerun from scratch.
    let edges_after = g_new.num_edges();
    if edges_after > 0
        && changes.len() as f64 > config.dynamic_fallback_fraction * edges_after as f64
    {
        let result = detect_communities_cancellable(&g_new, config, token)
            .map_err(DynamicError::Cancelled)?;
        return Ok(DynamicOutcome {
            modularity: result.modularity,
            num_communities: result.num_communities,
            iterations: result.trace.total_iterations(),
            changed_edges: changes.len(),
            seed_vertices: 0,
            fell_back: true,
            assignment: result.assignment,
            graph: g_new,
        });
    }

    // Carry the assignment; vertices the batch created enter as singletons
    // labeled with their own id (old labels < old_n, so no collision).
    let new_n = g_new.num_vertices();
    let mut carried: Vec<Community> = Vec::with_capacity(new_n);
    carried.extend_from_slice(assignment);
    carried.extend(old_n as Community..new_n as Community);

    // Dirty seeds: endpoints of changed edges, ascending, deduplicated.
    let mut seeds: Vec<VertexId> = changes.iter().flat_map(|c| [c.u, c.v]).collect();
    seeds.sort_unstable();
    seeds.dedup();

    let outcome = match config.num_threads {
        Some(t) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t.max(1))
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| {
                resume_inner(g, &g_new, carried, prev_modularity, &changes, seeds, config)
            })
        }
        None if !config.parallel => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| {
                resume_inner(g, &g_new, carried, prev_modularity, &changes, seeds, config)
            })
        }
        None => resume_inner(g, &g_new, carried, prev_modularity, &changes, seeds, config),
    }
    .map_err(fail)?;
    // The resume phase itself is short and bounded; a cancellation that
    // arrived while it ran discards the outcome here.
    check(token)?;
    Ok(outcome)
}

fn resume_inner(
    g_old: &CsrGraph,
    g_new: &CsrGraph,
    carried: Vec<Community>,
    prev_modularity: Option<f64>,
    changes: &[grappolo_graph::EdgeChange],
    seeds: Vec<VertexId>,
    config: &LouvainConfig,
) -> Result<DynamicOutcome, String> {
    let new_n = g_new.num_vertices();
    let gamma = config.resolution;
    let two_m_old = 2.0 * g_old.total_weight();

    // Σ e_in on the updated graph under the carried labels, without scanning
    // its m edges: invert Eq. 3 on the old graph (Q_old is known), then
    // patch in the touched edges' weight deltas. An intra adjacency entry
    // counts from both endpoints, self-loops once.
    let e_in_new = match prev_modularity {
        Some(q_old) if two_m_old > 0.0 => {
            let a_old = community_degrees(g_old, &carried[..g_old.num_vertices()]);
            let null_old = det_sum(a_old.len(), |c| a_old[c] * a_old[c]);
            let e_in_old = (q_old + gamma * null_old / (two_m_old * two_m_old)) * two_m_old;
            let patch: f64 = changes
                .iter()
                .filter(|c| carried[c.u as usize] == carried[c.v as usize])
                .map(|c| c.weight_delta() * if c.u == c.v { 1.0 } else { 2.0 })
                .sum();
            e_in_old + patch
        }
        _ => intra_community_weight(g_new, &carried),
    };
    let a_new = community_degrees(g_new, &carried);
    let null_new = det_sum(a_new.len(), |c| a_new[c] * a_new[c]);
    let tracker = ModularityTracker::from_parts(g_new, e_in_new, null_new, gamma);
    let mut sizes = community_sizes(&carried);
    sizes.resize(new_n, 0);

    let seed_vertices = seeds.len();
    let changed_edges = changes.len();
    let conv = config.convergence(config.final_threshold);
    let state = ResumeState {
        assignment: carried,
        a: a_new,
        sizes,
        tracker,
        seeds,
    };
    // Note: `config.refine` is deliberately NOT applied here. Leiden-style
    // refinement relabels every community to its minimum member vertex id,
    // which would destroy the quiesced-region guarantee (vertices untouched
    // by the batch keep their previous labels bitwise). Refinement still
    // runs on the from-scratch fallback path, where no labels are carried.
    let outcome =
        unordered_resume_impl(g_new, state, &conv, config.max_iterations_per_phase, gamma);

    let mut seen = vec![false; new_n.max(1)];
    let mut num_communities = 0usize;
    for &c in &outcome.assignment {
        if !seen[c as usize] {
            seen[c as usize] = true;
            num_communities += 1;
        }
    }

    Ok(DynamicOutcome {
        graph: g_new.clone(),
        modularity: outcome.final_modularity,
        num_communities,
        iterations: outcome.iterations.len(),
        changed_edges,
        seed_vertices,
        fell_back: false,
        assignment: outcome.assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LouvainConfigBuilder, SweepMode};
    use crate::driver::detect_communities;
    use grappolo_graph::gen::{
        erdos_renyi, planted_partition, rmat, ErConfig, PlantedConfig, RmatConfig,
    };

    /// Deterministic synthetic batch: delete every `stride`-th undirected
    /// edge, reweight the next one, and insert a few LCG-picked new edges.
    fn synth_batch(g: &CsrGraph, stride: usize, inserts: usize) -> Vec<EdgeDelta> {
        let mut batch = Vec::new();
        for (i, (u, v, w)) in g.undirected_edges().enumerate() {
            if i % stride == 0 {
                batch.push(EdgeDelta::Delete { u, v });
            } else if i % stride == 1 {
                batch.push(EdgeDelta::Reweight {
                    u,
                    v,
                    weight: w + 0.5,
                });
            }
        }
        let n = g.num_vertices() as u64;
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) % n
        };
        while batch
            .iter()
            .filter(|d| matches!(d, EdgeDelta::Insert { .. }))
            .count()
            < inserts
        {
            let (u, v) = (step() as VertexId, step() as VertexId);
            if u != v && !g.has_edge(u, v) {
                batch.push(EdgeDelta::Insert { u, v, weight: 1.0 });
            }
        }
        batch
    }

    fn base_config() -> LouvainConfig {
        LouvainConfig::builder()
            .sweep(SweepMode::Active)
            .build()
            .unwrap()
    }

    fn q_within_1pct(g: &CsrGraph, name: &str, stride: usize) {
        let config = base_config();
        let before = detect_communities(g, &config);
        // ISSUE-scale dirty set: ~2/stride of the edges deleted + reweighted
        // plus a few inserts (the differential contract's 0.1–10% regime).
        let batch = synth_batch(g, stride, g.num_edges() / stride + 1);
        let out = update_communities(
            g,
            &before.assignment,
            Some(before.modularity),
            &batch,
            &config,
        )
        .unwrap();
        assert!(!out.fell_back, "{name}: unexpected fallback");
        let scratch = detect_communities(&out.graph, &config);
        assert!(
            out.modularity >= scratch.modularity - 0.01 * scratch.modularity.abs(),
            "{name}: incremental Q {} vs from-scratch Q {}",
            out.modularity,
            scratch.modularity
        );
        // The reported Q is the real Q of the reported assignment.
        let full = crate::modularity::modularity_with_resolution(
            &out.graph,
            &out.assignment,
            config.resolution,
        );
        assert!(
            (out.modularity - full).abs() < 1e-9,
            "{name}: tracker Q {} vs rescan {}",
            out.modularity,
            full
        );
    }

    #[test]
    fn incremental_q_within_1pct_er() {
        let g = erdos_renyi(&ErConfig {
            num_vertices: 1_000,
            ..Default::default()
        });
        q_within_1pct(&g, "er", 1000);
    }

    #[test]
    fn incremental_q_within_1pct_planted() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        q_within_1pct(&g, "planted", 200);
    }

    #[test]
    fn incremental_q_within_1pct_rmat() {
        let g = rmat(&RmatConfig {
            scale: 11,
            num_edges: 16_000,
            ..Default::default()
        });
        q_within_1pct(&g, "rmat", 200);
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        let batch = synth_batch(&g, 40, 100);
        let run = |threads: usize| {
            let c = LouvainConfigBuilder::from_base(config.clone())
                .threads(Some(threads))
                .build()
                .unwrap();
            update_communities(&g, &before.assignment, Some(before.modularity), &batch, &c).unwrap()
        };
        let r1 = run(1);
        for threads in [2usize, 4, 8, 16] {
            let rt = run(threads);
            assert_eq!(r1.assignment, rt.assignment, "{threads} threads");
            assert_eq!(
                r1.modularity.to_bits(),
                rt.modularity.to_bits(),
                "{threads} threads"
            );
            assert_eq!(r1.iterations, rt.iterations, "{threads} threads");
        }
    }

    #[test]
    fn quiesced_regions_keep_labels_bitwise() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        // Touch a handful of edges near vertex 0 only.
        let edges: Vec<_> = g.undirected_edges().take(5).collect();
        let batch: Vec<EdgeDelta> = edges
            .iter()
            .map(|&(u, v, w)| EdgeDelta::Reweight {
                u,
                v,
                weight: w + 1.0,
            })
            .collect();
        let out = update_communities(
            &g,
            &before.assignment,
            Some(before.modularity),
            &batch,
            &config,
        )
        .unwrap();
        assert!(!out.fell_back);
        // Every vertex outside the dirty closure (seeds ∪ the moved
        // frontier's reach) must keep its exact previous label. The frontier
        // can expand, so compare via the conservative outer bound: vertices
        // whose label changed must be reachable from a seed (checked here
        // as: the far half of the graph, which shares no edge with the
        // touched ones, is untouched).
        let touched: std::collections::HashSet<VertexId> =
            edges.iter().flat_map(|&(u, v, _)| [u, v]).collect();
        let mut near: std::collections::HashSet<VertexId> = touched.clone();
        for _ in 0..out.iterations + 1 {
            let prev: Vec<VertexId> = near.iter().copied().collect();
            for v in prev {
                near.extend(g.neighbor_ids(v).iter().copied());
            }
        }
        for v in 0..g.num_vertices() {
            if !near.contains(&(v as VertexId)) {
                assert_eq!(
                    out.assignment[v], before.assignment[v],
                    "quiesced vertex {v} changed label"
                );
            }
        }
    }

    #[test]
    fn algebraic_seeding_matches_rescan_seeding() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 1_500,
            num_communities: 15,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        let batch = synth_batch(&g, 30, 50);
        let algebraic = update_communities(
            &g,
            &before.assignment,
            Some(before.modularity),
            &batch,
            &config,
        )
        .unwrap();
        let rescan = update_communities(&g, &before.assignment, None, &batch, &config).unwrap();
        assert_eq!(algebraic.assignment, rescan.assignment);
        assert!(
            (algebraic.modularity - rescan.modularity).abs() < 1e-9,
            "{} vs {}",
            algebraic.modularity,
            rescan.modularity
        );
    }

    #[test]
    fn empty_batch_returns_carried_assignment() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 500,
            num_communities: 5,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        let out = update_communities(
            &g,
            &before.assignment,
            Some(before.modularity),
            &[],
            &config,
        )
        .unwrap();
        assert_eq!(out.assignment, before.assignment);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.changed_edges, 0);
        assert!(g.bitwise_eq(&out.graph));
        assert!((out.modularity - before.modularity).abs() < 1e-9);
    }

    #[test]
    fn dense_batch_falls_back_to_full_detection() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 400,
            num_communities: 4,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        // Reweight every edge: 100% of edges change ≫ 25% fallback bound.
        let batch: Vec<EdgeDelta> = g
            .undirected_edges()
            .map(|(u, v, w)| EdgeDelta::Reweight {
                u,
                v,
                weight: w + 1.0,
            })
            .collect();
        let out = update_communities(
            &g,
            &before.assignment,
            Some(before.modularity),
            &batch,
            &config,
        )
        .unwrap();
        assert!(out.fell_back);
        let scratch = detect_communities(&out.graph, &config);
        assert_eq!(out.assignment, scratch.assignment);
    }

    #[test]
    fn rejects_mismatched_assignment_length() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 100,
            num_communities: 2,
            ..Default::default()
        });
        let short = vec![0u32; 50];
        let err = update_communities(&g, &short, None, &[], &base_config()).unwrap_err();
        assert!(
            err.contains("assignment has 50 entries, graph has 100 vertices"),
            "{err}"
        );
        let bad_label = vec![100u32; 100];
        let err = update_communities(&g, &bad_label, None, &[], &base_config()).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn update_on_empty_graph_is_well_defined() {
        let g = CsrGraph::empty(0);
        let out = update_communities(
            &g,
            &[],
            None,
            &[EdgeDelta::Insert {
                u: 0,
                v: 1,
                weight: 1.0,
            }],
            &base_config(),
        )
        .unwrap();
        // A single-edge batch on an empty graph exceeds any fallback
        // fraction < 1, so it re-detects from scratch — either way the two
        // endpoints must end up together.
        assert_eq!(out.graph.num_vertices(), 2);
        assert_eq!(out.assignment[0], out.assignment[1]);
    }

    #[test]
    fn new_vertices_join_their_neighborhood() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 500,
            num_communities: 5,
            ..Default::default()
        });
        let config = base_config();
        let before = detect_communities(&g, &config);
        // Attach a new vertex to vertex 0 by three parallel-merged edges.
        let n = g.num_vertices() as VertexId;
        let batch = vec![
            EdgeDelta::Insert {
                u: n,
                v: 0,
                weight: 2.0,
            },
            EdgeDelta::Insert {
                u: n,
                v: 1,
                weight: 2.0,
            },
        ];
        let out = update_communities(
            &g,
            &before.assignment,
            Some(before.modularity),
            &batch,
            &config,
        )
        .unwrap();
        assert!(!out.fell_back);
        assert_eq!(out.graph.num_vertices(), 501);
        // The new vertex should have joined an existing community rather
        // than staying a singleton labeled with its own id.
        assert_ne!(out.assignment[500], 500);
    }
}
