//! Shared types and helpers for one Louvain phase (the iteration loop of
//! Algorithm 1 on a fixed graph).

use crate::modularity::Community;

/// Per-iteration convergence-engine telemetry: what the schedule gated and
/// what the sweep actually examined. Parallel to
/// [`PhaseOutcome::iterations`]; the `active_trace` bin renders these as the
/// schedule-trajectory columns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationStats {
    /// Effective per-vertex gain gate this iteration decided under
    /// ([`crate::schedule::Convergence::gate`]; 0 when ungated).
    pub gate: f64,
    /// Vertices the iteration examined (`n` on the full path, the frontier
    /// length once the active set engages, the filtered batch total for
    /// colored sweeps).
    pub frontier: usize,
    /// Vertices whose best positive-gain move the gate suppressed — locally
    /// converged at this gate level.
    pub converged: usize,
}

/// Result of running one phase to convergence.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// Final community label per phase-graph vertex (labels ⊆ `0..n`, not
    /// necessarily dense).
    pub assignment: Vec<Community>,
    /// Per-iteration `(modularity, moves)` records, in order.
    pub iterations: Vec<(f64, usize)>,
    /// Per-iteration schedule telemetry, parallel to `iterations`.
    pub stats: Vec<IterationStats>,
    /// Modularity after the last iteration.
    pub final_modularity: f64,
}

impl PhaseOutcome {
    /// Number of iterations executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// The degenerate outcome every sweep returns for an empty or
    /// zero-weight graph: the identity partition, no iterations, Q = 0.
    pub fn trivial(n: usize) -> Self {
        Self {
            assignment: (0..n as Community).collect(),
            iterations: Vec::new(),
            stats: Vec::new(),
            final_modularity: 0.0,
        }
    }
}

/// The **singlet minimum-label heuristic** (§5.1): a vertex alone in its
/// community may move into another *singleton* community only when the
/// target's label is smaller. Returns `true` if the move should be vetoed.
///
/// `size_of(c)` must report the current member count of community `c`.
#[inline]
pub fn singlet_veto(
    current: Community,
    target: Community,
    size_of: impl Fn(Community) -> u32,
) -> bool {
    target != current && size_of(current) == 1 && size_of(target) == 1 && target > current
}

/// Phase-loop termination test shared by all variants: stop when the net
/// modularity gain falls below `threshold` (which, per Lemma 1, also stops
/// on *negative* parallel gains) or when no vertex moved.
#[inline]
pub fn should_stop(q_prev: f64, q_curr: f64, moves: usize, threshold: f64) -> bool {
    moves == 0 || (q_curr - q_prev) < threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singlet_veto_blocks_only_upward_swaps() {
        let sizes = |c: Community| if c <= 2 { 1 } else { 5 };
        // both singletons, target label larger → veto
        assert!(singlet_veto(1, 2, sizes));
        // both singletons, target label smaller → allowed
        assert!(!singlet_veto(2, 1, sizes));
        // target not a singleton → allowed
        assert!(!singlet_veto(1, 3, sizes));
        // source not a singleton → allowed
        assert!(!singlet_veto(3, 1, sizes));
        // staying is never vetoed
        assert!(!singlet_veto(2, 2, sizes));
    }

    #[test]
    fn stop_conditions() {
        // no moves → stop
        assert!(should_stop(0.1, 0.2, 0, 1e-6));
        // large gain → continue
        assert!(!should_stop(0.1, 0.2, 5, 1e-6));
        // sub-threshold gain → stop
        assert!(should_stop(0.1, 0.1 + 1e-9, 5, 1e-6));
        // negative gain (parallel Lemma 1 case) → stop
        assert!(should_stop(0.2, 0.1, 5, 1e-6));
    }

    #[test]
    fn trivial_outcome_is_identity() {
        let o = PhaseOutcome::trivial(3);
        assert_eq!(o.assignment, vec![0, 1, 2]);
        assert_eq!(o.num_iterations(), 0);
        assert_eq!(o.final_modularity, 0.0);
        assert!(PhaseOutcome::trivial(0).assignment.is_empty());
    }

    #[test]
    fn outcome_counts_iterations() {
        let o = PhaseOutcome {
            assignment: vec![0, 1],
            iterations: vec![(0.1, 2), (0.2, 1)],
            stats: Vec::new(),
            final_modularity: 0.2,
        };
        assert_eq!(o.num_iterations(), 2);
    }
}
