//! Shared types and helpers for one Louvain phase (the iteration loop of
//! Algorithm 1 on a fixed graph), and the [`PhaseDriver`] — the single
//! public entry point that resolves sweep mode × schedule × accounting ×
//! refinement from a [`LouvainConfig`] and runs one phase.

use crate::config::{ColoredAccounting, LouvainConfig, RefineMode, SweepMode};
use crate::modularity::Community;
use crate::refine::RefineStats;
use crate::schedule::Convergence;
use grappolo_coloring::ColorBatches;
use grappolo_graph::CsrGraph;

/// Per-iteration convergence-engine telemetry: what the schedule gated and
/// what the sweep actually examined. Parallel to
/// [`PhaseOutcome::iterations`]; the `active_trace` bin renders these as the
/// schedule-trajectory columns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationStats {
    /// Effective per-vertex gain gate this iteration decided under
    /// ([`crate::schedule::Convergence::gate`]; 0 when ungated).
    pub gate: f64,
    /// Vertices the iteration examined (`n` on the full path, the frontier
    /// length once the active set engages, the filtered batch total for
    /// colored sweeps).
    pub frontier: usize,
    /// Vertices whose best positive-gain move the gate suppressed — locally
    /// converged at this gate level.
    pub converged: usize,
}

/// Result of running one phase to convergence.
#[derive(Clone, Debug)]
pub struct PhaseOutcome {
    /// Final community label per phase-graph vertex (labels ⊆ `0..n`, not
    /// necessarily dense).
    pub assignment: Vec<Community>,
    /// Per-iteration `(modularity, moves)` records, in order.
    pub iterations: Vec<(f64, usize)>,
    /// Per-iteration schedule telemetry, parallel to `iterations`.
    pub stats: Vec<IterationStats>,
    /// Modularity after the last iteration — and after refinement, when the
    /// driver ran one (refinement never lowers it).
    pub final_modularity: f64,
    /// What the Leiden-style refinement pass did, when the driver ran one
    /// ([`RefineMode::Leiden`]); `None` under [`RefineMode::None`] and for
    /// outcomes produced by the deprecated direct entry points.
    pub refinement: Option<RefineStats>,
}

impl PhaseOutcome {
    /// Number of iterations executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// The degenerate outcome every sweep returns for an empty or
    /// zero-weight graph: the identity partition, no iterations, Q = 0.
    pub fn trivial(n: usize) -> Self {
        Self {
            assignment: (0..n as Community).collect(),
            iterations: Vec::new(),
            stats: Vec::new(),
            final_modularity: 0.0,
            refinement: None,
        }
    }
}

/// The unified phase entry point: one configured runner for every sweep
/// variant the crate ships. Replaces the historical
/// `parallel_phase_unordered` / `parallel_phase_colored` / `serial_phase`
/// `*_sweep` / `*_scheduled` / `*_rescan` ladder (now thin deprecated
/// wrappers in [`crate::reference`]).
///
/// A driver is resolved once per phase from the [`LouvainConfig`] — sweep
/// mode, threshold schedule, colored accounting, and refinement — via
/// [`PhaseDriver::from_config`], then run with [`PhaseDriver::run`]
/// (serial or unordered, per the config) or [`PhaseDriver::run_colored`]
/// (colored batches). When the config selects [`RefineMode::Leiden`], the
/// runner applies [`crate::refine::refine_phase`] to the converged assignment before
/// returning, records the [`RefineStats`] in
/// [`PhaseOutcome::refinement`], and reports the refined modularity as
/// [`PhaseOutcome::final_modularity`].
///
/// Every path preserves the repo's determinism contract: outcomes are
/// bitwise identical across thread counts. Note the serial path is
/// rayon-free only in its sweep; refinement and the colored/unordered paths
/// use the ambient pool (the multi-phase driver pins serial runs to a
/// 1-thread pool).
#[derive(Clone, Debug)]
pub struct PhaseDriver {
    serial: bool,
    sweep: SweepMode,
    accounting: ColoredAccounting,
    refine: RefineMode,
    conv: Convergence,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
}

impl PhaseDriver {
    /// Resolves a driver from `config` and the phase's aggregate threshold
    /// θ (`colored_threshold` for colored phases, `final_threshold`
    /// otherwise — the multi-phase driver picks; standalone callers usually
    /// pass `config.final_threshold`). The caller is expected to have run
    /// [`LouvainConfig::validate`] (the builder does); invalid combinations
    /// like rescan×active never reach this point through validated configs.
    pub fn from_config(config: &LouvainConfig, phase_threshold: f64) -> Self {
        Self {
            serial: !config.parallel,
            sweep: config.sweep_mode,
            accounting: config.colored_accounting,
            refine: config.refine,
            conv: config.convergence(phase_threshold),
            threshold: phase_threshold,
            max_iterations: config.max_iterations_per_phase,
            resolution: config.resolution,
        }
    }

    /// Runs one uncolored phase to convergence: the faithful serial sweep
    /// when the config selected `parallel = false`, the unordered parallel
    /// sweep otherwise. Applies refinement per the config.
    pub fn run(&self, g: &CsrGraph) -> PhaseOutcome {
        let mut outcome = if self.serial {
            crate::serial::serial_scheduled_impl(
                g,
                self.sweep,
                &self.conv,
                self.max_iterations,
                self.resolution,
            )
        } else {
            crate::parallel::unordered_scheduled_impl(
                g,
                self.sweep,
                &self.conv,
                self.max_iterations,
                self.resolution,
            )
        };
        self.finish(g, &mut outcome);
        outcome
    }

    /// Runs one colored phase to convergence over `batches` (distance-1
    /// color classes): the incremental barrier-batch sweep, or the
    /// historical O(m)-rescan reference under
    /// [`ColoredAccounting::Rescan`]. Applies refinement per the config.
    pub fn run_colored(&self, g: &CsrGraph, batches: &ColorBatches) -> PhaseOutcome {
        let mut outcome = match self.accounting {
            ColoredAccounting::Incremental => crate::parallel::colored_scheduled_impl(
                g,
                batches,
                self.sweep,
                &self.conv,
                self.max_iterations,
                self.resolution,
            ),
            // The rescan reference is full-sweep, fixed-threshold, ungated,
            // and unrefined-compatible by definition; `validate()` rejects
            // every other combination.
            ColoredAccounting::Rescan => crate::reference::colored_rescan_impl(
                g,
                batches,
                self.threshold,
                self.max_iterations,
                self.resolution,
            ),
        };
        self.finish(g, &mut outcome);
        outcome
    }

    /// The post-sweep refinement hook — the one place refinement slots into
    /// every phase variant.
    fn finish(&self, g: &CsrGraph, outcome: &mut PhaseOutcome) {
        if self.refine == RefineMode::Leiden {
            // The phase already tracked the converged assignment's
            // modularity — hand it over so refinement skips its standalone
            // entry point's full rescan.
            let stats = crate::refine::refine_phase_from(
                g,
                &mut outcome.assignment,
                self.resolution,
                outcome.final_modularity,
            );
            outcome.final_modularity = stats.refined_modularity;
            outcome.refinement = Some(stats);
        }
    }
}

/// The **singlet minimum-label heuristic** (§5.1): a vertex alone in its
/// community may move into another *singleton* community only when the
/// target's label is smaller. Returns `true` if the move should be vetoed.
///
/// `size_of(c)` must report the current member count of community `c`.
#[inline]
pub fn singlet_veto(
    current: Community,
    target: Community,
    size_of: impl Fn(Community) -> u32,
) -> bool {
    target != current && size_of(current) == 1 && size_of(target) == 1 && target > current
}

/// Phase-loop termination test shared by all variants: stop when the net
/// modularity gain falls below `threshold` (which, per Lemma 1, also stops
/// on *negative* parallel gains) or when no vertex moved.
#[inline]
pub fn should_stop(q_prev: f64, q_curr: f64, moves: usize, threshold: f64) -> bool {
    moves == 0 || (q_curr - q_prev) < threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singlet_veto_blocks_only_upward_swaps() {
        let sizes = |c: Community| if c <= 2 { 1 } else { 5 };
        // both singletons, target label larger → veto
        assert!(singlet_veto(1, 2, sizes));
        // both singletons, target label smaller → allowed
        assert!(!singlet_veto(2, 1, sizes));
        // target not a singleton → allowed
        assert!(!singlet_veto(1, 3, sizes));
        // source not a singleton → allowed
        assert!(!singlet_veto(3, 1, sizes));
        // staying is never vetoed
        assert!(!singlet_veto(2, 2, sizes));
    }

    #[test]
    fn stop_conditions() {
        // no moves → stop
        assert!(should_stop(0.1, 0.2, 0, 1e-6));
        // large gain → continue
        assert!(!should_stop(0.1, 0.2, 5, 1e-6));
        // sub-threshold gain → stop
        assert!(should_stop(0.1, 0.1 + 1e-9, 5, 1e-6));
        // negative gain (parallel Lemma 1 case) → stop
        assert!(should_stop(0.2, 0.1, 5, 1e-6));
    }

    #[test]
    fn trivial_outcome_is_identity() {
        let o = PhaseOutcome::trivial(3);
        assert_eq!(o.assignment, vec![0, 1, 2]);
        assert_eq!(o.num_iterations(), 0);
        assert_eq!(o.final_modularity, 0.0);
        assert!(PhaseOutcome::trivial(0).assignment.is_empty());
    }

    #[test]
    fn outcome_counts_iterations() {
        let o = PhaseOutcome {
            assignment: vec![0, 1],
            iterations: vec![(0.1, 2), (0.2, 1)],
            stats: Vec::new(),
            final_modularity: 0.2,
            refinement: None,
        };
        assert_eq!(o.num_iterations(), 2);
    }

    #[test]
    fn driver_matrix_runs_and_refines() {
        use crate::config::RefineMode;
        use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};

        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        for parallel in [false, true] {
            for refine in [RefineMode::None, RefineMode::Leiden] {
                let config = LouvainConfig {
                    parallel,
                    refine,
                    ..LouvainConfig::default()
                };
                let driver = PhaseDriver::from_config(&config, 1e-6);
                let out = driver.run(&g);
                assert!(out.final_modularity > 0.7, "parallel={parallel}");
                assert_eq!(out.refinement.is_some(), refine == RefineMode::Leiden);
                if let Some(stats) = out.refinement {
                    assert!(stats.refined_modularity >= stats.pre_modularity);
                }
            }
        }
        // Colored path, both accounting modes, through the same driver.
        let coloring = grappolo_coloring::color_parallel(
            &g,
            &grappolo_coloring::ParallelColoringConfig::default(),
        );
        let batches = ColorBatches::from_coloring(&coloring);
        for accounting in [ColoredAccounting::Incremental, ColoredAccounting::Rescan] {
            let config = LouvainConfig {
                colored_accounting: accounting,
                ..LouvainConfig::default()
            };
            let driver = PhaseDriver::from_config(&config, 1e-6);
            let out = driver.run_colored(&g, &batches);
            assert!(out.final_modularity > 0.7, "{accounting:?}");
        }
    }
}
