//! Vertex-following (VF) preprocessing (§5.3).
//!
//! Lemma 3 guarantees that a *single-degree* vertex `i` (one incident edge
//! `(i, j)`, no self-loop) always ends up in `j`'s community; VF therefore
//! merges such vertices into their neighbor before the Louvain iterations,
//! shrinking the sweep working set and letting hub vertices drive migration
//! decisions.
//!
//! Weight convention note (documented in DESIGN.md §2): the paper's §5.3
//! prose sets `ω(j′,j′) = ω(j,j) + ω(i,j)`, which under the paper's own §2
//! degree definition (self-loop counted once in `k`) would shrink `m` by
//! `ω(i,j)/2` per merge and silently change all modularity values. We use the
//! m-preserving Louvain-condensation rule instead — the merged edge
//! contributes `2·ω(i,j)` to the meta-vertex self-loop — which keeps
//! modularity exactly comparable before and after preprocessing (enforced by
//! tests below).
//!
//! The recursive variant ([`vf_preprocess_recursive`]) re-applies the rule
//! until no single-degree vertices remain (chain compression, the §5.3
//! extension "to lead to fast compression of chains within the input graph").

use crate::rebuild::{condense_stamped, group_by_row};
use grappolo_graph::{stats::is_single_degree, CsrGraph, VertexId};
use rayon::prelude::*;

/// Result of VF preprocessing.
#[derive(Clone, Debug)]
pub struct VfResult {
    /// The compacted graph.
    pub graph: CsrGraph,
    /// Maps each original vertex to its vertex id in `graph`.
    pub mapping: Vec<VertexId>,
    /// Number of vertices merged away (`original n − compacted n`).
    pub merged: usize,
}

impl VfResult {
    /// Projects a community assignment on the compacted graph back to the
    /// original vertex set: `result[v] = assignment[mapping[v]]`.
    pub fn project_assignment(&self, assignment: &[u32]) -> Vec<u32> {
        self.mapping
            .par_iter()
            .map(|&m| assignment[m as usize])
            .collect()
    }

    /// An identity result (no merging) for `n` vertices.
    pub fn identity(graph: CsrGraph) -> Self {
        let n = graph.num_vertices();
        Self {
            graph,
            mapping: (0..n as VertexId).collect(),
            merged: 0,
        }
    }
}

/// Applies one round of single-degree vertex merging (the paper's
/// implemented variant).
pub fn vf_preprocess(g: &CsrGraph) -> VfResult {
    vf_round(g, false)
}

/// For the recursive extension: `v` is a *single-neighbor* vertex (§5.3) if
/// its adjacency is exactly one non-loop edge `(v, j)` plus an optional
/// self-loop. Returns `(j, ω(v, j))`.
fn single_neighbor(g: &CsrGraph, v: VertexId) -> Option<(VertexId, f64)> {
    let ids = g.neighbor_ids(v);
    let ws = g.neighbor_weights(v);
    match ids {
        [j] if *j != v => Some((*j, ws[0])),
        [a, b] if *a == v && *b != v => Some((*b, ws[1])),
        [a, b] if *b == v && *a != v => Some((*a, ws[0])),
        _ => None,
    }
}

/// Merge test for single-neighbor vertices: the positive part of inequality
/// (10) must dominate, i.e. `ω(i,j)/m > 2·k_i·a_{C(j)}/(2m)²`, which at
/// preprocessing time (singleton communities, `a_{C(j)} = k_j`) reduces to
/// `2m·ω(i,j) > k_i·k_j`. For a plain single-degree vertex (`k_i = ω`) this
/// always holds (Lemma 3); with a self-loop it can fail, which is the
/// paper's "until the negative component … starts to dominate" cutoff.
fn merge_profitable(g: &CsrGraph, v: VertexId, j: VertexId, w_vj: f64) -> bool {
    2.0 * g.total_weight() * w_vj > g.weighted_degree(v) * g.weighted_degree(j)
}

fn vf_round(g: &CsrGraph, allow_single_neighbor: bool) -> VfResult {
    let n = g.num_vertices();
    if n == 0 {
        return VfResult::identity(g.clone());
    }

    // A vertex is mergeable if it is single-degree (paper's rule, always
    // profitable per Lemma 3) or — in recursive rounds — single-neighbor
    // with a profitable merge.
    let mergeable = |v: VertexId| -> Option<VertexId> {
        if is_single_degree(g, v) {
            return Some(g.neighbor_ids(v)[0]);
        }
        if allow_single_neighbor {
            if let Some((j, w)) = single_neighbor(g, v) {
                if merge_profitable(g, v, j, w) {
                    return Some(j);
                }
            }
        }
        None
    };

    // Step 1 (parallel): each mergeable vertex names its neighbor as its
    // representative. For a two-vertex pair where both are mergeable, the
    // higher id merges into the lower so exactly one survives.
    let rep: Vec<VertexId> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| match mergeable(v) {
            None => v,
            Some(j) => {
                if mergeable(j).is_some() && j > v {
                    v // the pair's lower id survives; j will point at v
                } else {
                    j
                }
            }
        })
        .collect();

    // Step 2: renumber survivors densely ("Label the resulting vertices from
    // 1…n using an arbitrary ordering", §5.4 step (1)).
    let mut new_id = vec![VertexId::MAX; n];
    let mut next = 0 as VertexId;
    for v in 0..n {
        if rep[v] as usize == v {
            new_id[v] = next;
            next += 1;
        }
    }
    let survivors = next as usize;
    let merged = n - survivors;
    if merged == 0 {
        return VfResult::identity(g.clone());
    }
    // mapping: original vertex → new id of its representative. rep chains
    // have length ≤ 1 (a single-degree vertex's neighbor either survives or
    // is the lower half of a mutual pair, which survives).
    let mapping: Vec<VertexId> = (0..n)
        .map(|v| {
            let r = rep[v] as usize;
            debug_assert_eq!(rep[r] as usize, r, "rep chains must have length ≤ 1");
            new_id[r]
        })
        .collect();

    // Step 3: rebuild edges under the mapping with the same stamped-scratch
    // condensation the inter-phase rebuild uses. Traversing every directed
    // adjacency entry makes a merged pair's edge contribute twice to the
    // survivor's self-loop (the m-preserving condensation, 2ω) and existing
    // loops once, with deterministic accumulation order.
    let row_of = |u: usize| mapping[u];
    let (offsets, members) = group_by_row(n, survivors, row_of);
    let graph = condense_stamped(g, survivors, &offsets, &members, row_of);
    debug_assert!(
        graph.validate().is_ok(),
        "VF rebuild produced an invalid CSR"
    );
    VfResult {
        graph,
        mapping,
        merged,
    }
}

/// Applies VF repeatedly (at most `max_rounds`): the first round is the
/// paper's single-degree rule; later rounds extend to *single-neighbor*
/// vertices under the inequality-(10) profitability test, which compresses
/// chains (§5.3's extension).
pub fn vf_preprocess_recursive(g: &CsrGraph, max_rounds: usize) -> VfResult {
    let mut result = vf_preprocess(g);
    let mut rounds = 1;
    while rounds < max_rounds && result.merged > 0 {
        let next = vf_round(&result.graph, true);
        if next.merged == 0 {
            break;
        }
        // Compose mappings: original → round-k id → round-(k+1) id.
        let mapping: Vec<VertexId> = result
            .mapping
            .par_iter()
            .map(|&m| next.mapping[m as usize])
            .collect();
        result = VfResult {
            merged: result.merged + next.merged,
            graph: next.graph,
            mapping,
        };
        rounds += 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use grappolo_graph::gen::{hub_spoke, HubSpokeConfig};
    use grappolo_graph::{from_unweighted_edges, from_weighted_edges};

    #[test]
    fn star_collapses_to_single_vertex() {
        // Star: hub 0, spokes 1..5 — all spokes single-degree.
        let g = from_unweighted_edges(5, (1..5).map(|v| (0, v))).unwrap();
        let r = vf_preprocess(&g);
        assert_eq!(r.graph.num_vertices(), 1);
        assert_eq!(r.merged, 4);
        assert!(r.mapping.iter().all(|&m| m == 0));
        // Self-loop = 2 × total spoke weight; m preserved.
        assert_eq!(r.graph.self_loop_weight(0), 8.0);
        assert_eq!(r.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn pair_merges_to_one() {
        let g = from_unweighted_edges(2, [(0, 1)]).unwrap();
        let r = vf_preprocess(&g);
        assert_eq!(r.graph.num_vertices(), 1);
        assert_eq!(r.merged, 1);
        assert_eq!(r.graph.total_weight(), g.total_weight());
    }

    #[test]
    fn preserves_total_weight_on_hub_spoke() {
        let (g, _) = hub_spoke(&HubSpokeConfig::default());
        let r = vf_preprocess(&g);
        assert!((r.graph.total_weight() - g.total_weight()).abs() < 1e-9);
        // All spokes merged: 64 hubs remain.
        assert_eq!(r.graph.num_vertices(), 64);
    }

    #[test]
    fn modularity_is_preserved_under_projection() {
        // Q of any partition of the compacted graph equals Q of the projected
        // partition of the original — the invariant the m-preserving weight
        // rule buys (and the paper's prose formula would break).
        let (g, _) = hub_spoke(&HubSpokeConfig {
            num_hubs: 10,
            spokes_per_hub: 3,
            ..Default::default()
        });
        let r = vf_preprocess(&g);
        // Partition compacted hubs into two halves.
        let nc = r.graph.num_vertices();
        let compact: Vec<u32> = (0..nc as u32)
            .map(|v| if v < nc as u32 / 2 { 0 } else { 1 })
            .collect();
        let original = r.project_assignment(&compact);
        let q_compact = modularity(&r.graph, &compact);
        let q_original = modularity(&g, &original);
        assert!(
            (q_compact - q_original).abs() < 1e-12,
            "compact {q_compact} vs original {q_original}"
        );
    }

    #[test]
    fn no_single_degree_is_identity() {
        let g = from_unweighted_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        let r = vf_preprocess(&g);
        assert_eq!(r.merged, 0);
        assert_eq!(r.graph.num_vertices(), 3);
        assert_eq!(r.mapping, vec![0, 1, 2]);
    }

    #[test]
    fn vertex_with_self_loop_and_one_edge_not_merged() {
        // v1 has entries [(0), (1,1 loop)] → degree 2, not single-degree.
        let g = from_weighted_edges(2, [(0, 1, 1.0), (1, 1, 2.0)]).unwrap();
        let r = vf_preprocess(&g);
        // vertex 0 IS single-degree and merges into 1.
        assert_eq!(r.graph.num_vertices(), 1);
        assert_eq!(r.merged, 1);
        // loop: own 2.0 + merged edge 2×1.0
        assert_eq!(r.graph.self_loop_weight(0), 4.0);
    }

    #[test]
    fn chain_needs_recursion() {
        // Path 0-1-2-3-4: single pass merges only the endpoints.
        let g = from_unweighted_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let once = vf_preprocess(&g);
        assert_eq!(once.graph.num_vertices(), 3);
        let rec = vf_preprocess_recursive(&g, 16);
        assert_eq!(rec.graph.num_vertices(), 1, "chain should fully compress");
        assert!((rec.graph.total_weight() - g.total_weight()).abs() < 1e-12);
        assert_eq!(rec.merged, 4);
    }

    #[test]
    fn recursive_mapping_composes() {
        // 4-path: round 1 merges the endpoints; round 2 must NOT merge the
        // two halves — Q({01},{23}) = 1/6 beats Q(all) = 0, and the
        // inequality-(10) criterion (2mω = 6 < k·k = 9) correctly vetoes it.
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let r = vf_preprocess_recursive(&g, 16);
        assert_eq!(r.graph.num_vertices(), 2);
        assert_eq!(r.mapping, vec![0, 0, 1, 1]);
        let projected = r.project_assignment(&[42, 7]);
        assert_eq!(projected, vec![42, 42, 7, 7]);
        assert!((r.graph.total_weight() - g.total_weight()).abs() < 1e-12);
    }

    #[test]
    fn recursive_respects_round_cap() {
        let g = from_unweighted_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let r = vf_preprocess_recursive(&g, 1);
        assert_eq!(r.graph.num_vertices(), 3); // only one round applied
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let r = vf_preprocess(&g);
        assert_eq!(r.merged, 0);
        assert_eq!(r.graph.num_vertices(), 0);
    }

    #[test]
    fn isolated_vertices_survive() {
        let g = from_unweighted_edges(4, [(0, 1)]).unwrap();
        let r = vf_preprocess(&g);
        // 0,1 merge into one; isolated 2 and 3 survive.
        assert_eq!(r.graph.num_vertices(), 3);
        assert_eq!(r.merged, 1);
    }
}
