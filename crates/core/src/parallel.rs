//! The parallel Louvain phase (Algorithm 1) with the minimum-label
//! heuristics (§5.1) — in both flavors the paper evaluates:
//!
//! * [`parallel_phase_unordered`] — no coloring: one lock-free parallel sweep
//!   per iteration, every decision reading the *previous* iteration's
//!   assignment and community degrees (Algorithm 1 lines 8–14 with a single
//!   color set). Deterministic for any thread count: writes go to
//!   `C_curr[i]`, reads to `C_prev`, and all reductions are
//!   order-deterministic (§5.4's stability property).
//! * [`parallel_phase_colored`] — vertices are processed one color class at
//!   a time; classes are internally parallel, moves commit immediately, and
//!   community degrees update via lock-free f64 atomics (the Rust analogue
//!   of the paper's `__sync_fetch_and_add`, §5.5). Later classes observe
//!   earlier commits — the colored analogue of serial freshness.

use crate::atomicf64::AtomicF64;
use crate::modularity::{
    best_move, modularity_with_resolution, Community, ModularityTracker, MoveContext,
    NeighborScratch, TRACKER_DRIFT_TOLERANCE,
};
use crate::phase::{should_stop, singlet_veto, PhaseOutcome};
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs one **unordered** (non-colored) parallel phase to convergence.
///
/// Per-iteration bookkeeping is incremental: community degrees, sizes, and
/// the `Σ e_in` / `Σ a_C²` modularity terms are carried across iterations
/// and updated only for the committed moves
/// ([`ModularityTracker::apply_batch`]), so the historical O(n) degree
/// rebuild and O(m) modularity rescan are gone from the hot path (the
/// rescan survives as a `debug_assert` cross-check). All updates are
/// applied in deterministic order, preserving the §5.4 bitwise-stability
/// guarantee across thread counts.
pub fn parallel_phase_unordered(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    let mut c_prev: Vec<Community> = (0..n as Community).collect();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment: c_prev,
            iterations: Vec::new(),
            final_modularity: 0.0,
        };
    }

    // Incremental state, initialized once for the singleton partition and
    // carried across iterations (Algorithm 1 line 8's "previous iteration"
    // view is exactly this state before the batch is applied).
    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut tracker = ModularityTracker::new(g, &c_prev, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut q_prev = tracker.modularity();

    for _iter in 0..max_iterations {
        // Lines 9–14: parallel sweep without locks, against snapshot state.
        let c_curr: Vec<Community> = (0..n as VertexId)
            .into_par_iter()
            .map_init(NeighborScratch::default, |scratch, v| {
                decide(g, &c_prev, &a, &sizes, m, resolution, scratch, v)
            })
            .collect();

        // The committed moves, in ascending vertex order (deterministic).
        let moved: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| c_prev[v as usize] != c_curr[v as usize])
            .collect();
        let moves = moved.len();
        tracker.apply_batch(g, &c_prev, &c_curr, &moved, &mut a, &mut sizes);
        let q_curr = tracker.modularity();
        debug_assert!(
            tracker.drift_from_full(g, &c_curr) < TRACKER_DRIFT_TOLERANCE,
            "incremental modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &c_curr),
        );
        iterations.push((q_curr, moves));
        c_prev = c_curr;
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        final_modularity,
    }
}

/// One vertex's migration decision against snapshot state.
#[allow(clippy::too_many_arguments)]
#[inline]
fn decide(
    g: &CsrGraph,
    assignment: &[Community],
    a: &[f64],
    sizes: &[u32],
    m: f64,
    resolution: f64,
    scratch: &mut NeighborScratch,
    v: VertexId,
) -> Community {
    let cur = assignment[v as usize];
    scratch.gather(g, assignment, v);
    if scratch.entries.is_empty() {
        return cur;
    }
    let ctx = MoveContext {
        current: cur,
        k: g.weighted_degree(v),
        m,
        a_current: a[cur as usize],
        gamma: resolution,
    };
    let decision = best_move(&ctx, &scratch.entries, |c| a[c as usize]);
    if decision.target != cur && singlet_veto(cur, decision.target, |c| sizes[c as usize]) {
        return cur;
    }
    decision.target
}

/// Runs one **colored** parallel phase to convergence.
///
/// `color_classes[k]` lists the vertices of color `k`; classes must be
/// mutually independent sets (distance-1 coloring). Within an iteration the
/// classes are processed in ascending color order; each class is swept in
/// parallel over live shared state.
pub fn parallel_phase_colored(
    g: &CsrGraph,
    color_classes: &[Vec<VertexId>],
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment: (0..n as Community).collect(),
            iterations: Vec::new(),
            final_modularity: 0.0,
        };
    }

    // Live shared state. Same-color vertices are never adjacent, so while a
    // class is being swept no thread writes an entry another thread reads;
    // atomics make that reasoning explicit and safe. Community degrees take
    // genuine concurrent updates from same-class movers (§5.5's atomics).
    let assignment: Vec<AtomicU32> = (0..n as Community).map(AtomicU32::new).collect();
    let a: Vec<AtomicF64> = (0..n)
        .map(|v| AtomicF64::new(g.weighted_degree(v as VertexId)))
        .collect();
    let sizes: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(1)).collect();

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let snapshot = |assignment: &[AtomicU32]| -> Vec<Community> {
        assignment
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect()
    };
    let mut q_prev = modularity_with_resolution(g, &snapshot(&assignment), resolution);

    for _iter in 0..max_iterations {
        let mut moves = 0usize;
        for class in color_classes {
            moves += class
                .par_iter()
                .map_init(NeighborScratch::default, |scratch, &v| {
                    let cur = assignment[v as usize].load(Ordering::Relaxed);
                    // Gather against live assignments through the shared
                    // flat-scratch kernel: neighbors are in other color
                    // classes and not being mutated during this class.
                    scratch.gather_by(g, v, |u| assignment[u].load(Ordering::Relaxed));
                    if scratch.entries.is_empty() {
                        return 0usize;
                    }

                    let k = g.weighted_degree(v);
                    let ctx = MoveContext {
                        current: cur,
                        k,
                        m,
                        a_current: a[cur as usize].load(Ordering::Relaxed),
                        gamma: resolution,
                    };
                    let decision = best_move(&ctx, &scratch.entries, |c| {
                        a[c as usize].load(Ordering::Relaxed)
                    });
                    if decision.target == cur
                        || singlet_veto(cur, decision.target, |c| {
                            sizes[c as usize].load(Ordering::Relaxed)
                        })
                    {
                        return 0usize;
                    }
                    // Commit immediately (paper §5.5: atomic add/sub).
                    assignment[v as usize].store(decision.target, Ordering::Relaxed);
                    a[cur as usize].fetch_sub(k, Ordering::Relaxed);
                    a[decision.target as usize].fetch_add(k, Ordering::Relaxed);
                    sizes[cur as usize].fetch_sub(1, Ordering::Relaxed);
                    sizes[decision.target as usize].fetch_add(1, Ordering::Relaxed);
                    1usize
                })
                .sum::<usize>();
        }

        let snap = snapshot(&assignment);
        let q_curr = modularity_with_resolution(g, &snap, resolution);
        iterations.push((q_curr, moves));
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_assignment = snapshot(&assignment);
    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: final_assignment,
        iterations,
        final_modularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_coloring::{color_classes, color_parallel, ParallelColoringConfig};
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{
        planted_partition, ring_of_cliques, CliqueRingConfig, PlantedConfig,
    };

    fn classes_of(g: &CsrGraph) -> Vec<Vec<VertexId>> {
        let coloring = color_parallel(g, &ParallelColoringConfig::default());
        color_classes(&coloring)
    }

    #[test]
    fn unordered_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn colored_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_colored(&g, &classes_of(&g), 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn min_label_prevents_two_vertex_swap() {
        // §4.2's swap scenario: a single edge. Without the singlet rule the
        // pair could swap labels forever; with it, exactly one converges into
        // the other (the smaller label) after one iteration.
        let g = from_unweighted_edges(2, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[0], 0, "minimum label must win");
    }

    #[test]
    fn four_clique_local_maxima_avoided() {
        // Fig. 2 case 2: a 4-clique starting as singletons. The generalized
        // ML heuristic sends every vertex toward the smallest-label maximal-
        // gain community instead of splitting into {i4,i6},{i5,i7}.
        let g = from_unweighted_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        let c = out.assignment[0];
        assert!(
            out.assignment.iter().all(|&x| x == c),
            "4-clique should be one community, got {:?}",
            out.assignment
        );
    }

    #[test]
    fn unordered_deterministic_across_thread_counts() {
        // §5.4: the non-colored algorithm is stable regardless of core count.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| parallel_phase_unordered(&g, 1e-6, 1000, 1.0))
        };
        let out1 = run(1);
        let out2 = run(2);
        let out4 = run(4);
        assert_eq!(out1.assignment, out2.assignment);
        assert_eq!(out1.assignment, out4.assignment);
        assert_eq!(out1.iterations.len(), out2.iterations.len());
        assert_eq!(out1.final_modularity, out2.final_modularity);
        assert_eq!(out1.final_modularity, out4.final_modularity);
    }

    #[test]
    fn colored_uses_fewer_iterations_than_unordered() {
        // The design intent of coloring (§5.2): faster convergence. On a
        // community-rich graph the colored phase should need no more
        // iterations than the unordered one.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let un = parallel_phase_unordered(&g, 1e-4, 1000, 1.0);
        let co = parallel_phase_colored(&g, &classes_of(&g), 1e-4, 1000, 1.0);
        assert!(
            co.num_iterations() <= un.num_iterations(),
            "colored {} vs unordered {}",
            co.num_iterations(),
            un.num_iterations()
        );
        assert!(co.final_modularity > 0.5);
    }

    #[test]
    fn empty_graph_phases() {
        let g = CsrGraph::empty(0);
        let out = parallel_phase_unordered(&g, 1e-6, 10, 1.0);
        assert!(out.assignment.is_empty());
        let out2 = parallel_phase_colored(&g, &[], 1e-6, 10, 1.0);
        assert!(out2.assignment.is_empty());
    }

    #[test]
    fn isolated_vertices_stay_singleton() {
        let g = from_unweighted_edges(4, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[2], 2);
        assert_eq!(out.assignment[3], 3);
    }

    #[test]
    fn moves_counted() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 4,
            clique_size: 4,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert!(
            out.iterations[0].1 > 0,
            "first iteration must move vertices"
        );
        // Iterations should be recorded in order with the final Q last.
        assert_eq!(out.final_modularity, out.iterations.last().unwrap().0);
    }

    #[test]
    fn singleton_community_graph_converges_fast() {
        // A graph with no edges converges in one iteration (no moves).
        let g = CsrGraph::empty(10);
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.num_iterations(), 0); // m = 0 short-circuits
    }
}
