//! The parallel Louvain phase (Algorithm 1) with the minimum-label
//! heuristics (§5.1) — in both flavors the paper evaluates:
//!
//! * [`parallel_phase_unordered`] — no coloring: one lock-free parallel sweep
//!   per iteration, every decision reading the *previous* iteration's
//!   assignment and community degrees (Algorithm 1 lines 8–14 with a single
//!   color set). Deterministic for any thread count: writes go to
//!   `C_curr[i]`, reads to `C_prev`, and all reductions are
//!   order-deterministic (§5.4's stability property).
//! * [`parallel_phase_colored`] — vertices are processed one color batch at
//!   a time; each batch is decided in parallel against the state frozen at
//!   its barrier, then committed in ascending vertex order. Later batches
//!   observe earlier commits — the colored analogue of serial freshness.
//!   Because a batch is an independent set, the barrier commit is exact and
//!   feeds the same incremental [`ModularityTracker`] accounting as the
//!   unordered sweep (`Σ e_in` deltas reduced in fixed left-biased order via
//!   `det_sum`, `a`/`Σ a_C²` updates applied in commit order), so the phase
//!   is bitwise deterministic across thread counts — unlike the historical
//!   atomic-commit scheme (`__sync_fetch_and_add`, §5.5), whose
//!   schedule-dependent float commits forced an O(m) modularity rescan per
//!   iteration (retained as
//!   [`crate::reference::parallel_phase_colored_rescan`]).

use crate::modularity::{
    best_move_with_src, Community, IndependentMove, ModularityTracker, MoveContext, MoveDecision,
    NeighborScratch, ScratchPool, TRACKER_DRIFT_TOLERANCE,
};
use crate::phase::{should_stop, singlet_veto, PhaseOutcome};
use grappolo_coloring::ColorBatches;
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Runs one **unordered** (non-colored) parallel phase to convergence.
///
/// Per-iteration bookkeeping is incremental: community degrees, sizes, and
/// the `Σ e_in` / `Σ a_C²` modularity terms are carried across iterations
/// and updated only for the committed moves
/// ([`ModularityTracker::apply_batch`]), so the historical O(n) degree
/// rebuild and O(m) modularity rescan are gone from the hot path (the
/// rescan survives as a `debug_assert` cross-check). All updates are
/// applied in deterministic order, preserving the §5.4 bitwise-stability
/// guarantee across thread counts.
pub fn parallel_phase_unordered(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    let mut c_prev: Vec<Community> = (0..n as Community).collect();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment: c_prev,
            iterations: Vec::new(),
            final_modularity: 0.0,
        };
    }

    // Incremental state, initialized once for the singleton partition and
    // carried across iterations (Algorithm 1 line 8's "previous iteration"
    // view is exactly this state before the batch is applied).
    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut tracker = ModularityTracker::new(g, &c_prev, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut q_prev = tracker.modularity();

    for _iter in 0..max_iterations {
        // Lines 9–14: parallel sweep without locks, against snapshot state.
        let c_curr: Vec<Community> = (0..n as VertexId)
            .into_par_iter()
            .map_init(NeighborScratch::default, |scratch, v| {
                decide(g, &c_prev, &a, &sizes, m, resolution, scratch, v)
            })
            .collect();

        // The committed moves, in ascending vertex order (deterministic).
        let moved: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| c_prev[v as usize] != c_curr[v as usize])
            .collect();
        let moves = moved.len();
        tracker.apply_batch(g, &c_prev, &c_curr, &moved, &mut a, &mut sizes);
        let q_curr = tracker.modularity();
        debug_assert!(
            tracker.drift_from_full(g, &c_curr) < TRACKER_DRIFT_TOLERANCE,
            "incremental modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &c_curr),
        );
        iterations.push((q_curr, moves));
        c_prev = c_curr;
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        final_modularity,
    }
}

/// One vertex's migration decision against snapshot state.
#[allow(clippy::too_many_arguments)]
#[inline]
fn decide(
    g: &CsrGraph,
    assignment: &[Community],
    a: &[f64],
    sizes: &[u32],
    m: f64,
    resolution: f64,
    scratch: &mut NeighborScratch,
    v: VertexId,
) -> Community {
    let cur = assignment[v as usize];
    scratch.gather(g, assignment, v);
    if scratch.entries.is_empty() {
        return cur;
    }
    let ctx = MoveContext {
        current: cur,
        k: g.weighted_degree(v),
        m,
        a_current: a[cur as usize],
        gamma: resolution,
    };
    let decision = best_move_with_src(&ctx, &scratch.entries, scratch.weight_to(cur), |c| {
        a[c as usize]
    });
    if decision.target != cur && singlet_veto(cur, decision.target, |c| sizes[c as usize]) {
        return cur;
    }
    decision.target
}

/// One color batch's migration decisions, evaluated in parallel against the
/// state frozen at the batch barrier (`assignment`/`a`/`sizes` are not
/// mutated while the batch is in flight). Returns one [`MoveDecision`] per
/// batch vertex, in batch order; a vetoed or stay decision has
/// `target == current`. Shared by the incremental colored sweep and the
/// full-rescan reference so both make bitwise-identical decisions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn colored_decide_batch(
    g: &CsrGraph,
    assignment: &[Community],
    a: &[f64],
    sizes: &[u32],
    m: f64,
    resolution: f64,
    batch: &[VertexId],
    scratches: &ScratchPool,
) -> Vec<MoveDecision> {
    batch
        .par_iter()
        .map_init(
            || scratches.take(),
            |scratch, &v| {
                let scratch: &mut NeighborScratch = scratch;
                let cur = assignment[v as usize];
                // Neighbors are in other color batches (distance-1 coloring), so
                // the barrier snapshot is also their freshest state.
                scratch.gather(g, assignment, v);
                if scratch.entries.is_empty() {
                    return MoveDecision {
                        target: cur,
                        gain: 0.0,
                        e_src: 0.0,
                        e_tgt: 0.0,
                    };
                }
                let ctx = MoveContext {
                    current: cur,
                    k: g.weighted_degree(v),
                    m,
                    a_current: a[cur as usize],
                    gamma: resolution,
                };
                let decision =
                    best_move_with_src(&ctx, &scratch.entries, scratch.weight_to(cur), |c| {
                        a[c as usize]
                    });
                if decision.target != cur
                    && singlet_veto(cur, decision.target, |c| sizes[c as usize])
                {
                    return MoveDecision {
                        target: cur,
                        ..decision
                    };
                }
                decision
            },
        )
        .collect()
}

/// Drains one batch's decisions into `moved` (ascending vertex order, since
/// batches are stably ordered) and commits the assignment writes. The
/// `a`/`sizes`/modularity accounting is the caller's responsibility — the
/// only place the incremental sweep and the rescan reference differ.
pub(crate) fn colored_collect_moves(
    g: &CsrGraph,
    batch: &[VertexId],
    decisions: &[MoveDecision],
    assignment: &mut [Community],
    moved: &mut Vec<IndependentMove>,
) {
    moved.clear();
    for (&v, d) in batch.iter().zip(decisions) {
        let from = assignment[v as usize];
        if d.target == from {
            continue;
        }
        moved.push(IndependentMove {
            k: g.weighted_degree(v),
            e_src: d.e_src,
            e_tgt: d.e_tgt,
            from,
            to: d.target,
        });
        assignment[v as usize] = d.target;
    }
}

/// Runs one **colored** parallel phase to convergence.
///
/// `batches` partitions the vertices into independent sets (distance-1 color
/// classes) under [`ColorBatches`]' stable-ordering guarantee. Within an
/// iteration the batches are processed in ascending color order: each
/// batch's decisions are computed in parallel against the state frozen at
/// its barrier, then committed in ascending vertex order, so later batches
/// observe earlier commits (the colored analogue of serial freshness) while
/// the whole phase stays bitwise deterministic across thread counts.
///
/// Per-iteration bookkeeping is incremental, as in
/// [`parallel_phase_unordered`]: community degrees, sizes, and the
/// `Σ e_in` / `Σ a_C²` terms are carried across batches and updated only for
/// committed moves ([`ModularityTracker::apply_independent_batch`], exact
/// precisely because a batch's movers form an independent set), replacing
/// the historical per-iteration O(m) modularity rescan with O(#moves)
/// accounting. The rescan survives as a `debug_assert` cross-check here and
/// as the retained [`crate::reference::parallel_phase_colored_rescan`]
/// differential baseline.
pub fn parallel_phase_colored(
    g: &CsrGraph,
    batches: &ColorBatches,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    let mut assignment: Vec<Community> = (0..n as Community).collect();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment,
            iterations: Vec::new(),
            final_modularity: 0.0,
        };
    }
    debug_assert!(batches.is_stably_ordered(), "unstable color batches");

    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut tracker = ModularityTracker::new(g, &assignment, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut q_prev = tracker.modularity();
    let mut moved: Vec<IndependentMove> = Vec::new();
    // One pool for the whole phase: scratch allocations amortize across all
    // color batches and iterations instead of recurring per parallel region.
    let scratches = ScratchPool::new();

    for _iter in 0..max_iterations {
        let mut moves = 0usize;
        for batch in batches.iter() {
            if batch.is_empty() {
                continue;
            }
            let decisions =
                colored_decide_batch(g, &assignment, &a, &sizes, m, resolution, batch, &scratches);
            colored_collect_moves(g, batch, &decisions, &mut assignment, &mut moved);
            // Barrier commit: per-move e_in deltas reduced in a fixed
            // left-biased order (det_sum), a/null_sum/sizes updates applied
            // in ascending vertex order — O(#moves), schedule-independent.
            tracker.apply_independent_batch(&moved, &mut a, &mut sizes);
            moves += moved.len();
        }

        let q_curr = tracker.modularity();
        debug_assert!(
            tracker.drift_from_full(g, &assignment) < TRACKER_DRIFT_TOLERANCE,
            "incremental colored modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &assignment),
        );
        iterations.push((q_curr, moves));
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment,
        iterations,
        final_modularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_coloring::{color_parallel, ParallelColoringConfig};
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{
        planted_partition, ring_of_cliques, CliqueRingConfig, PlantedConfig,
    };

    fn classes_of(g: &CsrGraph) -> ColorBatches {
        let coloring = color_parallel(g, &ParallelColoringConfig::default());
        ColorBatches::from_coloring(&coloring)
    }

    #[test]
    fn unordered_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn colored_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_colored(&g, &classes_of(&g), 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn min_label_prevents_two_vertex_swap() {
        // §4.2's swap scenario: a single edge. Without the singlet rule the
        // pair could swap labels forever; with it, exactly one converges into
        // the other (the smaller label) after one iteration.
        let g = from_unweighted_edges(2, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[0], 0, "minimum label must win");
    }

    #[test]
    fn four_clique_local_maxima_avoided() {
        // Fig. 2 case 2: a 4-clique starting as singletons. The generalized
        // ML heuristic sends every vertex toward the smallest-label maximal-
        // gain community instead of splitting into {i4,i6},{i5,i7}.
        let g = from_unweighted_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        let c = out.assignment[0];
        assert!(
            out.assignment.iter().all(|&x| x == c),
            "4-clique should be one community, got {:?}",
            out.assignment
        );
    }

    #[test]
    fn unordered_deterministic_across_thread_counts() {
        // §5.4: the non-colored algorithm is stable regardless of core count.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| parallel_phase_unordered(&g, 1e-6, 1000, 1.0))
        };
        let out1 = run(1);
        let out2 = run(2);
        let out4 = run(4);
        assert_eq!(out1.assignment, out2.assignment);
        assert_eq!(out1.assignment, out4.assignment);
        assert_eq!(out1.iterations.len(), out2.iterations.len());
        assert_eq!(out1.final_modularity, out2.final_modularity);
        assert_eq!(out1.final_modularity, out4.final_modularity);
    }

    #[test]
    fn colored_uses_fewer_iterations_than_unordered() {
        // The design intent of coloring (§5.2): faster convergence. On a
        // community-rich graph the colored phase should need no more
        // iterations than the unordered one.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let un = parallel_phase_unordered(&g, 1e-4, 1000, 1.0);
        let co = parallel_phase_colored(&g, &classes_of(&g), 1e-4, 1000, 1.0);
        assert!(
            co.num_iterations() <= un.num_iterations(),
            "colored {} vs unordered {}",
            co.num_iterations(),
            un.num_iterations()
        );
        assert!(co.final_modularity > 0.5);
    }

    #[test]
    fn empty_graph_phases() {
        let g = CsrGraph::empty(0);
        let out = parallel_phase_unordered(&g, 1e-6, 10, 1.0);
        assert!(out.assignment.is_empty());
        let out2 = parallel_phase_colored(&g, &ColorBatches::default(), 1e-6, 10, 1.0);
        assert!(out2.assignment.is_empty());
    }

    #[test]
    fn colored_deterministic_across_thread_counts() {
        // The tentpole guarantee: with barrier commits and incremental
        // accounting, the colored phase inherits the §5.4 stability claim —
        // bitwise-identical assignments, iterations, and modularity at any
        // pool size.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let batches = classes_of(&g);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| parallel_phase_colored(&g, &batches, 1e-6, 1000, 1.0))
        };
        let out1 = run(1);
        for threads in [2usize, 4, 8] {
            let out = run(threads);
            assert_eq!(out1.assignment, out.assignment, "{threads} threads");
            assert_eq!(out1.iterations, out.iterations, "{threads} threads");
            assert_eq!(
                out1.final_modularity.to_bits(),
                out.final_modularity.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn isolated_vertices_stay_singleton() {
        let g = from_unweighted_edges(4, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[2], 2);
        assert_eq!(out.assignment[3], 3);
    }

    #[test]
    fn moves_counted() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 4,
            clique_size: 4,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert!(
            out.iterations[0].1 > 0,
            "first iteration must move vertices"
        );
        // Iterations should be recorded in order with the final Q last.
        assert_eq!(out.final_modularity, out.iterations.last().unwrap().0);
    }

    #[test]
    fn singleton_community_graph_converges_fast() {
        // A graph with no edges converges in one iteration (no moves).
        let g = CsrGraph::empty(10);
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.num_iterations(), 0); // m = 0 short-circuits
    }
}
