//! The parallel Louvain phase (Algorithm 1) with the minimum-label
//! heuristics (§5.1) — in both flavors the paper evaluates. Both are run
//! through [`crate::PhaseDriver`] (the historical free-function entry
//! points survive as deprecated wrappers in [`crate::reference`]):
//!
//! * [`unordered_scheduled_impl`] — no coloring: one lock-free parallel
//!   sweep per iteration, every decision reading the *previous* iteration's
//!   assignment and community degrees (Algorithm 1 lines 8–14 with a single
//!   color set). Deterministic for any thread count: writes go to
//!   `C_curr[i]`, reads to `C_prev`, and all reductions are
//!   order-deterministic (§5.4's stability property).
//! * [`colored_scheduled_impl`] — vertices are processed one color batch at
//!   a time; each batch is decided in parallel against the state frozen at
//!   its barrier, then committed in ascending vertex order. Later batches
//!   observe earlier commits — the colored analogue of serial freshness.
//!   Because a batch is an independent set, the barrier commit is exact and
//!   feeds the same incremental [`ModularityTracker`] accounting as the
//!   unordered sweep (`Σ e_in` deltas reduced in fixed left-biased order via
//!   `det_sum`, `a`/`Σ a_C²` updates applied in commit order), so the phase
//!   is bitwise deterministic across thread counts — unlike the historical
//!   atomic-commit scheme (`__sync_fetch_and_add`, §5.5), whose
//!   schedule-dependent float commits forced an O(m) modularity rescan per
//!   iteration (retained as [`crate::reference::colored_rescan_impl`]).

use crate::active::ActiveSet;
use crate::config::SweepMode;
use crate::modularity::{
    best_move_with_src, Community, IndependentMove, ModularityTracker, MoveContext, MoveDecision,
    NeighborScratch, ScratchPool, TRACKER_DRIFT_TOLERANCE,
};
use crate::phase::{singlet_veto, IterationStats, PhaseOutcome};
use crate::schedule::Convergence;
use grappolo_coloring::ColorBatches;
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Runs one **unordered** (non-colored) parallel phase to convergence under
/// an explicit [`Convergence`] policy — the full convergence engine behind
/// [`crate::PhaseDriver::run`].
///
/// Per-iteration bookkeeping is incremental: community degrees, sizes, and
/// the `Σ e_in` / `Σ a_C²` modularity terms are carried across iterations
/// and updated only for the committed moves
/// ([`ModularityTracker::apply_batch`]), so the historical O(n) degree
/// rebuild and O(m) modularity rescan are gone from the hot path (the
/// rescan survives as a `debug_assert` cross-check). All updates are
/// applied in deterministic order, preserving the §5.4 bitwise-stability
/// guarantee across thread counts.
///
/// `sweep` selects the iteration schedule: [`SweepMode::Full`] re-examines
/// every vertex each iteration (the paper's scheme); [`SweepMode::Active`]
/// re-examines only the dirty vertices — those whose neighborhood changed in
/// the previous iteration ([`ActiveSet`], rebuilt from the committed move
/// list) — making late iterations activity-proportional while staying
/// bitwise deterministic across thread counts. Pruning is **deferred**: the
/// phase runs the plain full-iteration path (bitwise identical to `Full`,
/// zero overhead) until an iteration's move count first drops to the
/// [`ActiveSet::engages`] bound, because a frontier derived from a dense
/// move set would be near-saturated and save nothing.
///
/// Each iteration decides under the policy's per-vertex gain gate
/// ([`Convergence::gate`]): a vertex whose best move gains less than the
/// gate stays put and counts as **locally converged**, so it commits no
/// move and drops out of the next dirty-vertex frontier until a neighbor
/// moves. `Convergence::fixed(θ)` (gate 0) reproduces the historical
/// fixed-threshold sweep bit-for-bit; a geometric schedule tightens the
/// gate per iteration and terminates on "frontier empty at the floor"
/// instead of the aggregate-gain stop ([`Convergence::should_stop`]). The
/// gate sequence is a pure function of the iteration index, so scheduled
/// sweeps remain bitwise deterministic across thread counts.
pub(crate) fn unordered_scheduled_impl(
    g: &CsrGraph,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome::trivial(n);
    }

    // Incremental state, initialized once for the singleton partition and
    // carried across iterations (Algorithm 1 line 8's "previous iteration"
    // view is exactly this state before the batch is applied).
    let mut c_prev: Vec<Community> = (0..n as Community).collect();
    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut tracker = ModularityTracker::new(g, &c_prev, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = tracker.modularity();

    // Deferred pruning: `active` stays disengaged (`None`) — the plain
    // full-iteration path below, bitwise identical to `SweepMode::Full` —
    // until an iteration's move count drops to the engagement bound; from
    // then on the work list and a second assignment buffer prune every
    // iteration.
    let prune = sweep == SweepMode::Active;
    let mut active: Option<(ActiveSet, Vec<Community>)> = None;
    // The process-global per-worker arena: scratches checked out here were
    // warmed by earlier iterations — and earlier *phases* — on the same
    // resident worker.
    let scratches = ScratchPool::global();

    for iter in 0..max_iterations {
        let gate = conv.gate(iter);
        let (q_curr, moves, converged) = match &mut active {
            // Lines 9–14, full schedule: one parallel sweep over every
            // vertex without locks, against snapshot state.
            None => {
                // With the gate inactive (Fixed + ε = 0, the default and
                // the perf-gated baseline) nothing can be suppressed, so
                // the sweep keeps its historical single-collect shape; the
                // gated shape pays two extra O(n) passes to split targets
                // from suppression flags.
                let (c_curr, converged) = if gate > 0.0 {
                    let decisions: Vec<(Community, bool)> = (0..n as VertexId)
                        .into_par_iter()
                        .map_init(
                            || scratches.take(),
                            |scratch, v| {
                                decide(g, &c_prev, &a, &sizes, m, resolution, gate, scratch, v)
                            },
                        )
                        .collect();
                    let c_curr: Vec<Community> = decisions.par_iter().map(|&(c, _)| c).collect();
                    let converged = decisions.par_iter().filter(|&&(_, gated)| gated).count();
                    (c_curr, converged)
                } else {
                    let c_curr: Vec<Community> = (0..n as VertexId)
                        .into_par_iter()
                        .map_init(
                            || scratches.take(),
                            |scratch, v| {
                                decide(g, &c_prev, &a, &sizes, m, resolution, gate, scratch, v).0
                            },
                        )
                        .collect();
                    (c_curr, 0)
                };

                // The committed moves, in ascending vertex order
                // (deterministic).
                let moved: Vec<VertexId> = (0..n as VertexId)
                    .into_par_iter()
                    .filter(|&v| c_prev[v as usize] != c_curr[v as usize])
                    .collect();
                let moves = moved.len();
                tracker.apply_batch(g, &c_prev, &c_curr, &moved, &mut a, &mut sizes);
                c_prev = c_curr;
                // Engagement additionally waits for the gate to reach its
                // floor: while the gate still tightens, a vertex gated this
                // iteration may clear the next one, and only the full path
                // re-examines it then (a frontier would park it until a
                // neighbor moved). Under `Fixed` the gate is constant, so
                // this clause never defers.
                if prune && conv.gate_at_floor(iter) && ActiveSet::engages(n, moves) {
                    let mut set = ActiveSet::empty(n);
                    set.rebuild_from_moves(g, &moved);
                    active = Some((set, c_prev.clone()));
                }
                stats.push(IterationStats {
                    gate,
                    frontier: n,
                    converged,
                });
                (tracker.modularity(), moves, converged)
            }
            // Active schedule: decide only the frontier. Frontier vertices
            // see exactly the frozen state a full sweep would show them, so
            // their decisions (and the incremental accounting) are
            // unchanged; skipped vertices keep their label by construction.
            Some((set, c_curr)) => {
                if set.is_empty() {
                    // Converged: nothing moved last iteration, so no vertex
                    // can have a changed neighborhood. (Unreachable through
                    // the normal loop — `should_stop` fires on zero moves —
                    // but an explicit guard keeps the invariant local.)
                    break;
                }
                let frontier = set.frontier();
                let decisions: Vec<(Community, bool)> = frontier
                    .par_iter()
                    .map_init(
                        || scratches.take(),
                        |scratch, &v| {
                            decide(g, &c_prev, &a, &sizes, m, resolution, gate, scratch, v)
                        },
                    )
                    .collect();

                // Commit: copy the previous assignment (O(n) memcpy — cheap
                // next to the O(m) gathers pruning saves), then apply the
                // frontier's decisions in ascending vertex order.
                c_curr.copy_from_slice(&c_prev);
                let mut moved: Vec<VertexId> = Vec::new();
                let mut converged = 0usize;
                for (&v, &(to, gated)) in frontier.iter().zip(&decisions) {
                    if to != c_prev[v as usize] {
                        c_curr[v as usize] = to;
                        moved.push(v);
                    }
                    converged += gated as usize;
                }
                let moves = moved.len();
                let frontier_len = frontier.len();
                tracker.apply_batch(g, &c_prev, c_curr, &moved, &mut a, &mut sizes);
                set.rebuild_from_moves(g, &moved);
                std::mem::swap(&mut c_prev, c_curr);
                stats.push(IterationStats {
                    gate,
                    frontier: frontier_len,
                    converged,
                });
                (tracker.modularity(), moves, converged)
            }
        };
        debug_assert!(
            tracker.drift_from_full(g, &c_prev) < TRACKER_DRIFT_TOLERANCE,
            "incremental modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &c_prev),
        );
        iterations.push((q_curr, moves));
        if conv.should_stop(iter, q_prev, q_curr, moves, converged) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

/// Carried-forward sweep state for [`unordered_resume_impl`]: a converged
/// (or at least meaningful) prior assignment plus its incremental
/// bookkeeping, as the dynamic driver reconstructs it after an edge batch.
pub(crate) struct ResumeState {
    /// Prior community labels, one per vertex of the *updated* graph
    /// (labels `< n`, not necessarily dense).
    pub assignment: Vec<Community>,
    /// Per-community weighted degree sums on the updated graph.
    pub a: Vec<f64>,
    /// Per-community member counts.
    pub sizes: Vec<u32>,
    /// Tracker already seeded for (`assignment`, updated graph).
    pub tracker: ModularityTracker,
    /// Vertices whose incident edges changed — the dirty seed set
    /// (ascending, deduplicated).
    pub seeds: Vec<VertexId>,
}

/// Resumes the **unordered** parallel sweep from carried-forward state
/// instead of the singleton partition — the dynamic-update analogue of
/// [`unordered_scheduled_impl`].
///
/// The [`ActiveSet`] engages *immediately*, seeded from `state.seeds` (the
/// endpoints of changed edges) via the same movers ∪ neighbors closure used
/// mid-phase, so iteration 0 already examines only the dirty frontier.
/// Vertices outside the frontier are never examined and therefore keep
/// their labels bitwise — the quiesced-region guarantee — and every
/// per-iteration mechanism (snapshot decisions, ascending-order commits,
/// incremental tracker accounting, frontier rebuild from the committed move
/// list) is shared with the static phase, so the resumed sweep stays
/// bitwise deterministic across thread counts.
pub(crate) fn unordered_resume_impl(
    g: &CsrGraph,
    state: ResumeState,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    let ResumeState {
        assignment: mut c_prev,
        mut a,
        mut sizes,
        mut tracker,
        seeds,
    } = state;
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment: c_prev,
            iterations: Vec::new(),
            stats: Vec::new(),
            final_modularity: 0.0,
            refinement: None,
        };
    }

    let mut set = ActiveSet::empty(n);
    set.rebuild_from_moves(g, &seeds);
    let mut c_curr = c_prev.clone();

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = tracker.modularity();
    let scratches = ScratchPool::global();

    for iter in 0..max_iterations {
        if set.is_empty() {
            break;
        }
        let gate = conv.gate(iter);
        let frontier = set.frontier();
        let decisions: Vec<(Community, bool)> = frontier
            .par_iter()
            .map_init(
                || scratches.take(),
                |scratch, &v| decide(g, &c_prev, &a, &sizes, m, resolution, gate, scratch, v),
            )
            .collect();

        c_curr.copy_from_slice(&c_prev);
        let mut moved: Vec<VertexId> = Vec::new();
        let mut converged = 0usize;
        for (&v, &(to, gated)) in frontier.iter().zip(&decisions) {
            if to != c_prev[v as usize] {
                c_curr[v as usize] = to;
                moved.push(v);
            }
            converged += gated as usize;
        }
        let moves = moved.len();
        let frontier_len = frontier.len();
        tracker.apply_batch(g, &c_prev, &c_curr, &moved, &mut a, &mut sizes);
        set.rebuild_from_moves(g, &moved);
        std::mem::swap(&mut c_prev, &mut c_curr);
        stats.push(IterationStats {
            gate,
            frontier: frontier_len,
            converged,
        });
        let q_curr = tracker.modularity();
        debug_assert!(
            tracker.drift_from_full(g, &c_prev) < TRACKER_DRIFT_TOLERANCE,
            "resumed incremental modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &c_prev),
        );
        iterations.push((q_curr, moves));
        if conv.should_stop(iter, q_prev, q_curr, moves, converged) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

/// One vertex's migration decision against snapshot state, gated by the
/// iteration's per-vertex gain threshold. Returns `(target, gated)`:
/// `gated` is true iff the vertex had a strictly positive best gain that
/// the gate suppressed — it is *locally converged* at this gate level
/// (singlet vetoes and genuine stays are not gated). `gate = 0.0` can never
/// suppress (a chosen target always has gain > 0), so ungated callers get
/// the historical decision bit-for-bit.
#[allow(clippy::too_many_arguments)]
#[inline]
fn decide(
    g: &CsrGraph,
    assignment: &[Community],
    a: &[f64],
    sizes: &[u32],
    m: f64,
    resolution: f64,
    gate: f64,
    scratch: &mut NeighborScratch,
    v: VertexId,
) -> (Community, bool) {
    let cur = assignment[v as usize];
    scratch.gather(g, assignment, v);
    if scratch.entries.is_empty() {
        return (cur, false);
    }
    let ctx = MoveContext {
        current: cur,
        k: g.weighted_degree(v),
        m,
        a_current: a[cur as usize],
        gamma: resolution,
    };
    let decision = best_move_with_src(&ctx, &scratch.entries, scratch.weight_to(cur), |c| {
        a[c as usize]
    });
    if decision.target != cur {
        if decision.gain < gate {
            return (cur, true);
        }
        if singlet_veto(cur, decision.target, |c| sizes[c as usize]) {
            return (cur, false);
        }
    }
    (decision.target, false)
}

/// One color batch's migration decisions, evaluated in parallel against the
/// state frozen at the batch barrier (`assignment`/`a`/`sizes` are not
/// mutated while the batch is in flight). Returns one [`MoveDecision`] per
/// batch vertex, in batch order; a gated, vetoed, or stay decision has
/// `target == current` (a gated one keeps its positive `gain`, which is how
/// [`colored_collect_moves`] recognizes local convergence). Shared by the
/// incremental colored sweep and the full-rescan reference (which passes
/// `gate = 0.0`) so both make bitwise-identical decisions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn colored_decide_batch(
    g: &CsrGraph,
    assignment: &[Community],
    a: &[f64],
    sizes: &[u32],
    m: f64,
    resolution: f64,
    gate: f64,
    batch: &[VertexId],
    scratches: &ScratchPool,
) -> Vec<MoveDecision> {
    batch
        .par_iter()
        .map_init(
            || scratches.take(),
            |scratch, &v| {
                let scratch: &mut NeighborScratch = scratch;
                let cur = assignment[v as usize];
                // Neighbors are in other color batches (distance-1 coloring), so
                // the barrier snapshot is also their freshest state.
                scratch.gather(g, assignment, v);
                if scratch.entries.is_empty() {
                    return MoveDecision {
                        target: cur,
                        gain: 0.0,
                        e_src: 0.0,
                        e_tgt: 0.0,
                    };
                }
                let ctx = MoveContext {
                    current: cur,
                    k: g.weighted_degree(v),
                    m,
                    a_current: a[cur as usize],
                    gamma: resolution,
                };
                let decision =
                    best_move_with_src(&ctx, &scratch.entries, scratch.weight_to(cur), |c| {
                        a[c as usize]
                    });
                if decision.target != cur
                    && (decision.gain < gate
                        || singlet_veto(cur, decision.target, |c| sizes[c as usize]))
                {
                    return MoveDecision {
                        target: cur,
                        ..decision
                    };
                }
                decision
            },
        )
        .collect()
}

/// Drains one batch's decisions into `moved` (ascending vertex order, since
/// batches are stably ordered) and commits the assignment writes; the
/// movers' vertex ids land in `movers` (same order, same length — the
/// active-set rebuild consumes them). Returns the number of **locally
/// converged** vertices: stays whose positive best gain fell below `gate`
/// (gate 0.0 ⇒ always 0). The `a`/`sizes`/modularity accounting is the
/// caller's responsibility — the only place the incremental sweep and the
/// rescan reference differ.
pub(crate) fn colored_collect_moves(
    g: &CsrGraph,
    batch: &[VertexId],
    decisions: &[MoveDecision],
    gate: f64,
    assignment: &mut [Community],
    moved: &mut Vec<IndependentMove>,
    movers: &mut Vec<VertexId>,
) -> usize {
    moved.clear();
    movers.clear();
    let mut converged = 0usize;
    for (&v, d) in batch.iter().zip(decisions) {
        let from = assignment[v as usize];
        if d.target == from {
            converged += (d.gain > 0.0 && d.gain < gate) as usize;
            continue;
        }
        moved.push(IndependentMove {
            k: g.weighted_degree(v),
            e_src: d.e_src,
            e_tgt: d.e_tgt,
            from,
            to: d.target,
        });
        movers.push(v);
        assignment[v as usize] = d.target;
    }
    converged
}

/// Runs one **colored** parallel phase to convergence under an explicit
/// [`Convergence`] policy — the colored side of the convergence engine,
/// behind [`crate::PhaseDriver::run_colored`].
///
/// `batches` partitions the vertices into independent sets (distance-1 color
/// classes) under [`ColorBatches`]' stable-ordering guarantee. Within an
/// iteration the batches are processed in ascending color order: each
/// batch's decisions are computed in parallel against the state frozen at
/// its barrier, then committed in ascending vertex order, so later batches
/// observe earlier commits (the colored analogue of serial freshness) while
/// the whole phase stays bitwise deterministic across thread counts.
///
/// Per-iteration bookkeeping is incremental, as in
/// [`unordered_scheduled_impl`]: community degrees, sizes, and the
/// `Σ e_in` / `Σ a_C²` terms are carried across batches and updated only for
/// committed moves ([`ModularityTracker::apply_independent_batch`], exact
/// precisely because a batch's movers form an independent set), replacing
/// the historical per-iteration O(m) modularity rescan with O(#moves)
/// accounting. The rescan survives as a `debug_assert` cross-check here and
/// as the retained [`crate::reference::colored_rescan_impl`] differential
/// baseline.
///
/// Under [`SweepMode::Active`] each color batch is filtered to its active
/// vertices ([`ColorBatches::filter_batch_into`]) before the batch decision
/// pass — a filtered batch is still an independent set, so the barrier
/// commit and incremental accounting stay exact. The work list is rebuilt
/// once per iteration from the concatenated per-batch move lists, so the
/// frontier (and hence the whole phase) remains bitwise deterministic
/// across thread counts; vertices whose neighborhood changes mid-iteration
/// (an earlier batch's commit) are picked up in the next iteration's
/// frontier. As in the unordered sweep, pruning is deferred until an
/// iteration's move count drops to the [`ActiveSet::engages`] bound — dense
/// iterations run the plain path, bitwise identical to `Full`.
///
/// The per-vertex gain gate is applied inside each batch's decision pass
/// ([`colored_decide_batch`]): a gated vertex stays put, so it neither
/// commits a move nor re-enters the dirty-vertex frontier until a neighbor
/// moves. Gating is vertex-local against the batch's frozen barrier state,
/// so the independent-set commit and the incremental accounting are
/// untouched, and the gate sequence (a pure function of the iteration
/// index) keeps the whole phase bitwise deterministic across thread counts.
/// `Convergence::fixed(θ)` reproduces the fixed-threshold colored sweep
/// bit-for-bit.
pub(crate) fn colored_scheduled_impl(
    g: &CsrGraph,
    batches: &ColorBatches,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome::trivial(n);
    }
    debug_assert!(batches.is_stably_ordered(), "unstable color batches");

    let mut assignment: Vec<Community> = (0..n as Community).collect();
    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut tracker = ModularityTracker::new(g, &assignment, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = tracker.modularity();
    let mut moved: Vec<IndependentMove> = Vec::new();
    let mut movers: Vec<VertexId> = Vec::new();
    // The process-global per-worker arena: scratch allocations amortize
    // across all color batches, iterations, and phases instead of recurring
    // per parallel region.
    let scratches = ScratchPool::global();

    // Deferred pruning, as in the unordered sweep: full-path iterations
    // (bitwise identical to `Full`) until the move count first drops to the
    // engagement bound, pruned iterations thereafter.
    let prune = sweep == SweepMode::Active;
    let mut active: Option<ActiveSet> = None;
    let mut filtered: Vec<VertexId> = Vec::new();
    let mut iter_movers: Vec<VertexId> = Vec::new();

    for iter in 0..max_iterations {
        if active.as_ref().is_some_and(ActiveSet::is_empty) {
            // Converged: nothing moved last iteration (see the unordered
            // sweep's identical guard).
            break;
        }
        let gate = conv.gate(iter);
        let mut moves = 0usize;
        let mut converged = 0usize;
        let mut examined = 0usize;
        iter_movers.clear();
        for (color, full_batch) in batches.as_classes().iter().enumerate() {
            let batch: &[VertexId] = match &active {
                // A filtered batch is a subset of an independent set —
                // still independent, still ascending.
                Some(set) if !set.is_saturated() => {
                    batches.filter_batch_into(color, |v| set.contains(v), &mut filtered);
                    &filtered
                }
                _ => full_batch.as_slice(),
            };
            if batch.is_empty() {
                continue;
            }
            examined += batch.len();
            let decisions = colored_decide_batch(
                g,
                &assignment,
                &a,
                &sizes,
                m,
                resolution,
                gate,
                batch,
                scratches,
            );
            converged += colored_collect_moves(
                g,
                batch,
                &decisions,
                gate,
                &mut assignment,
                &mut moved,
                &mut movers,
            );
            // Barrier commit: per-move e_in deltas reduced in a fixed
            // left-biased order (det_sum), a/null_sum/sizes updates applied
            // in ascending vertex order — O(#moves), schedule-independent.
            tracker.apply_independent_batch(&moved, &mut a, &mut sizes);
            moves += moved.len();
            if prune {
                iter_movers.extend_from_slice(&movers);
            }
        }
        match &mut active {
            Some(set) => set.rebuild_from_moves(g, &iter_movers),
            // As in the unordered sweep, engagement waits for the gate
            // floor: a pre-floor frontier would park vertices the
            // tightening gate is about to admit.
            None if prune && conv.gate_at_floor(iter) && ActiveSet::engages(n, moves) => {
                let mut set = ActiveSet::empty(n);
                set.rebuild_from_moves(g, &iter_movers);
                active = Some(set);
            }
            None => {}
        }

        let q_curr = tracker.modularity();
        debug_assert!(
            tracker.drift_from_full(g, &assignment) < TRACKER_DRIFT_TOLERANCE,
            "incremental colored modularity drifted: {} vs full recompute",
            tracker.drift_from_full(g, &assignment),
        );
        iterations.push((q_curr, moves));
        stats.push(IterationStats {
            gate,
            frontier: examined,
            converged,
        });
        if conv.should_stop(iter, q_prev, q_curr, moves, converged) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_coloring::{color_parallel, ParallelColoringConfig};
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{
        planted_partition, ring_of_cliques, CliqueRingConfig, PlantedConfig,
    };

    fn classes_of(g: &CsrGraph) -> ColorBatches {
        let coloring = color_parallel(g, &ParallelColoringConfig::default());
        ColorBatches::from_coloring(&coloring)
    }

    // The historical fixed-threshold entry signatures, kept local so the
    // tests keep reading like the paper's experiments; production callers go
    // through `crate::PhaseDriver`.
    fn parallel_phase_unordered(
        g: &CsrGraph,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        parallel_phase_unordered_sweep(g, SweepMode::Full, threshold, max_iterations, resolution)
    }

    fn parallel_phase_unordered_sweep(
        g: &CsrGraph,
        sweep: SweepMode,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        unordered_scheduled_impl(
            g,
            sweep,
            &Convergence::fixed(threshold),
            max_iterations,
            resolution,
        )
    }

    fn parallel_phase_colored(
        g: &CsrGraph,
        batches: &ColorBatches,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        parallel_phase_colored_sweep(
            g,
            batches,
            SweepMode::Full,
            threshold,
            max_iterations,
            resolution,
        )
    }

    fn parallel_phase_colored_sweep(
        g: &CsrGraph,
        batches: &ColorBatches,
        sweep: SweepMode,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        colored_scheduled_impl(
            g,
            batches,
            sweep,
            &Convergence::fixed(threshold),
            max_iterations,
            resolution,
        )
    }

    #[test]
    fn unordered_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn colored_recovers_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 10,
            clique_size: 6,
            ..Default::default()
        });
        let out = parallel_phase_colored(&g, &classes_of(&g), 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7, "Q={}", out.final_modularity);
        for c in 0..10u32 {
            let members: Vec<_> = (0..60)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn min_label_prevents_two_vertex_swap() {
        // §4.2's swap scenario: a single edge. Without the singlet rule the
        // pair could swap labels forever; with it, exactly one converges into
        // the other (the smaller label) after one iteration.
        let g = from_unweighted_edges(2, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[0], 0, "minimum label must win");
    }

    #[test]
    fn four_clique_local_maxima_avoided() {
        // Fig. 2 case 2: a 4-clique starting as singletons. The generalized
        // ML heuristic sends every vertex toward the smallest-label maximal-
        // gain community instead of splitting into {i4,i6},{i5,i7}.
        let g = from_unweighted_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        let c = out.assignment[0];
        assert!(
            out.assignment.iter().all(|&x| x == c),
            "4-clique should be one community, got {:?}",
            out.assignment
        );
    }

    #[test]
    fn unordered_deterministic_across_thread_counts() {
        // §5.4: the non-colored algorithm is stable regardless of core count.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| parallel_phase_unordered(&g, 1e-6, 1000, 1.0))
        };
        let out1 = run(1);
        let out2 = run(2);
        let out4 = run(4);
        assert_eq!(out1.assignment, out2.assignment);
        assert_eq!(out1.assignment, out4.assignment);
        assert_eq!(out1.iterations.len(), out2.iterations.len());
        assert_eq!(out1.final_modularity, out2.final_modularity);
        assert_eq!(out1.final_modularity, out4.final_modularity);
    }

    #[test]
    fn colored_uses_fewer_iterations_than_unordered() {
        // The design intent of coloring (§5.2): faster convergence. On a
        // community-rich graph the colored phase should need no more
        // iterations than the unordered one.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let un = parallel_phase_unordered(&g, 1e-4, 1000, 1.0);
        let co = parallel_phase_colored(&g, &classes_of(&g), 1e-4, 1000, 1.0);
        assert!(
            co.num_iterations() <= un.num_iterations(),
            "colored {} vs unordered {}",
            co.num_iterations(),
            un.num_iterations()
        );
        assert!(co.final_modularity > 0.5);
    }

    #[test]
    fn empty_graph_phases() {
        let g = CsrGraph::empty(0);
        let out = parallel_phase_unordered(&g, 1e-6, 10, 1.0);
        assert!(out.assignment.is_empty());
        let out2 = parallel_phase_colored(&g, &ColorBatches::default(), 1e-6, 10, 1.0);
        assert!(out2.assignment.is_empty());
    }

    #[test]
    fn colored_deterministic_across_thread_counts() {
        // The tentpole guarantee: with barrier commits and incremental
        // accounting, the colored phase inherits the §5.4 stability claim —
        // bitwise-identical assignments, iterations, and modularity at any
        // pool size.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let batches = classes_of(&g);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| parallel_phase_colored(&g, &batches, 1e-6, 1000, 1.0))
        };
        let out1 = run(1);
        for threads in [2usize, 4, 8] {
            let out = run(threads);
            assert_eq!(out1.assignment, out.assignment, "{threads} threads");
            assert_eq!(out1.iterations, out.iterations, "{threads} threads");
            assert_eq!(
                out1.final_modularity.to_bits(),
                out.final_modularity.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn isolated_vertices_stay_singleton() {
        let g = from_unweighted_edges(4, [(0, 1)]).unwrap();
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.assignment[2], 2);
        assert_eq!(out.assignment[3], 3);
    }

    #[test]
    fn active_first_iteration_bitwise_matches_full() {
        // Iteration 0's active set is saturated, so the pruned sweep must
        // make bitwise-identical decisions to the full sweep — for both the
        // unordered and the colored variants.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            ..Default::default()
        });
        let full = parallel_phase_unordered_sweep(&g, SweepMode::Full, 1e-9, 1, 1.0);
        let active = parallel_phase_unordered_sweep(&g, SweepMode::Active, 1e-9, 1, 1.0);
        assert_eq!(full.assignment, active.assignment);
        assert_eq!(full.iterations, active.iterations);
        assert_eq!(
            full.final_modularity.to_bits(),
            active.final_modularity.to_bits()
        );

        let batches = classes_of(&g);
        let full_c = parallel_phase_colored_sweep(&g, &batches, SweepMode::Full, 1e-9, 1, 1.0);
        let active_c = parallel_phase_colored_sweep(&g, &batches, SweepMode::Active, 1e-9, 1, 1.0);
        assert_eq!(full_c.assignment, active_c.assignment);
        assert_eq!(full_c.iterations, active_c.iterations);
    }

    #[test]
    fn active_unordered_quality_matches_full() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let full = parallel_phase_unordered_sweep(&g, SweepMode::Full, 1e-6, 1000, 1.0);
        let active = parallel_phase_unordered_sweep(&g, SweepMode::Active, 1e-6, 1000, 1.0);
        assert!(
            active.final_modularity >= 0.95 * full.final_modularity,
            "active Q {} vs full Q {}",
            active.final_modularity,
            full.final_modularity
        );
    }

    #[test]
    fn active_colored_quality_matches_full() {
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let batches = classes_of(&g);
        let full = parallel_phase_colored_sweep(&g, &batches, SweepMode::Full, 1e-6, 1000, 1.0);
        let active = parallel_phase_colored_sweep(&g, &batches, SweepMode::Active, 1e-6, 1000, 1.0);
        assert!(
            active.final_modularity >= 0.95 * full.final_modularity,
            "active Q {} vs full Q {}",
            active.final_modularity,
            full.final_modularity
        );
    }

    #[test]
    fn active_sweeps_deterministic_across_thread_counts() {
        // The tentpole guarantee: the dirty-vertex frontier is rebuilt from
        // the committed move list, so the whole pruned phase — unordered and
        // colored — is bitwise identical at any pool size.
        let (g, _) = planted_partition(&PlantedConfig {
            num_vertices: 3_000,
            num_communities: 30,
            ..Default::default()
        });
        let batches = classes_of(&g);
        let run = |threads: usize, colored: bool| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                if colored {
                    parallel_phase_colored_sweep(&g, &batches, SweepMode::Active, 1e-6, 1000, 1.0)
                } else {
                    parallel_phase_unordered_sweep(&g, SweepMode::Active, 1e-6, 1000, 1.0)
                }
            })
        };
        for colored in [false, true] {
            let r1 = run(1, colored);
            for threads in [2usize, 4, 8] {
                let rt = run(threads, colored);
                assert_eq!(
                    r1.assignment, rt.assignment,
                    "colored={colored} t={threads}"
                );
                assert_eq!(
                    r1.iterations, rt.iterations,
                    "colored={colored} t={threads}"
                );
                assert_eq!(
                    r1.final_modularity.to_bits(),
                    rt.final_modularity.to_bits(),
                    "colored={colored} t={threads}"
                );
            }
        }
    }

    #[test]
    fn active_empty_graphs() {
        let g = CsrGraph::empty(0);
        assert!(
            parallel_phase_unordered_sweep(&g, SweepMode::Active, 1e-6, 10, 1.0)
                .assignment
                .is_empty()
        );
        let g5 = CsrGraph::empty(5); // edgeless: m = 0 short-circuits
        let out = parallel_phase_unordered_sweep(&g5, SweepMode::Active, 1e-6, 10, 1.0);
        assert_eq!(out.assignment, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.num_iterations(), 0);
    }

    #[test]
    fn active_converges_with_terminal_zero_move_iteration() {
        // Once nothing moves, the frontier empties and the phase stops —
        // the active schedule may not run longer than the iteration cap nor
        // spin on an empty frontier.
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        // Negative threshold: only the zero-move condition can stop the
        // phase, which is exactly when the frontier would empty.
        let out = parallel_phase_unordered_sweep(&g, SweepMode::Active, -1.0, 10_000, 1.0);
        assert!(out.num_iterations() < 10_000, "phase failed to terminate");
        assert_eq!(out.iterations.last().unwrap().1, 0);
        assert!(out.final_modularity > 0.7);
    }

    #[test]
    fn moves_counted() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 4,
            clique_size: 4,
            ..Default::default()
        });
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert!(
            out.iterations[0].1 > 0,
            "first iteration must move vertices"
        );
        // Iterations should be recorded in order with the final Q last.
        assert_eq!(out.final_modularity, out.iterations.last().unwrap().0);
    }

    #[test]
    fn singleton_community_graph_converges_fast() {
        // A graph with no edges converges in one iteration (no moves).
        let g = CsrGraph::empty(10);
        let out = parallel_phase_unordered(&g, 1e-9, 100, 1.0);
        assert_eq!(out.num_iterations(), 0); // m = 0 short-circuits
    }
}
