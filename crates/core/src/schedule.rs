//! Adaptive threshold schedules and per-vertex convergence gating — the
//! convergence engine behind the local-moving sweeps.
//!
//! The paper terminates a phase on an **aggregate** net-modularity-gain
//! threshold θ (1e-2 for colored phases, 1e-6 for the rest). On inputs
//! without crisp structure the unordered sweep hits that stop while 20–40 %
//! of vertices still move every iteration, so the dirty-vertex work lists
//! ([`crate::active::ActiveSet`]) never engage and every iteration stays
//! O(m). Staudt & Meyerhenke's PLM points at the fix: drive convergence
//! **per vertex** — a vertex whose best available gain is below an epsilon
//! is locally converged and drops out of the frontier until a neighbor
//! moves.
//!
//! [`ThresholdSchedule`] supplies the per-iteration gain threshold —
//! `Fixed(θ)` reproduces the paper's aggregate stop bit-for-bit, while
//! `Geometric { start, factor, floor }` tightens a **per-vertex** gain gate
//! from `start` toward `floor` as the phase ages (coarse-to-fine *within* a
//! phase, the within-phase analogue of the paper's 1e-2 → 1e-6 phase
//! schedule). [`Convergence`] packages a schedule with a constant
//! `vertex_epsilon` floor and owns the sweep-facing queries: the effective
//! gate for iteration `k` and the phase-termination test.
//!
//! # Determinism contract
//!
//! Every quantity here is a **pure function of the iteration index** — no
//! state accumulates across calls, nothing reads the graph or the thread
//! pool — so scheduled sweeps inherit the §5.4 bitwise-stability guarantee
//! unchanged: the gate sequence is identical for any thread count, and the
//! per-vertex suppression decisions it drives are made vertex-locally
//! against snapshot state.
//!
//! # Gain scale
//!
//! Per-vertex modularity gains live on the `1/m` scale (moving a vertex
//! along one unit-weight edge gains ≈ `w/m`), so useful `start` / `floor` /
//! `vertex_epsilon` values are *graph-relative*.
//! [`crate::config::LouvainConfig::with_geometric_schedule`] converts
//! edge-weight-unit constants into absolute gains for a concrete graph.

use serde::{Deserialize, Serialize};

/// Per-iteration net-gain threshold schedule for one phase.
///
/// `Fixed(θ)` is the paper's scheme: the sweep stops when the *aggregate*
/// modularity gain of an iteration falls below θ (and per-vertex gating is
/// left to [`Convergence::vertex_epsilon`] alone). `Geometric` tightens a
/// **per-vertex** gain gate geometrically from `start` to `floor`; the
/// aggregate stop is replaced by "frontier empty at the floor threshold"
/// ([`Convergence::should_stop`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdSchedule {
    /// Constant aggregate threshold θ — the decision-identical baseline.
    Fixed(f64),
    /// `θ_k = max(floor, start · factor^k)`: iteration 0 gates at `start`,
    /// each iteration multiplies by `factor` (< 1), clamped at `floor`.
    Geometric {
        /// Gate for iteration 0.
        start: f64,
        /// Per-iteration tightening multiplier, in (0, 1).
        factor: f64,
        /// Tightest gate the schedule reaches (> 0).
        floor: f64,
    },
}

impl ThresholdSchedule {
    /// The scheduled threshold for iteration `k` — a pure function of `k`,
    /// monotone non-increasing, clamped at the floor.
    pub fn threshold_at(&self, k: usize) -> f64 {
        match *self {
            ThresholdSchedule::Fixed(theta) => theta,
            ThresholdSchedule::Geometric {
                start,
                factor,
                floor,
            } => {
                let mut t = start;
                for _ in 0..k {
                    if t <= floor {
                        return floor;
                    }
                    t *= factor;
                }
                t.max(floor)
            }
        }
    }

    /// The tightest threshold the schedule can reach.
    pub fn floor(&self) -> f64 {
        match *self {
            ThresholdSchedule::Fixed(theta) => theta,
            ThresholdSchedule::Geometric { floor, .. } => floor,
        }
    }

    /// Parameter sanity; mirrors [`crate::config::LouvainConfig::validate`].
    // The negated comparisons are deliberate: `!(x > 0.0)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ThresholdSchedule::Fixed(theta) => {
                if !(theta > 0.0) {
                    return Err("schedule threshold must be > 0".into());
                }
            }
            ThresholdSchedule::Geometric {
                start,
                factor,
                floor,
            } => {
                if !(factor > 0.0 && factor < 1.0) {
                    return Err(format!(
                        "geometric schedule factor must be in (0, 1), got {factor}"
                    ));
                }
                if !(floor > 0.0) {
                    return Err(format!("geometric schedule floor must be > 0, got {floor}"));
                }
                if !(start >= floor) {
                    return Err(format!(
                        "geometric schedule floor ({floor}) must not exceed start ({start})"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The convergence policy one phase runs under: a threshold schedule plus a
/// constant per-vertex epsilon.
///
/// The per-vertex **gate** for iteration `k` is the pointwise maximum of the
/// two: under `Fixed` it is `vertex_epsilon` alone (0 ⇒ the paper's
/// behavior, bit-for-bit); under `Geometric` it is
/// `max(vertex_epsilon, θ_k)`. A vertex whose best move gains less than the
/// gate is **locally converged** for the iteration: it stays put, commits no
/// move, and therefore drops out of the next dirty-vertex frontier until a
/// neighbor moves (before [`crate::active::ActiveSet`] engagement the full
/// path simply re-examines it each iteration at the ever-tighter gate).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Convergence {
    /// Per-iteration threshold schedule.
    pub schedule: ThresholdSchedule,
    /// Constant per-vertex gain epsilon (0 disables epsilon gating).
    pub vertex_epsilon: f64,
}

impl Convergence {
    /// The paper's policy: aggregate stop at θ, no per-vertex gating. All
    /// legacy fixed-threshold entry points route through this.
    pub fn fixed(theta: f64) -> Self {
        Self {
            schedule: ThresholdSchedule::Fixed(theta),
            vertex_epsilon: 0.0,
        }
    }

    /// The per-vertex gain gate for iteration `k`: a move is taken only when
    /// its gain is at least this. Monotone non-increasing in `k`.
    pub fn gate(&self, k: usize) -> f64 {
        match self.schedule {
            ThresholdSchedule::Fixed(_) => self.vertex_epsilon,
            ThresholdSchedule::Geometric { .. } => {
                self.vertex_epsilon.max(self.schedule.threshold_at(k))
            }
        }
    }

    /// True once the gate can tighten no further after iteration `k` —
    /// always for `Fixed`, and from the clamp point on for `Geometric`.
    pub fn gate_at_floor(&self, k: usize) -> bool {
        self.gate(k + 1) == self.gate(k)
    }

    /// Phase-termination test after iteration `k` committed `moves` moves
    /// and locally converged `converged` vertices.
    ///
    /// * `Fixed(θ)` — the paper's stop, unchanged: no vertex moved, or the
    ///   aggregate gain `q_curr − q_prev` fell below θ (which, per Lemma 1,
    ///   also stops on negative parallel gains).
    /// * `Geometric` — "frontier empty at the floor threshold": stop when
    ///   nothing moved **and** tightening the gate further cannot admit new
    ///   moves (the gate is at its floor, or no vertex was suppressed by
    ///   it). While suppressed vertices remain and the gate still tightens,
    ///   the phase continues — the next, tighter iteration may admit them.
    ///   One safety net survives from the aggregate scheme: once the gate
    ///   is at its floor, a **non-improving** iteration (net gain ≤ 0) with
    ///   moves still committing stops the phase — without it, gate-clearing
    ///   oscillations (each move individually gainful against frozen state,
    ///   jointly cancelling; Lemma 1's scenario) could spin to the
    ///   iteration cap. Positive slow progress is never cut short: the
    ///   phase keeps draining toward the empty frontier.
    pub fn should_stop(
        &self,
        k: usize,
        q_prev: f64,
        q_curr: f64,
        moves: usize,
        converged: usize,
    ) -> bool {
        match self.schedule {
            ThresholdSchedule::Fixed(theta) => {
                crate::phase::should_stop(q_prev, q_curr, moves, theta)
            }
            ThresholdSchedule::Geometric { .. } => {
                if moves == 0 {
                    converged == 0 || self.gate_at_floor(k)
                } else {
                    self.gate_at_floor(k) && (q_curr - q_prev) <= 0.0
                }
            }
        }
    }
}

/// Which threshold schedule a [`crate::config::LouvainConfig`] selects —
/// the serializable, phase-agnostic form. `Fixed` resolves, per phase, to
/// [`ThresholdSchedule::Fixed`] with that phase's θ
/// (`colored_threshold` / `final_threshold`); `Geometric` resolves to
/// [`ThresholdSchedule::Geometric`] with the config's
/// `schedule_start` / `schedule_factor` / `schedule_floor` parameters
/// (the gate lives on the per-vertex gain scale, not the aggregate one, so
/// it does not inherit the phase θ).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleMode {
    /// Aggregate stop at the phase threshold (paper's scheme; default).
    Fixed,
    /// Geometric per-vertex gate, `schedule_start · schedule_factor^k`
    /// clamped at `schedule_floor`.
    Geometric,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_threshold_is_constant() {
        let s = ThresholdSchedule::Fixed(1e-6);
        for k in [0usize, 1, 7, 1000] {
            assert_eq!(s.threshold_at(k), 1e-6);
        }
        assert_eq!(s.floor(), 1e-6);
    }

    #[test]
    fn geometric_is_monotone_nonincreasing_and_clamps() {
        let s = ThresholdSchedule::Geometric {
            start: 1e-2,
            factor: 0.5,
            floor: 1e-6,
        };
        let mut prev = f64::INFINITY;
        for k in 0..64 {
            let t = s.threshold_at(k);
            assert!(t <= prev, "k={k}: {t} > {prev}");
            assert!(t >= 1e-6, "k={k}: {t} below floor");
            prev = t;
        }
        assert_eq!(s.threshold_at(0), 1e-2);
        assert_eq!(s.threshold_at(1), 5e-3);
        // 1e-2 · 0.5^k < 1e-6 for k ≥ 14 ⇒ clamped exactly at the floor.
        assert_eq!(s.threshold_at(14), 1e-6);
        assert_eq!(s.threshold_at(1_000_000), 1e-6);
        assert_eq!(s.floor(), 1e-6);
    }

    #[test]
    fn geometric_start_at_floor_is_constant() {
        let s = ThresholdSchedule::Geometric {
            start: 1e-4,
            factor: 0.5,
            floor: 1e-4,
        };
        for k in 0..8 {
            assert_eq!(s.threshold_at(k), 1e-4);
        }
    }

    #[test]
    fn schedule_validation() {
        assert!(ThresholdSchedule::Fixed(1e-6).validate().is_ok());
        assert!(ThresholdSchedule::Fixed(0.0).validate().is_err());
        assert!(ThresholdSchedule::Fixed(f64::NAN).validate().is_err());
        let ok = ThresholdSchedule::Geometric {
            start: 1e-4,
            factor: 0.25,
            floor: 1e-8,
        };
        assert!(ok.validate().is_ok());
        for (start, factor, floor) in [
            (1e-4, 1.0, 1e-8), // factor ≥ 1 never tightens
            (1e-4, 1.5, 1e-8), // growing "schedule"
            (1e-4, 0.0, 1e-8), // degenerate
            (1e-4, 0.5, 0.0),  // floor must be positive
            (1e-8, 0.5, 1e-4), // floor above start
            (1e-4, f64::NAN, 1e-8),
            (f64::NAN, 0.5, 1e-8),
        ] {
            let s = ThresholdSchedule::Geometric {
                start,
                factor,
                floor,
            };
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn fixed_convergence_gate_is_epsilon_only() {
        let c = Convergence::fixed(1e-6);
        assert_eq!(c.gate(0), 0.0);
        assert_eq!(c.gate(99), 0.0);
        assert!(c.gate_at_floor(0));
        let c_eps = Convergence {
            vertex_epsilon: 1e-7,
            ..Convergence::fixed(1e-6)
        };
        assert_eq!(c_eps.gate(0), 1e-7);
        assert_eq!(c_eps.gate(12), 1e-7);
    }

    #[test]
    fn geometric_gate_maxes_epsilon_and_schedule() {
        let c = Convergence {
            schedule: ThresholdSchedule::Geometric {
                start: 8e-6,
                factor: 0.5,
                floor: 1e-7,
            },
            vertex_epsilon: 1e-6,
        };
        assert_eq!(c.gate(0), 8e-6);
        assert_eq!(c.gate(1), 4e-6);
        assert_eq!(c.gate(2), 2e-6);
        // Schedule dips below ε ⇒ ε takes over; that is the effective floor.
        assert_eq!(c.gate(3), 1e-6);
        assert_eq!(c.gate(50), 1e-6);
        assert!(!c.gate_at_floor(0));
        assert!(c.gate_at_floor(3));
    }

    #[test]
    fn fixed_should_stop_matches_paper_rule() {
        let c = Convergence::fixed(1e-6);
        // No moves → stop; sub-threshold gain → stop; else continue —
        // converged counts are ignored under Fixed.
        assert!(c.should_stop(0, 0.1, 0.2, 0, 5));
        assert!(c.should_stop(3, 0.1, 0.1 + 1e-9, 5, 0));
        assert!(c.should_stop(3, 0.2, 0.1, 5, 0)); // negative gain
        assert!(!c.should_stop(3, 0.1, 0.2, 5, 100));
    }

    #[test]
    fn geometric_should_stop_is_frontier_empty_at_floor() {
        let c = Convergence {
            schedule: ThresholdSchedule::Geometric {
                start: 4e-6,
                factor: 0.5,
                floor: 1e-6,
            },
            vertex_epsilon: 0.0,
        };
        // Moves pending pre-floor → never stop, whatever the gain did.
        assert!(!c.should_stop(0, 0.5, 0.5, 1, 0));
        assert!(!c.should_stop(0, 0.5, 0.4, 1, 0));
        // At the floor, the safety net: a non-improving iteration (zero or
        // negative net gain) with moves still pending stops the phase;
        // positive progress — however slow — does not.
        assert!(c.should_stop(50, 0.5, 0.5, 1, 0));
        assert!(c.should_stop(50, 0.5, 0.4, 1, 0));
        assert!(!c.should_stop(50, 0.5, 0.5 + 1e-12, 1, 0));
        assert!(!c.should_stop(50, 0.5, 0.6, 1, 0));
        // No moves, but suppressed vertices and a still-tightening gate →
        // continue (the tighter next iteration may admit them).
        assert!(!c.should_stop(0, 0.5, 0.5, 0, 10));
        // No moves and nothing suppressed → stop even before the floor.
        assert!(c.should_stop(0, 0.5, 0.5, 0, 0));
        // At the floor (k = 2: 4e-6·0.25 = 1e-6), suppressed or not → stop.
        assert!(c.gate_at_floor(2));
        assert!(c.should_stop(2, 0.5, 0.5, 0, 10));
        assert!(c.should_stop(9, 0.5, 0.5, 0, 3));
    }
}
