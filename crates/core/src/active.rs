//! Deterministic dirty-vertex work lists for activity-proportional sweeps.
//!
//! Every sweep variant historically re-examined all `n` vertices (and
//! re-gathered all `m` adjacency entries) each iteration, even in late
//! iterations where well under 1% of vertices still move. [`ActiveSet`] is
//! the pruning structure that makes iterations cost O(activity): iteration
//! `k` re-examines only the vertices whose *decision inputs changed* in
//! iteration `k−1` — a vertex is *active* iff it moved or one of its
//! neighbors moved (the dirty-vertex rule Staudt & Meyerhenke's PLM reports
//! order-of-magnitude iteration savings from). Everything starts active in
//! iteration 0.
//!
//! # Determinism contract
//!
//! The set is **rebuilt from the committed move list** at the end of each
//! iteration ([`ActiveSet::rebuild_from_moves`]), never mutated concurrently
//! by in-flight decisions, so its content is a pure function of the moves —
//! which every sweep commits in a schedule-independent order. Marking is set
//! union (order-insensitive) and the frontier is re-extracted by an
//! ascending bitset scan, so the frontier is an ascending, duplicate-free
//! vertex list that is bitwise identical for any thread count and any
//! permutation of the move list. Sweeps that iterate the frontier in order
//! therefore inherit the §5.4 stability guarantee unchanged.
//!
//! Pruning changes the *trajectory*, not the correctness, of a sweep: an
//! inactive vertex's neighborhood labels are unchanged, but global community
//! degrees `a_C` may still drift (a far-away vertex can join a neighboring
//! community), so a full sweep could occasionally re-decide a vertex the
//! active sweep skips. The differential tests pin `active` to `full` on
//! final quality (same Q within the paper's tolerance) and require bitwise
//! identity whenever the set is saturated.

use grappolo_graph::{CsrGraph, VertexId};

/// A dirty-vertex work list: a bitset for O(1) membership plus the
/// materialized ascending frontier the sweeps iterate.
#[derive(Clone, Debug, Default)]
pub struct ActiveSet {
    /// Number of vertices the set ranges over.
    n: usize,
    /// One bit per vertex; bit set ⇔ vertex is active.
    words: Vec<u64>,
    /// Active vertices in ascending id order (always consistent with
    /// `words`).
    frontier: Vec<VertexId>,
}

impl ActiveSet {
    /// Engagement rule for the deferred-pruning schedule: dirty-vertex
    /// tracking starts paying once an iteration commits at most `n / 8`
    /// moves. While more vertices than that move, the frontier (movers ∪
    /// their neighbors) stays near-saturated and a pruned iteration would
    /// re-examine almost everything anyway — so the sweeps run the plain
    /// full-iteration path (zero overhead, bitwise identical to
    /// [`crate::config::SweepMode::Full`]) until the move count first drops
    /// to this bound, and prune every iteration after that. The rule reads
    /// only the committed move count, so engagement — like everything else
    /// — is thread-count independent.
    ///
    /// Under a tightening threshold schedule
    /// ([`crate::schedule::Convergence`]) the sweeps additionally hold
    /// engagement until the per-vertex gate reaches its floor
    /// ([`crate::schedule::Convergence::gate_at_floor`]): a vertex gated at
    /// iteration `k` may clear iteration `k + 1`'s tighter gate without any
    /// neighbor moving, and only the full path re-examines it then — a
    /// pre-floor frontier would park it permanently. Gate-suppressed
    /// vertices commit no move, so with the floor reached they drop out of
    /// the rebuilt frontier exactly like ordinary stays, re-armed only when
    /// a neighbor moves.
    pub fn engages(n: usize, moves: usize) -> bool {
        moves <= n / 8
    }

    /// The saturated set over `n` vertices — every vertex active (the state
    /// of iteration 0, before any move information exists).
    pub fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Self {
            n,
            words,
            frontier: (0..n as VertexId).collect(),
        }
    }

    /// The empty set over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            words: vec![0; n.div_ceil(64)],
            frontier: Vec::new(),
        }
    }

    /// Number of active vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// True when no vertex is active — the phase has nothing left to
    /// examine and must terminate.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }

    /// True when *every* vertex is active (iteration 0, or a graph still in
    /// full churn). Saturated active sweeps make bitwise-identical decisions
    /// to a full sweep.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.frontier.len() == self.n
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(v < self.n);
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// The active vertices in ascending id order — the sweep/commit order.
    #[inline]
    pub fn frontier(&self) -> &[VertexId] {
        &self.frontier
    }

    /// Rebuilds the set from one iteration's committed move list: each
    /// mover and all of its neighbors become active; everything else goes
    /// inactive. `movers` may arrive in any order and with any grouping
    /// (e.g. concatenated per-color commits) — marking is a set union and
    /// the frontier is re-extracted by an ascending bitset scan, so the
    /// result is identical for any permutation. An empty move list empties
    /// the set (the phase is converged and must stop).
    pub fn rebuild_from_moves(&mut self, g: &CsrGraph, movers: &[VertexId]) {
        debug_assert_eq!(g.num_vertices(), self.n);
        self.words.fill(0);
        for &v in movers {
            self.mark(v);
            for &u in g.neighbor_ids(v) {
                self.mark(u);
            }
        }
        self.frontier.clear();
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                self.frontier.push((w * 64) as VertexId + b as VertexId);
                bits &= bits - 1;
            }
        }
    }

    #[inline]
    fn mark(&mut self, v: VertexId) {
        let v = v as usize;
        self.words[v / 64] |= 1u64 << (v % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::from_weighted_edges;

    fn path4() -> CsrGraph {
        from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn full_set_is_saturated_and_ascending() {
        for n in [0usize, 1, 63, 64, 65, 130] {
            let s = ActiveSet::full(n);
            assert_eq!(s.len(), n);
            assert!(s.is_saturated());
            assert_eq!(s.is_empty(), n == 0);
            let expect: Vec<VertexId> = (0..n as VertexId).collect();
            assert_eq!(s.frontier(), &expect[..]);
            for v in 0..n as VertexId {
                assert!(s.contains(v));
            }
        }
    }

    #[test]
    fn rebuild_marks_movers_and_neighbors_only() {
        let g = path4();
        let mut s = ActiveSet::full(4);
        s.rebuild_from_moves(&g, &[1]);
        // 1 moved: itself plus neighbors 0 and 2 are active; 3 is not.
        assert_eq!(s.frontier(), &[0, 1, 2]);
        assert!(s.contains(0) && s.contains(1) && s.contains(2));
        assert!(!s.contains(3));
        assert!(!s.is_saturated());
    }

    #[test]
    fn rebuild_is_order_independent() {
        let g = path4();
        let mut a = ActiveSet::empty(4);
        let mut b = ActiveSet::empty(4);
        a.rebuild_from_moves(&g, &[0, 3]);
        b.rebuild_from_moves(&g, &[3, 0]);
        assert_eq!(a.frontier(), b.frontier());
        assert_eq!(a.frontier(), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_move_list_empties_the_set() {
        let g = path4();
        let mut s = ActiveSet::full(4);
        s.rebuild_from_moves(&g, &[]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.frontier(), &[] as &[VertexId]);
    }

    #[test]
    fn isolated_vertices_never_activate() {
        // Vertex 3 is isolated: it cannot move and is nobody's neighbor, so
        // after the first rebuild it can never re-enter the set.
        let g = from_unweighted_edges(4, [(0, 1), (1, 2)]).unwrap();
        let mut s = ActiveSet::full(4);
        s.rebuild_from_moves(&g, &[0, 1, 2]);
        assert!(!s.contains(3));
        assert_eq!(s.frontier(), &[0, 1, 2]);
    }

    #[test]
    fn self_loop_only_vertex_activates_only_as_its_own_mover() {
        // A self-loop lists the vertex as its own neighbor, which is
        // harmless: marking v twice is idempotent. A self-loop-only vertex
        // never moves, so it never re-activates through anyone else.
        let g = from_weighted_edges(3, [(0, 0, 2.0), (1, 2, 1.0)]).unwrap();
        let mut s = ActiveSet::full(3);
        s.rebuild_from_moves(&g, &[1]);
        assert_eq!(s.frontier(), &[1, 2]);
        assert!(!s.contains(0));
        s.rebuild_from_moves(&g, &[0]);
        assert_eq!(s.frontier(), &[0]);
    }

    #[test]
    fn word_boundary_bits() {
        let n = 129;
        let edges: Vec<(u32, u32)> = vec![(63, 64), (64, 65), (127, 128)];
        let g = from_unweighted_edges(n, edges).unwrap();
        let mut s = ActiveSet::empty(n);
        s.rebuild_from_moves(&g, &[64, 128]);
        assert_eq!(s.frontier(), &[63, 64, 65, 127, 128]);
        assert!(!s.contains(62) && !s.contains(66) && !s.contains(126));
    }

    #[test]
    fn duplicate_movers_are_idempotent() {
        let g = path4();
        let mut s = ActiveSet::empty(4);
        s.rebuild_from_moves(&g, &[2, 2, 2]);
        assert_eq!(s.frontier(), &[1, 2, 3]);
    }
}
