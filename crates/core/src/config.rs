//! Algorithm configuration: which heuristics run, thresholds, and schedules.
//!
//! Defaults mirror the paper's experimental setup (§6.1): colored phases use
//! a net-modularity-gain threshold of 1e-2, the remaining phases 1e-6, and
//! coloring stops once the graph shrinks below 100 K vertices or the phase
//! gain drops below the colored threshold.

use crate::schedule::{Convergence, ScheduleMode, ThresholdSchedule};
use serde::{Deserialize, Serialize};

/// Which combination of the paper's heuristics to run — the four schemes of
/// the evaluation section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// The original serial Louvain method (§3) — the comparison baseline.
    Serial,
    /// Parallel with only the minimum-label heuristic ("baseline", §6.1).
    Baseline,
    /// Baseline plus vertex-following preprocessing ("baseline + VF").
    BaselineVf,
    /// Baseline plus VF plus coloring ("baseline + VF + Color") — the
    /// headline configuration.
    BaselineVfColor,
}

impl Scheme {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Serial,
        Scheme::Baseline,
        Scheme::BaselineVf,
        Scheme::BaselineVfColor,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Serial => "serial",
            Scheme::Baseline => "baseline",
            Scheme::BaselineVf => "baseline+VF",
            Scheme::BaselineVfColor => "baseline+VF+Color",
        }
    }

    /// Builds the matching [`LouvainConfig`].
    pub fn config(&self) -> LouvainConfig {
        match self {
            Scheme::Serial => LouvainConfig {
                parallel: false,
                use_vf: false,
                coloring: ColoringSchedule::Off,
                ..LouvainConfig::default()
            },
            Scheme::Baseline => LouvainConfig {
                parallel: true,
                use_vf: false,
                coloring: ColoringSchedule::Off,
                ..LouvainConfig::default()
            },
            Scheme::BaselineVf => LouvainConfig {
                parallel: true,
                use_vf: true,
                coloring: ColoringSchedule::Off,
                ..LouvainConfig::default()
            },
            Scheme::BaselineVfColor => LouvainConfig {
                parallel: true,
                use_vf: true,
                coloring: ColoringSchedule::MultiPhase,
                ..LouvainConfig::default()
            },
        }
    }
}

/// When the coloring preprocessing is applied (§6.3 compares the first two).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColoringSchedule {
    /// Never color (baseline / baseline+VF schemes).
    Off,
    /// Color only the first phase's input (§6.3's comparison arm).
    FirstPhaseOnly,
    /// Color every phase until the vertex-count cutoff or the phase-gain
    /// cutoff triggers (the paper's default scheme, §6.1).
    MultiPhase,
}

/// How the colored sweep accounts per-iteration modularity (PR 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColoredAccounting {
    /// Carry `Σ e_in` / `Σ a_C²` incrementally across color-batch barriers
    /// (O(#moves) per iteration, bitwise deterministic; default). The O(m)
    /// rescan survives as a `debug_assert` cross-check.
    Incremental,
    /// Recompute modularity by full O(m) rescan every iteration — the
    /// historical scheme, retained as the differential baseline
    /// (`grappolo_core::reference::parallel_phase_colored_rescan`).
    /// Decision-identical to `Incremental` on exact-weight graphs.
    Rescan,
}

/// Which vertices a sweep iteration re-examines (PR 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepMode {
    /// Every iteration scans all `n` vertices and gathers all `m` adjacency
    /// entries — the paper's scheme, and the decision-trajectory reference
    /// (default).
    Full,
    /// Iteration `k` re-examines only the **active** vertices: those that
    /// moved in iteration `k−1` or had a neighbor move
    /// ([`crate::active::ActiveSet`], rebuilt deterministically from the
    /// committed move list). Pruning is deferred — iterations run the plain
    /// full path (bitwise identical to `Full`) until the move count first
    /// drops to the [`crate::active::ActiveSet::engages`] bound, then
    /// become activity-proportional: late iterations where <1% of vertices
    /// move cost O(activity) instead of O(m), while staying bitwise
    /// deterministic across thread counts. Final quality matches `Full`
    /// within the paper's tolerance (property-tested).
    Active,
}

/// Whether a Leiden-style refinement pass runs between local-moving and the
/// inter-phase rebuild ([`crate::refine`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefineMode {
    /// No refinement — the paper's pipeline (default). Condensation may
    /// merge internally disconnected vertex sets (Louvain's known flaw).
    None,
    /// Split every community into its connected components (labels = the
    /// minimum member vertex, BFS over the stamped scratch) and then run a
    /// serial ascending-order crumb-absorption sweep over singleton
    /// communities before condensing. Guarantees every condensed community
    /// is internally connected and never lowers modularity; bitwise
    /// deterministic across thread counts.
    Leiden,
}

/// How the inter-phase graph rebuild aggregates community edges (§5.5 step
/// (iii) and the DESIGN.md ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RebuildStrategy {
    /// Per-community aggregation through the generation-stamped flat scratch
    /// (the same kernel as the local-moving sweep): O(deg) per community
    /// row, no global sort, no locks, deterministic (default; preserves the
    /// §5.4 stability guarantee bit-for-bit).
    StampAggregate,
    /// Global sort-based aggregation over all adjacency entries:
    /// deterministic and lock-free, but pays an O(E log E) sort.
    SortAggregate,
    /// Per-community `Mutex<FxHashMap>` accumulation — the paper's
    /// "one lock … two locks" implementation. Last-ulp float sums may vary
    /// between runs.
    LockMap,
}

/// How new community ids are assigned during rebuild (§5.5 step (i)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RenumberStrategy {
    /// Serial scan — what the paper ships ("currently implemented in
    /// serial").
    Serial,
    /// Parallel mark + prefix-sum — the paper's stated future work.
    ParallelPrefix,
}

/// Full algorithm configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LouvainConfig {
    /// Parallel sweep (Algorithm 1) vs the faithful serial method (§3).
    pub parallel: bool,
    /// Apply vertex-following preprocessing (§5.3).
    pub use_vf: bool,
    /// Recursive VF rounds (chain compression, §5.3's extension); 1 = the
    /// paper's single-pass variant.
    pub vf_rounds: usize,
    /// Coloring schedule.
    pub coloring: ColoringSchedule,
    /// Stop coloring once the phase input has fewer vertices than this
    /// (paper: 100 K).
    pub coloring_vertex_cutoff: usize,
    /// Stop coloring once the net modularity gain between phases drops below
    /// this (paper: 1e-2).
    pub coloring_phase_gain_cutoff: f64,
    /// Apply the balanced-coloring post-pass (§6.2 extension).
    pub balanced_coloring: bool,
    /// How colored phases account per-iteration modularity.
    pub colored_accounting: ColoredAccounting,
    /// Which vertices each sweep iteration re-examines (all sweeps: serial,
    /// unordered, colored).
    pub sweep_mode: SweepMode,
    /// Leiden-style refinement between local-moving and rebuild
    /// ([`crate::refine`]; applies to every phase, including the last).
    pub refine: RefineMode,
    /// Net modularity gain threshold θ within colored phases (paper: 1e-2;
    /// Table 5 sweeps this).
    pub colored_threshold: f64,
    /// Net modularity gain threshold θ for uncolored phases and overall
    /// termination (paper: 1e-6).
    pub final_threshold: f64,
    /// Within-phase threshold schedule ([`ScheduleMode::Fixed`] = the
    /// paper's aggregate stop at the phase θ; [`ScheduleMode::Geometric`] =
    /// a per-vertex gain gate tightening `schedule_start · schedule_factor^k`
    /// down to `schedule_floor`, with phase termination reworked to
    /// "frontier empty at the floor" — see [`crate::schedule`]).
    pub schedule: ScheduleMode,
    /// Geometric schedule: per-vertex gate for iteration 0. Gains live on
    /// the `1/m` scale, so use [`Self::with_geometric_schedule`] to derive
    /// a graph-appropriate value.
    pub schedule_start: f64,
    /// Geometric schedule: per-iteration tightening multiplier in (0, 1).
    pub schedule_factor: f64,
    /// Geometric schedule: tightest gate reached (> 0).
    pub schedule_floor: f64,
    /// Per-vertex convergence epsilon (all schedules): a vertex whose best
    /// available modularity gain is below this stays put and is treated as
    /// locally converged — it leaves the dirty-vertex frontier until a
    /// neighbor moves. 0 (default) disables the gate and reproduces the
    /// ungated trajectory bit-for-bit.
    pub vertex_epsilon: f64,
    /// Hard cap on phases (safety; the paper's runs need ≲ 10).
    pub max_phases: usize,
    /// Hard cap on iterations within one phase (safety).
    pub max_iterations_per_phase: usize,
    /// Rebuild edge-aggregation strategy.
    pub rebuild: RebuildStrategy,
    /// Rebuild renumbering strategy.
    pub renumber: RenumberStrategy,
    /// Resolution parameter γ (1.0 = the paper's Eq. 3/4).
    pub resolution: f64,
    /// Dynamic updates ([`crate::dynamic`]): when a batch's net edge changes
    /// exceed this fraction of the updated graph's edge count, incremental
    /// re-convergence falls back to a from-scratch
    /// [`crate::detect_communities`] run — a dense batch invalidates most of
    /// the carried state, so local re-optimization would cost full-sweep
    /// work for worse quality. Must be in [0, 1]; 1.0 disables the fallback.
    pub dynamic_fallback_fraction: f64,
    /// Component splitting (CLI: `--split-components`): label the weakly
    /// connected components first and run detection **per component**
    /// ([`crate::split`]), largest first, dispatching the small components
    /// across the resident pool as independent jobs. Modularity is still
    /// evaluated against the full graph's `2m` normalization, and the
    /// stitched labels are canonically renumbered, so on inputs whose
    /// components converge independently the result is identical to the
    /// unsplit run — and always bitwise stable across thread counts. A
    /// single-component graph falls through to the plain driver.
    pub split_components: bool,
    /// Components with at least this many vertices run one at a time with
    /// the full intra-run parallel pipeline; smaller components become
    /// pool-dispatched jobs whose inner regions execute inline on their
    /// worker ([`crate::split::SPLIT_SERIAL_THRESHOLD`] is the default).
    pub split_serial_threshold: usize,
    /// If set, run inside a dedicated rayon pool with this many threads;
    /// otherwise use the ambient pool.
    pub num_threads: Option<usize>,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            use_vf: true,
            vf_rounds: 1,
            coloring: ColoringSchedule::MultiPhase,
            coloring_vertex_cutoff: 100_000,
            coloring_phase_gain_cutoff: 1e-2,
            balanced_coloring: false,
            colored_accounting: ColoredAccounting::Incremental,
            sweep_mode: SweepMode::Full,
            refine: RefineMode::None,
            colored_threshold: 1e-2,
            final_threshold: 1e-6,
            schedule: ScheduleMode::Fixed,
            schedule_start: GEOMETRIC_START_EDGE_UNITS,
            schedule_factor: GEOMETRIC_FACTOR,
            schedule_floor: GEOMETRIC_FLOOR_EDGE_UNITS,
            vertex_epsilon: 0.0,
            max_phases: 64,
            max_iterations_per_phase: 10_000,
            rebuild: RebuildStrategy::StampAggregate,
            renumber: RenumberStrategy::Serial,
            resolution: 1.0,
            dynamic_fallback_fraction: DYNAMIC_FALLBACK_FRACTION,
            split_components: false,
            split_serial_threshold: crate::split::SPLIT_SERIAL_THRESHOLD,
            num_threads: None,
        }
    }
}

/// Geometric-schedule default: iteration-0 gate in **edge-weight units**
/// (multiples of `1/m`, the gain of moving a vertex along one unit-weight
/// edge). 4 ⇒ only moves worth ≳ 4 unit edges clear iteration 0.
pub const GEOMETRIC_START_EDGE_UNITS: f64 = 4.0;
/// Geometric-schedule default: per-iteration tightening multiplier.
pub const GEOMETRIC_FACTOR: f64 = 0.5;
/// Geometric-schedule default: floor gate in edge-weight units. 0.5 sits
/// below the single-unit-edge gain quantum, so at the floor only true
/// sub-edge noise stays suppressed.
pub const GEOMETRIC_FLOOR_EDGE_UNITS: f64 = 0.5;
/// Dynamic-update default: fall back to from-scratch detection once a batch
/// changes more than a quarter of the graph's edges.
pub const DYNAMIC_FALLBACK_FRACTION: f64 = 0.25;

impl LouvainConfig {
    /// Convenience: sets the thread count.
    pub fn with_threads(mut self, t: usize) -> Self {
        self.num_threads = Some(t);
        self
    }

    /// Selects the geometric schedule with the default edge-unit parameters
    /// scaled to a graph of total weight `m` (per-vertex gains live on the
    /// `1/m` scale): `start = 4/m`, `factor = 0.5`, `floor = 0.5/m`. `m ≤ 0`
    /// leaves the raw defaults in place (the degenerate-graph sweeps
    /// short-circuit before any gate is consulted).
    pub fn with_geometric_schedule(mut self, total_weight: f64) -> Self {
        self.schedule = ScheduleMode::Geometric;
        if total_weight > 0.0 {
            self.schedule_start = GEOMETRIC_START_EDGE_UNITS / total_weight;
            self.schedule_factor = GEOMETRIC_FACTOR;
            self.schedule_floor = GEOMETRIC_FLOOR_EDGE_UNITS / total_weight;
        }
        self
    }

    /// Resolves the config's schedule selection against one phase's
    /// aggregate threshold θ (`colored_threshold` or `final_threshold`) into
    /// the [`Convergence`] policy that phase's sweep runs under.
    pub fn convergence(&self, phase_threshold: f64) -> Convergence {
        let schedule = match self.schedule {
            ScheduleMode::Fixed => ThresholdSchedule::Fixed(phase_threshold),
            ScheduleMode::Geometric => ThresholdSchedule::Geometric {
                start: self.schedule_start,
                factor: self.schedule_factor,
                floor: self.schedule_floor,
            },
        };
        Convergence {
            schedule,
            vertex_epsilon: self.vertex_epsilon,
        }
    }

    /// Validates parameter sanity; returns the first problem found.
    // The negated comparisons are deliberate: `!(x > 0.0)` also rejects NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.final_threshold > 0.0) {
            return Err("final_threshold must be > 0".into());
        }
        if !(self.colored_threshold > 0.0) {
            return Err("colored_threshold must be > 0".into());
        }
        if self.max_phases == 0 || self.max_iterations_per_phase == 0 {
            return Err("max_phases and max_iterations_per_phase must be ≥ 1".into());
        }
        if !(self.resolution >= 0.0) {
            return Err("resolution must be ≥ 0".into());
        }
        if self.vf_rounds == 0 && self.use_vf {
            return Err("use_vf requires vf_rounds ≥ 1".into());
        }
        if self.colored_accounting == ColoredAccounting::Rescan
            && self.sweep_mode == SweepMode::Active
        {
            return Err(
                "rescan accounting is the full-sweep differential reference; \
                 combine it with sweep_mode = Full"
                    .into(),
            );
        }
        if !(self.dynamic_fallback_fraction >= 0.0 && self.dynamic_fallback_fraction <= 1.0) {
            return Err(format!(
                "dynamic_fallback_fraction must be in [0, 1], got {}",
                self.dynamic_fallback_fraction
            ));
        }
        if !(self.vertex_epsilon >= 0.0) {
            return Err(format!(
                "vertex_epsilon must be ≥ 0 (a per-vertex modularity-gain \
                 gate), got {}",
                self.vertex_epsilon
            ));
        }
        if self.schedule == ScheduleMode::Geometric {
            // Delegate the start/factor/floor sanity rules to the resolved
            // schedule so the error messages stay in one place.
            ThresholdSchedule::Geometric {
                start: self.schedule_start,
                factor: self.schedule_factor,
                floor: self.schedule_floor,
            }
            .validate()?;
        }
        if self.colored_accounting == ColoredAccounting::Rescan
            && (self.schedule != ScheduleMode::Fixed || self.vertex_epsilon > 0.0)
        {
            return Err("rescan accounting is the fixed-threshold differential \
                 reference; combine it with schedule = Fixed and \
                 vertex_epsilon = 0"
                .into());
        }
        if self.colored_accounting == ColoredAccounting::Rescan && self.refine == RefineMode::Leiden
        {
            return Err("rescan accounting is the historical differential \
                 reference and predates refinement; combine refine = Leiden \
                 with incremental accounting"
                .into());
        }
        Ok(())
    }
}

/// Within-phase schedule selection for the [`LouvainConfigBuilder`]. Unlike
/// the raw [`ScheduleMode`] + `schedule_*` fields, the geometric variant
/// carries the graph's total weight so the builder can derive the edge-unit
/// parameters itself — an unscaled geometric schedule is unconstructible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScheduleSpec {
    /// The paper's aggregate net-gain stop at the phase threshold.
    Fixed,
    /// Geometric per-vertex gate scaled to a graph of total weight `m`
    /// (`start = 4/m`, `factor = 0.5`, `floor = 0.5/m`). Build with
    /// [`geometric_for`].
    Geometric {
        /// The target graph's total edge weight (`CsrGraph::total_weight`).
        total_weight: f64,
    },
    /// Geometric gate with explicit parameters (already on the absolute
    /// modularity-gain scale, not edge units).
    GeometricRaw {
        /// Iteration-0 gate.
        start: f64,
        /// Per-iteration tightening multiplier in (0, 1).
        factor: f64,
        /// Tightest gate reached (> 0).
        floor: f64,
    },
}

/// The geometric schedule scaled for a graph of total weight `m` — sugar for
/// [`ScheduleSpec::Geometric`], reads well in builder chains:
/// `.schedule(geometric_for(g.total_weight()))`.
pub fn geometric_for(total_weight: f64) -> ScheduleSpec {
    ScheduleSpec::Geometric { total_weight }
}

/// Typed builder for [`LouvainConfig`]. Finishing with [`build`]
/// (`LouvainConfigBuilder::build`) runs [`LouvainConfig::validate`], so
/// invalid combinations (rescan×active, rescan×geometric, rescan×refine,
/// nonsensical schedule parameters) never escape as constructed configs.
///
/// ```
/// use grappolo_core::{geometric_for, LouvainConfig, RefineMode, SweepMode};
/// let config = LouvainConfig::builder()
///     .sweep(SweepMode::Active)
///     .schedule(geometric_for(40_000.0))
///     .refine(RefineMode::Leiden)
///     .build()
///     .unwrap();
/// assert_eq!(config.refine, RefineMode::Leiden);
/// ```
#[derive(Clone, Debug)]
pub struct LouvainConfigBuilder {
    config: LouvainConfig,
}

impl LouvainConfigBuilder {
    /// Starts from an arbitrary base config (e.g. a [`Scheme`] preset).
    pub fn from_base(config: LouvainConfig) -> Self {
        Self { config }
    }

    /// Sweep mode (full vs dirty-vertex work lists).
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep_mode = sweep;
        self
    }

    /// Within-phase threshold schedule.
    pub fn schedule(mut self, spec: ScheduleSpec) -> Self {
        match spec {
            ScheduleSpec::Fixed => self.config.schedule = ScheduleMode::Fixed,
            ScheduleSpec::Geometric { total_weight } => {
                self.config = self.config.with_geometric_schedule(total_weight);
            }
            ScheduleSpec::GeometricRaw {
                start,
                factor,
                floor,
            } => {
                self.config.schedule = ScheduleMode::Geometric;
                self.config.schedule_start = start;
                self.config.schedule_factor = factor;
                self.config.schedule_floor = floor;
            }
        }
        self
    }

    /// Refinement mode (Leiden-style split + crumb absorption vs none).
    pub fn refine(mut self, refine: RefineMode) -> Self {
        self.config.refine = refine;
        self
    }

    /// Colored-sweep accounting mode.
    pub fn accounting(mut self, accounting: ColoredAccounting) -> Self {
        self.config.colored_accounting = accounting;
        self
    }

    /// Coloring schedule.
    pub fn coloring(mut self, coloring: ColoringSchedule) -> Self {
        self.config.coloring = coloring;
        self
    }

    /// Parallel vs serial sweep.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.config.parallel = parallel;
        self
    }

    /// Vertex-following preprocessing.
    pub fn vertex_following(mut self, use_vf: bool) -> Self {
        self.config.use_vf = use_vf;
        self
    }

    /// Resolution parameter γ.
    pub fn resolution(mut self, gamma: f64) -> Self {
        self.config.resolution = gamma;
        self
    }

    /// Per-vertex convergence epsilon.
    pub fn vertex_epsilon(mut self, eps: f64) -> Self {
        self.config.vertex_epsilon = eps;
        self
    }

    /// Dedicated-pool thread count (None = ambient pool).
    pub fn threads(mut self, t: Option<usize>) -> Self {
        self.config.num_threads = t;
        self
    }

    /// Dynamic-update fallback fraction (see
    /// [`LouvainConfig::dynamic_fallback_fraction`]).
    pub fn dynamic_fallback(mut self, fraction: f64) -> Self {
        self.config.dynamic_fallback_fraction = fraction;
        self
    }

    /// Component splitting (see [`LouvainConfig::split_components`]).
    pub fn split_components(mut self, split: bool) -> Self {
        self.config.split_components = split;
        self
    }

    /// Validates and returns the finished config.
    pub fn build(self) -> Result<LouvainConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl LouvainConfig {
    /// Starts a [`LouvainConfigBuilder`] from the default config.
    pub fn builder() -> LouvainConfigBuilder {
        LouvainConfigBuilder::from_base(LouvainConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_configs_match_heuristic_sets() {
        assert!(!Scheme::Serial.config().parallel);
        let b = Scheme::Baseline.config();
        assert!(b.parallel && !b.use_vf && b.coloring == ColoringSchedule::Off);
        let v = Scheme::BaselineVf.config();
        assert!(v.parallel && v.use_vf && v.coloring == ColoringSchedule::Off);
        let c = Scheme::BaselineVfColor.config();
        assert!(c.parallel && c.use_vf && c.coloring == ColoringSchedule::MultiPhase);
    }

    #[test]
    fn default_sweep_mode_is_the_paper_trajectory() {
        // `Full` is the reference: every scheme config walks the paper's
        // full-sweep trajectory unless the caller opts into pruning.
        assert_eq!(LouvainConfig::default().sweep_mode, SweepMode::Full);
        for scheme in Scheme::ALL {
            assert_eq!(scheme.config().sweep_mode, SweepMode::Full, "{scheme:?}");
        }
    }

    #[test]
    fn rescan_accounting_rejects_active_sweeps() {
        let c = LouvainConfig {
            colored_accounting: ColoredAccounting::Rescan,
            sweep_mode: SweepMode::Active,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let ok = LouvainConfig {
            colored_accounting: ColoredAccounting::Rescan,
            sweep_mode: SweepMode::Full,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        let ok2 = LouvainConfig {
            sweep_mode: SweepMode::Active,
            ..Default::default()
        };
        assert!(ok2.validate().is_ok());
    }

    #[test]
    fn default_thresholds_match_paper() {
        let c = LouvainConfig::default();
        assert_eq!(c.colored_accounting, ColoredAccounting::Incremental);
        assert_eq!(c.colored_threshold, 1e-2);
        assert_eq!(c.final_threshold, 1e-6);
        assert_eq!(c.coloring_vertex_cutoff, 100_000);
        assert_eq!(c.coloring_phase_gain_cutoff, 1e-2);
    }

    #[test]
    fn validation_catches_bad_params() {
        let c = LouvainConfig::default();
        assert!(c.validate().is_ok());
        let c1 = LouvainConfig {
            final_threshold: 0.0,
            ..Default::default()
        };
        assert!(c1.validate().is_err());
        let c2 = LouvainConfig {
            max_phases: 0,
            ..Default::default()
        };
        assert!(c2.validate().is_err());
        let c3 = LouvainConfig {
            resolution: -1.0,
            ..Default::default()
        };
        assert!(c3.validate().is_err());
        let mut c4 = LouvainConfig {
            use_vf: true,
            vf_rounds: 0,
            ..Default::default()
        };
        assert!(c4.validate().is_err());
        c4.vf_rounds = 1;
        assert!(c4.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsensical_schedules() {
        // Growing or non-tightening factor.
        for factor in [1.0, 1.5, 0.0, -0.5, f64::NAN] {
            let c = LouvainConfig {
                schedule: ScheduleMode::Geometric,
                schedule_factor: factor,
                ..Default::default()
            };
            let err = c.validate().unwrap_err();
            assert!(err.contains("factor"), "factor={factor}: {err}");
        }
        // Floor above start (or non-positive).
        let c = LouvainConfig {
            schedule: ScheduleMode::Geometric,
            schedule_start: 1e-8,
            schedule_floor: 1e-4,
            ..Default::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.contains("floor") && err.contains("start"), "{err}");
        let c0 = LouvainConfig {
            schedule: ScheduleMode::Geometric,
            schedule_floor: 0.0,
            ..Default::default()
        };
        assert!(c0.validate().unwrap_err().contains("floor"));
        // Negative (or NaN) per-vertex epsilon.
        for eps in [-1e-9, f64::NAN] {
            let c = LouvainConfig {
                vertex_epsilon: eps,
                ..Default::default()
            };
            let err = c.validate().unwrap_err();
            assert!(err.contains("vertex_epsilon"), "eps={eps}: {err}");
        }
        // The same parameters are fine under Fixed (they are simply unused).
        let fixed = LouvainConfig {
            schedule: ScheduleMode::Fixed,
            schedule_factor: 2.0,
            ..Default::default()
        };
        assert!(fixed.validate().is_ok());
    }

    #[test]
    fn rescan_accounting_rejects_scheduled_runs() {
        // The rescan reference is decision-identical only to the ungated
        // fixed-threshold trajectory.
        let geo = LouvainConfig {
            colored_accounting: ColoredAccounting::Rescan,
            ..LouvainConfig::default().with_geometric_schedule(1000.0)
        };
        assert!(geo.validate().is_err());
        let eps = LouvainConfig {
            colored_accounting: ColoredAccounting::Rescan,
            vertex_epsilon: 1e-9,
            ..Default::default()
        };
        assert!(eps.validate().is_err());
    }

    #[test]
    fn geometric_helper_scales_to_graph_weight() {
        let c = LouvainConfig::default().with_geometric_schedule(2_000.0);
        assert_eq!(c.schedule, ScheduleMode::Geometric);
        assert_eq!(c.schedule_start, GEOMETRIC_START_EDGE_UNITS / 2_000.0);
        assert_eq!(c.schedule_floor, GEOMETRIC_FLOOR_EDGE_UNITS / 2_000.0);
        assert!(c.validate().is_ok());
        // Resolution: Fixed picks up the phase θ, Geometric its own params.
        let conv = c.convergence(1e-6);
        assert_eq!(
            conv.schedule,
            ThresholdSchedule::Geometric {
                start: c.schedule_start,
                factor: c.schedule_factor,
                floor: c.schedule_floor,
            }
        );
        let fixed_conv = LouvainConfig::default().convergence(1e-2);
        assert_eq!(fixed_conv, Convergence::fixed(1e-2));
    }

    #[test]
    fn builder_resolves_specs_and_validates() {
        let c = LouvainConfig::builder()
            .sweep(SweepMode::Active)
            .schedule(geometric_for(2_000.0))
            .refine(RefineMode::Leiden)
            .build()
            .unwrap();
        assert_eq!(c.sweep_mode, SweepMode::Active);
        assert_eq!(c.refine, RefineMode::Leiden);
        assert_eq!(c.schedule, ScheduleMode::Geometric);
        assert_eq!(c.schedule_start, GEOMETRIC_START_EDGE_UNITS / 2_000.0);
        // Invalid combinations never escape the builder.
        assert!(LouvainConfig::builder()
            .accounting(ColoredAccounting::Rescan)
            .sweep(SweepMode::Active)
            .build()
            .is_err());
        assert!(LouvainConfig::builder()
            .accounting(ColoredAccounting::Rescan)
            .schedule(geometric_for(100.0))
            .build()
            .is_err());
        assert!(LouvainConfig::builder()
            .schedule(ScheduleSpec::GeometricRaw {
                start: 1e-4,
                factor: 1.5,
                floor: 1e-6,
            })
            .build()
            .is_err());
    }

    #[test]
    fn refine_rejects_rescan_accounting() {
        let c = LouvainConfig {
            colored_accounting: ColoredAccounting::Rescan,
            refine: RefineMode::Leiden,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        assert!(LouvainConfig::builder()
            .accounting(ColoredAccounting::Rescan)
            .refine(RefineMode::Leiden)
            .build()
            .is_err());
        // Default is refine-off, and Leiden with incremental accounting is
        // fine everywhere else.
        assert_eq!(LouvainConfig::default().refine, RefineMode::None);
        assert!(LouvainConfig::builder()
            .refine(RefineMode::Leiden)
            .build()
            .is_ok());
    }

    #[test]
    fn dynamic_fallback_fraction_is_validated() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = LouvainConfig {
                dynamic_fallback_fraction: bad,
                ..Default::default()
            };
            let err = c.validate().unwrap_err();
            assert!(err.contains("dynamic_fallback_fraction"), "{bad}: {err}");
        }
        let c = LouvainConfig::builder()
            .dynamic_fallback(1.0)
            .build()
            .unwrap();
        assert_eq!(c.dynamic_fallback_fraction, 1.0);
        assert_eq!(
            LouvainConfig::default().dynamic_fallback_fraction,
            DYNAMIC_FALLBACK_FRACTION
        );
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::BaselineVfColor.name(), "baseline+VF+Color");
        assert_eq!(Scheme::ALL.len(), 4);
    }
}
