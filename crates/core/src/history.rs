//! Execution traces: per-iteration modularity evolution and per-phase timing
//! breakdowns.
//!
//! These records are the raw material for the paper's evaluation artifacts:
//! * Figs. 3–6 plot "the evolution of modularity from the first iteration of
//!   the first phase to the last iteration of the last phase";
//! * Fig. 8 breaks total run-time into coloring / rebuild (incl. VF) /
//!   clustering; Fig. 9 isolates rebuild speedup;
//! * Tables 4–5 report total iteration counts.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One iteration's record within a phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Phase index (0-based).
    pub phase: usize,
    /// Iteration index within the phase (0-based).
    pub iteration: usize,
    /// Modularity after the iteration, measured on the phase's graph.
    pub modularity: f64,
    /// Number of vertices that changed community this iteration.
    pub moves: usize,
}

/// Wall-clock breakdown of one phase (Fig. 8's categories).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Coloring preprocessing time (zero when coloring is off).
    pub coloring: Duration,
    /// Clustering time (the iteration loop).
    pub clustering: Duration,
    /// Graph rebuild time; for phase 0 this includes VF preprocessing, the
    /// paper's accounting ("time to rebuild the graph between phases (VF
    /// cost is included here)").
    pub rebuild: Duration,
}

impl PhaseTimings {
    /// Total of all categories.
    pub fn total(&self) -> Duration {
        self.coloring + self.clustering + self.rebuild
    }
}

/// Summary of one phase.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Phase index (0-based).
    pub phase: usize,
    /// Vertices in this phase's input graph.
    pub num_vertices: usize,
    /// Edges in this phase's input graph.
    pub num_edges: usize,
    /// Whether the coloring heuristic was active this phase.
    pub colored: bool,
    /// Number of colors used (0 when not colored).
    pub num_colors: usize,
    /// Iterations executed this phase.
    pub iterations: usize,
    /// Modularity at phase entry (singleton assignment on the phase graph).
    pub start_modularity: f64,
    /// Modularity at phase exit.
    pub end_modularity: f64,
    /// Wall-clock breakdown.
    pub timings: PhaseTimings,
}

/// Complete trace of one community-detection run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunTrace {
    /// Per-iteration modularity curve across all phases.
    pub iterations: Vec<IterationRecord>,
    /// Per-phase summaries.
    pub phases: Vec<PhaseRecord>,
    /// VF preprocessing time (phase 0 only; also folded into phase 0's
    /// rebuild per the paper's accounting).
    pub vf_time: Duration,
    /// Vertices removed by VF preprocessing.
    pub vf_merged: usize,
    /// End-to-end wall-clock (everything, including trace bookkeeping).
    pub total_time: Duration,
}

impl RunTrace {
    /// Total iterations across phases — the paper's "#iter" columns
    /// (Tables 4, 5).
    pub fn total_iterations(&self) -> usize {
        self.phases.iter().map(|p| p.iterations).sum()
    }

    /// Number of phases executed.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Aggregate timing breakdown across phases (Fig. 8 input).
    pub fn timing_breakdown(&self) -> PhaseTimings {
        let mut t = PhaseTimings::default();
        for p in &self.phases {
            t.coloring += p.timings.coloring;
            t.clustering += p.timings.clustering;
            t.rebuild += p.timings.rebuild;
        }
        t
    }

    /// Total rebuild time (Fig. 9's numerator).
    pub fn rebuild_time(&self) -> Duration {
        self.phases.iter().map(|p| p.timings.rebuild).sum()
    }

    /// The modularity evolution as `(global_iteration, modularity)` pairs
    /// (Figs. 3–6's x/y series).
    pub fn modularity_curve(&self) -> Vec<(usize, f64)> {
        self.iterations
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.modularity))
            .collect()
    }

    /// Checks the monotonicity property the paper relies on for serial runs
    /// (§3: "modularity is a monotonically increasing function across
    /// iterations of a phase"); returns the first violation.
    pub fn check_monotone_within_phases(&self, tol: f64) -> Result<(), (usize, usize, f64)> {
        for pair in self.iterations.windows(2) {
            if pair[0].phase == pair[1].phase {
                let drop = pair[0].modularity - pair[1].modularity;
                if drop > tol {
                    return Err((pair[1].phase, pair[1].iteration, drop));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_trace() -> RunTrace {
        RunTrace {
            iterations: vec![
                IterationRecord {
                    phase: 0,
                    iteration: 0,
                    modularity: 0.1,
                    moves: 10,
                },
                IterationRecord {
                    phase: 0,
                    iteration: 1,
                    modularity: 0.3,
                    moves: 5,
                },
                IterationRecord {
                    phase: 1,
                    iteration: 0,
                    modularity: 0.5,
                    moves: 2,
                },
            ],
            phases: vec![
                PhaseRecord {
                    phase: 0,
                    num_vertices: 100,
                    num_edges: 500,
                    colored: true,
                    num_colors: 7,
                    iterations: 2,
                    start_modularity: -0.1,
                    end_modularity: 0.3,
                    timings: PhaseTimings {
                        coloring: Duration::from_millis(3),
                        clustering: Duration::from_millis(20),
                        rebuild: Duration::from_millis(5),
                    },
                },
                PhaseRecord {
                    phase: 1,
                    num_vertices: 10,
                    num_edges: 30,
                    colored: false,
                    num_colors: 0,
                    iterations: 1,
                    start_modularity: 0.3,
                    end_modularity: 0.5,
                    timings: PhaseTimings {
                        coloring: Duration::ZERO,
                        clustering: Duration::from_millis(2),
                        rebuild: Duration::from_millis(1),
                    },
                },
            ],
            ..Default::default()
        }
    }

    #[test]
    fn totals() {
        let t = mk_trace();
        assert_eq!(t.total_iterations(), 3);
        assert_eq!(t.num_phases(), 2);
        assert_eq!(t.rebuild_time(), Duration::from_millis(6));
        let b = t.timing_breakdown();
        assert_eq!(b.coloring, Duration::from_millis(3));
        assert_eq!(b.clustering, Duration::from_millis(22));
        assert_eq!(b.total(), Duration::from_millis(31));
    }

    #[test]
    fn curve_is_global_sequence() {
        let t = mk_trace();
        let c = t.modularity_curve();
        assert_eq!(c, vec![(0, 0.1), (1, 0.3), (2, 0.5)]);
    }

    #[test]
    fn monotone_check_passes_and_fails() {
        let mut t = mk_trace();
        assert!(t.check_monotone_within_phases(1e-12).is_ok());
        t.iterations[1].modularity = 0.05; // drop within phase 0
        let err = t.check_monotone_within_phases(1e-12).unwrap_err();
        assert_eq!(err.0, 0);
        assert_eq!(err.1, 1);
        // Drops across phase boundaries are not violations.
        let mut t2 = mk_trace();
        t2.iterations[2].modularity = 0.0;
        assert!(t2.check_monotone_within_phases(1e-12).is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let t = mk_trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: RunTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_iterations(), t.total_iterations());
        assert_eq!(back.phases[0].num_colors, 7);
        assert_eq!(back.iterations, t.iterations);
    }
}
