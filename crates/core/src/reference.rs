//! Reference (pre-optimization) kernels, kept for property tests and as the
//! benchmark baseline for the flat timestamped neighbor scan.
//!
//! [`gather_sorted`] is the historical sort-based neighbor-community
//! aggregation — O(deg·log deg) per vertex — and
//! [`parallel_phase_unordered_sortbased`] is the historical phase loop that
//! rebuilds `community_degrees` (O(n)) and recomputes full-graph modularity
//! (O(m)) every iteration. On integer-weight graphs both implementations
//! make bitwise-identical decisions to the optimized path (all sums are
//! exact), which is what the equivalence tests in `tests/properties.rs`
//! assert; the optimized path's advantage is purely time.

use crate::modularity::{
    best_move, community_degrees, community_sizes, modularity_with_resolution, Community,
    MoveContext,
};
use crate::phase::{should_stop, singlet_veto, PhaseOutcome};
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// The historical sort-based gather: collect `(community, weight)` per
/// neighbor, sort by label, merge duplicates. Entries come out sorted by
/// ascending community label.
pub fn gather_sorted(
    g: &CsrGraph,
    assignment: &[Community],
    v: VertexId,
    entries: &mut Vec<(Community, f64)>,
) {
    entries.clear();
    for (u, w) in g.neighbors(v) {
        if u == v {
            continue;
        }
        entries.push((assignment[u as usize], w));
    }
    entries.sort_unstable_by_key(|&(c, _)| c);
    let mut out = 0usize;
    for i in 0..entries.len() {
        if out > 0 && entries[out - 1].0 == entries[i].0 {
            entries[out - 1].1 += entries[i].1;
        } else {
            entries[out] = entries[i];
            out += 1;
        }
    }
    entries.truncate(out);
}

/// The historical unordered phase: sort-based gathers, an O(n)
/// `community_degrees` rebuild and an O(m) modularity recomputation every
/// iteration. Semantics match [`crate::parallel::parallel_phase_unordered`];
/// only the constants differ.
pub fn parallel_phase_unordered_sortbased(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    let mut c_prev: Vec<Community> = (0..n as Community).collect();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome {
            assignment: c_prev,
            iterations: Vec::new(),
            final_modularity: 0.0,
        };
    }

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut q_prev = modularity_with_resolution(g, &c_prev, resolution);

    for _iter in 0..max_iterations {
        let a = community_degrees(g, &c_prev);
        let sizes = community_sizes(&c_prev);

        let c_curr: Vec<Community> = (0..n as VertexId)
            .into_par_iter()
            .map_init(Vec::new, |entries, v| {
                let cur = c_prev[v as usize];
                gather_sorted(g, &c_prev, v, entries);
                if entries.is_empty() {
                    return cur;
                }
                let ctx = MoveContext {
                    current: cur,
                    k: g.weighted_degree(v),
                    m,
                    a_current: a[cur as usize],
                    gamma: resolution,
                };
                let decision = best_move(&ctx, entries, |c| a[c as usize]);
                if decision.target != cur
                    && singlet_veto(cur, decision.target, |c| sizes[c as usize])
                {
                    return cur;
                }
                decision.target
            })
            .collect();

        let moves = c_prev
            .par_iter()
            .zip(c_curr.par_iter())
            .filter(|(a, b)| a != b)
            .count();
        let q_curr = modularity_with_resolution(g, &c_curr, resolution);
        iterations.push((q_curr, moves));
        c_prev = c_curr;
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        final_modularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::NeighborScratch;
    use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};

    #[test]
    fn sorted_gather_agrees_with_flat_gather() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig::default());
        let mut sorted = Vec::new();
        let mut flat = NeighborScratch::default();
        for v in 0..g.num_vertices() as VertexId {
            gather_sorted(&g, &truth, v, &mut sorted);
            flat.gather(&g, &truth, v);
            let mut flat_entries = flat.entries.clone();
            flat_entries.sort_unstable_by_key(|&(c, _)| c);
            assert_eq!(sorted, flat_entries, "vertex {v}");
        }
    }

    #[test]
    fn sortbased_phase_recovers_cliques() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        let out = parallel_phase_unordered_sortbased(&g, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7);
    }
}
