//! Reference (pre-optimization) kernels and the **deprecated historical
//! entry points**, kept for property tests and as benchmark baselines.
//!
//! [`gather_sorted`] is the historical sort-based neighbor-community
//! aggregation — O(deg·log deg) per vertex — and
//! [`parallel_phase_unordered_sortbased`] is the historical phase loop that
//! rebuilds `community_degrees` (O(n)) and recomputes full-graph modularity
//! (O(m)) every iteration. [`colored_rescan_impl`] is the colored analogue
//! retained by PR 3: the same deterministic batch sweep as the production
//! path, but with the historical per-iteration O(m) modularity rescan
//! instead of incremental accounting. On integer-weight graphs these
//! implementations make bitwise-identical decisions to the optimized paths
//! (all sums are exact), which is what the equivalence tests in
//! `tests/properties.rs` assert; the optimized paths' advantage is purely
//! time.
//!
//! The `parallel_phase_*` / `serial_phase*` free functions at the bottom are
//! the pre-PhaseDriver entry-point ladder, preserved as thin `#[deprecated]`
//! wrappers over the crate-private implementations so downstream callers
//! keep compiling while they migrate to [`crate::PhaseDriver`].

use crate::config::{RenumberStrategy, SweepMode};
use crate::modularity::{
    best_move, community_degrees, community_sizes, modularity_with_resolution, Community,
    IndependentMove, ModularityTracker, MoveContext, ScratchPool,
};
use crate::parallel::{colored_collect_moves, colored_decide_batch};
use crate::phase::{should_stop, singlet_veto, IterationStats, PhaseOutcome};
use crate::rebuild::{
    condense_stamped_flat, condense_stamped_rows, group_by_row, renumber_communities,
};
use crate::schedule::Convergence;
use grappolo_coloring::ColorBatches;
use grappolo_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// The historical sort-based gather: collect `(community, weight)` per
/// neighbor, sort by label, merge duplicates. Entries come out sorted by
/// ascending community label.
pub fn gather_sorted(
    g: &CsrGraph,
    assignment: &[Community],
    v: VertexId,
    entries: &mut Vec<(Community, f64)>,
) {
    entries.clear();
    for (u, w) in g.neighbors(v) {
        if u == v {
            continue;
        }
        entries.push((assignment[u as usize], w));
    }
    entries.sort_unstable_by_key(|&(c, _)| c);
    let mut out = 0usize;
    for i in 0..entries.len() {
        if out > 0 && entries[out - 1].0 == entries[i].0 {
            entries[out - 1].1 += entries[i].1;
        } else {
            entries[out] = entries[i];
            out += 1;
        }
    }
    entries.truncate(out);
}

/// The historical unordered phase: sort-based gathers, an O(n)
/// `community_degrees` rebuild and an O(m) modularity recomputation every
/// iteration. Semantics match the production unordered sweep (now behind
/// [`crate::PhaseDriver::run`]); only the constants differ.
#[deprecated(note = "historical baseline; run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_unordered_sortbased(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome::trivial(n);
    }
    let mut c_prev: Vec<Community> = (0..n as Community).collect();

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = modularity_with_resolution(g, &c_prev, resolution);

    for _iter in 0..max_iterations {
        let a = community_degrees(g, &c_prev);
        let sizes = community_sizes(&c_prev);

        let c_curr: Vec<Community> = (0..n as VertexId)
            .into_par_iter()
            .map_init(Vec::new, |entries, v| {
                let cur = c_prev[v as usize];
                gather_sorted(g, &c_prev, v, entries);
                if entries.is_empty() {
                    return cur;
                }
                let ctx = MoveContext {
                    current: cur,
                    k: g.weighted_degree(v),
                    m,
                    a_current: a[cur as usize],
                    gamma: resolution,
                };
                let decision = best_move(&ctx, entries, |c| a[c as usize]);
                if decision.target != cur
                    && singlet_veto(cur, decision.target, |c| sizes[c as usize])
                {
                    return cur;
                }
                decision.target
            })
            .collect();

        let moves = c_prev
            .par_iter()
            .zip(c_curr.par_iter())
            .filter(|(a, b)| a != b)
            .count();
        let q_curr = modularity_with_resolution(g, &c_curr, resolution);
        iterations.push((q_curr, moves));
        stats.push(IterationStats {
            gate: 0.0,
            frontier: n,
            converged: 0,
        });
        c_prev = c_curr;
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment: c_prev,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

/// The historical **recompute** variant of the colored phase: identical
/// decisions and barrier commits to the production colored sweep (same
/// shared kernels, same ascending commit order), but the per-iteration
/// modularity comes from a full O(m) + O(n) rescan — a fresh
/// [`ModularityTracker::new`] every iteration — instead of the carried
/// incremental state. This is the differential baseline: on exact-weight
/// graphs its assignments, move counts, and per-iteration modularities are
/// bitwise identical to the incremental path (both evaluate
/// `e_in/2m − γ·Σa²/(2m)²` over exactly representable sums), so any
/// divergence indicts the incremental accounting. The benches measure the
/// rescan's per-iteration overhead — the cost PR 3 removed from the hot
/// path. Reached through [`crate::PhaseDriver::run_colored`] under
/// [`crate::ColoredAccounting::Rescan`].
pub(crate) fn colored_rescan_impl(
    g: &CsrGraph,
    batches: &ColorBatches,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome::trivial(n);
    }
    let mut assignment: Vec<Community> = (0..n as Community).collect();

    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = ModularityTracker::new(g, &assignment, &a, resolution).modularity();
    let mut moved: Vec<IndependentMove> = Vec::new();
    let mut movers: Vec<VertexId> = Vec::new();
    let scratches = ScratchPool::global();

    for _iter in 0..max_iterations {
        let mut moves = 0usize;
        for batch in batches.iter() {
            if batch.is_empty() {
                continue;
            }
            let decisions = colored_decide_batch(
                g,
                &assignment,
                &a,
                &sizes,
                m,
                resolution,
                0.0,
                batch,
                scratches,
            );
            colored_collect_moves(
                g,
                batch,
                &decisions,
                0.0,
                &mut assignment,
                &mut moved,
                &mut movers,
            );
            // Same arithmetic, same order as ModularityTracker's commit, so
            // the maintained `a` evolves bitwise identically — only the
            // e_in/null_sum bookkeeping is (deliberately) absent here.
            for mv in &moved {
                a[mv.from as usize] -= mv.k;
                a[mv.to as usize] += mv.k;
                sizes[mv.from as usize] -= 1;
                sizes[mv.to as usize] += 1;
            }
            moves += moved.len();
        }

        // The full rescan the incremental path eliminated: O(n) community-
        // degree scatter (the historical recompute went through
        // `modularity_with_resolution`, which rebuilds it), O(m) intra-weight
        // scan, and O(n) Σ a² reduction — every iteration. On exact-weight
        // graphs `a_rescan` is bitwise equal to the maintained `a`, so the
        // reported modularity is bitwise comparable to the tracker's.
        let a_rescan = community_degrees(g, &assignment);
        let q_curr = ModularityTracker::new(g, &assignment, &a_rescan, resolution).modularity();
        iterations.push((q_curr, moves));
        stats.push(IterationStats {
            gate: 0.0,
            frontier: n,
            converged: 0,
        });
        if should_stop(q_prev, q_curr, moves, threshold) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

/// The historical **rows-based** stamped rebuild assembly: per-community
/// `Vec<(Community, f64)>` rows collected in parallel, mirrored, then
/// copied into CSR (`rows_to_csr`). The production path now assembles
/// directly into preallocated `offsets`/`targets`/`weights` arrays
/// (two-pass count + scatter, [`crate::rebuild`]); this reference produces
/// bitwise-identical graphs (property-tested) and is the `rebuild` bench's
/// `assembly_rows` baseline.
pub fn rebuild_stamp_rows_reference(g: &CsrGraph, assignment: &[Community]) -> CsrGraph {
    assert_eq!(assignment.len(), g.num_vertices());
    let (renumber, num_communities) = renumber_communities(assignment, RenumberStrategy::Serial);
    let row_of = |u: usize| renumber[assignment[u] as usize];
    let (offsets, members) = group_by_row(assignment.len(), num_communities, row_of);
    condense_stamped_rows(g, num_communities, &offsets, &members, row_of)
}

/// The flat two-pass stamped rebuild assembly (count pass → prefix-sum
/// offsets → parallel scatter into preallocated `targets`/`weights`),
/// forced regardless of the production path's size-adaptive dispatch —
/// the `rebuild` bench's `assembly_flat` arm and the other half of the
/// assembly differential tests.
pub fn rebuild_stamp_flat_assembly(g: &CsrGraph, assignment: &[Community]) -> CsrGraph {
    assert_eq!(assignment.len(), g.num_vertices());
    let (renumber, num_communities) = renumber_communities(assignment, RenumberStrategy::Serial);
    let row_of = |u: usize| renumber[assignment[u] as usize];
    let (offsets, members) = group_by_row(assignment.len(), num_communities, row_of);
    condense_stamped_flat(g, num_communities, &offsets, &members, row_of)
}

// ---------------------------------------------------------------------------
// Deprecated historical entry points.
//
// Five PRs grew a ladder of free-function phase entries (`parallel_phase_*`,
// `serial_phase*`, `*_sweep`, `*_scheduled`, `*_rescan`); the PhaseDriver
// redesign collapsed them into one configured runner. These wrappers keep the
// old signatures compiling — bitwise-identically, they forward to the same
// crate-private implementations the driver runs — while callers migrate.
// ---------------------------------------------------------------------------

/// Historical entry: one unordered parallel phase, full sweep, fixed
/// threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_unordered(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::unordered_scheduled_impl(
        g,
        SweepMode::Full,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one unordered parallel phase with an explicit sweep
/// mode, fixed threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_unordered_sweep(
    g: &CsrGraph,
    sweep: SweepMode,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::unordered_scheduled_impl(
        g,
        sweep,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one unordered parallel phase under an explicit
/// [`Convergence`] policy.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_unordered_scheduled(
    g: &CsrGraph,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::unordered_scheduled_impl(g, sweep, conv, max_iterations, resolution)
}

/// Historical entry: one colored parallel phase, full sweep, fixed
/// threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_colored(
    g: &CsrGraph,
    batches: &ColorBatches,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::colored_scheduled_impl(
        g,
        batches,
        SweepMode::Full,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one colored parallel phase with an explicit sweep
/// mode, fixed threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_colored_sweep(
    g: &CsrGraph,
    batches: &ColorBatches,
    sweep: SweepMode,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::colored_scheduled_impl(
        g,
        batches,
        sweep,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one colored parallel phase under an explicit
/// [`Convergence`] policy.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_colored_scheduled(
    g: &CsrGraph,
    batches: &ColorBatches,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::parallel::colored_scheduled_impl(g, batches, sweep, conv, max_iterations, resolution)
}

/// Historical entry: the colored phase with the per-iteration O(m)
/// modularity rescan ([`colored_rescan_impl`]).
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn parallel_phase_colored_rescan(
    g: &CsrGraph,
    batches: &ColorBatches,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    colored_rescan_impl(g, batches, threshold, max_iterations, resolution)
}

/// Historical entry: one serial phase, full sweep, fixed threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn serial_phase(
    g: &CsrGraph,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::serial::serial_scheduled_impl(
        g,
        SweepMode::Full,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one serial phase with an explicit sweep mode, fixed
/// threshold.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn serial_phase_sweep(
    g: &CsrGraph,
    sweep: SweepMode,
    threshold: f64,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::serial::serial_scheduled_impl(
        g,
        sweep,
        &Convergence::fixed(threshold),
        max_iterations,
        resolution,
    )
}

/// Historical entry: one serial phase under an explicit [`Convergence`]
/// policy.
#[deprecated(note = "run phases through grappolo_core::PhaseDriver")]
pub fn serial_phase_scheduled(
    g: &CsrGraph,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    crate::serial::serial_scheduled_impl(g, sweep, conv, max_iterations, resolution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::NeighborScratch;
    use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};

    #[test]
    fn sorted_gather_agrees_with_flat_gather() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig::default());
        let mut sorted = Vec::new();
        let mut flat = NeighborScratch::default();
        for v in 0..g.num_vertices() as VertexId {
            gather_sorted(&g, &truth, v, &mut sorted);
            flat.gather(&g, &truth, v);
            let mut flat_entries = flat.entries.clone();
            flat_entries.sort_unstable_by_key(|&(c, _)| c);
            assert_eq!(sorted, flat_entries, "vertex {v}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn sortbased_phase_recovers_cliques() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        let out = parallel_phase_unordered_sortbased(&g, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7);
    }

    #[test]
    fn colored_rescan_recovers_cliques() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        let coloring = grappolo_coloring::color_parallel(
            &g,
            &grappolo_coloring::ParallelColoringConfig::default(),
        );
        let batches = ColorBatches::from_coloring(&coloring);
        let out = colored_rescan_impl(&g, &batches, 1e-6, 1000, 1.0);
        assert!(out.final_modularity > 0.7);
    }
}
