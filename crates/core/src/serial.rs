//! The serial Louvain method (§3) — a faithful reimplementation of the
//! Blondel et al. template used as the paper's comparison baseline \[10\].
//!
//! Within an iteration the vertices are scanned **sequentially in a
//! predefined order** (vertex id), each decision seeing "the latest
//! information available from all the preceding vertices" — the property §4
//! identifies as the obstacle to parallelization. All updates (community
//! degrees, sizes) are applied immediately, so modularity is monotonically
//! non-decreasing across iterations of a phase (tested).
//!
//! This module intentionally contains no rayon: the serial baseline must not
//! silently parallelize, or Table 2 / Fig. 7's absolute speedups would be
//! meaningless.

use crate::active::ActiveSet;
use crate::config::SweepMode;
use crate::modularity::{
    best_move_with_src, Community, ModularityTracker, MoveContext, NeighborScratch,
    TRACKER_DRIFT_TOLERANCE,
};
use crate::phase::{IterationStats, PhaseOutcome};
use crate::schedule::Convergence;
use grappolo_graph::{CsrGraph, VertexId};

/// Runs one serial phase to convergence under an explicit [`Convergence`]
/// policy — the serial arm of [`crate::PhaseDriver::run`].
///
/// `max_iterations` caps the loop (safety); `resolution` is γ in Q_γ.
/// `sweep` selects the iteration schedule: [`SweepMode::Full`] scans all
/// vertices in id order (Blondel et al.'s scheme); [`SweepMode::Active`]
/// scans only the dirty vertices — the frontier is in ascending id order,
/// so active iterations visit the same vertices a full iteration would,
/// minus the provably unchanged ones, in the same order. Pruning is
/// deferred until an iteration's move count drops to the
/// [`ActiveSet::engages`] bound (dense iterations are identical to `Full`);
/// the [`ActiveSet`] rebuild is the only extra work, and this module stays
/// rayon-free either way.
///
/// The per-vertex gain gate applies to each immediately-committed decision:
/// a gated vertex stays put and counts as locally converged, exactly as in
/// the parallel sweeps (the serial scan sees fresher state, but the gate
/// test itself is identical). `Convergence::fixed(θ)` reproduces the
/// historical serial sweep bit-for-bit; this module stays rayon-free under
/// every policy.
pub(crate) fn serial_scheduled_impl(
    g: &CsrGraph,
    sweep: SweepMode,
    conv: &Convergence,
    max_iterations: usize,
    resolution: f64,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let m = g.total_weight();
    if n == 0 || m <= 0.0 {
        return PhaseOutcome::trivial(n);
    }

    // Live bookkeeping: community degrees, sizes, and the e_in / Σ a_C²
    // modularity terms, all updated per committed move so the per-iteration
    // modularity is O(1) instead of an O(m) rescan. The tracker's serial
    // constructor keeps this module rayon-free.
    let mut assignment: Vec<Community> = (0..n as Community).collect();
    let mut a: Vec<f64> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    let mut sizes: Vec<u32> = vec![1; n];
    let mut scratch = NeighborScratch::with_capacity(n);
    let mut tracker = ModularityTracker::new_serial(g, &assignment, &a, resolution);

    let mut iterations: Vec<(f64, usize)> = Vec::new();
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut q_prev = tracker.modularity();
    let prune = sweep == SweepMode::Active;
    let mut active: Option<ActiveSet> = None;
    let mut movers: Vec<VertexId> = Vec::new();

    for iter in 0..max_iterations {
        if active.as_ref().is_some_and(ActiveSet::is_empty) {
            break; // converged: nothing moved last iteration
        }
        let gate = conv.gate(iter);
        let mut moves = 0usize;
        let mut converged = 0usize;
        movers.clear();
        let sweep_len = active.as_ref().map_or(n, ActiveSet::len);
        for idx in 0..sweep_len {
            let v = match &active {
                Some(set) => set.frontier()[idx],
                None => idx as VertexId,
            };
            let cur = assignment[v as usize];
            scratch.gather(g, &assignment, v);
            if scratch.entries.is_empty() {
                continue; // isolated or loop-only vertex never moves
            }
            let ctx = MoveContext {
                current: cur,
                k: g.weighted_degree(v),
                m,
                a_current: a[cur as usize],
                gamma: resolution,
            };
            let decision =
                best_move_with_src(&ctx, &scratch.entries, scratch.weight_to(cur), |c| {
                    a[c as usize]
                });
            if decision.target != cur {
                if decision.gain < gate {
                    converged += 1; // locally converged at this gate level
                    continue;
                }
                tracker.apply_move(
                    ctx.k,
                    decision.e_src,
                    decision.e_tgt,
                    cur,
                    decision.target,
                    &mut a,
                );
                sizes[cur as usize] -= 1;
                sizes[decision.target as usize] += 1;
                assignment[v as usize] = decision.target;
                movers.push(v);
                moves += 1;
            }
        }
        match &mut active {
            Some(set) => set.rebuild_from_moves(g, &movers),
            // Engagement waits for the gate floor, as in the parallel
            // sweeps: pre-floor frontiers would park vertices the
            // tightening gate is about to admit.
            None if prune && conv.gate_at_floor(iter) && ActiveSet::engages(n, moves) => {
                let mut set = ActiveSet::empty(n);
                set.rebuild_from_moves(g, &movers);
                active = Some(set);
            }
            None => {}
        }
        let q_curr = tracker.modularity();
        debug_assert!(
            (q_curr - serial_modularity(g, &assignment, resolution)).abs()
                < TRACKER_DRIFT_TOLERANCE,
            "serial incremental modularity drifted from full recompute",
        );
        iterations.push((q_curr, moves));
        stats.push(IterationStats {
            gate,
            frontier: sweep_len,
            converged,
        });
        if conv.should_stop(iter, q_prev, q_curr, moves, converged) {
            break;
        }
        q_prev = q_curr;
    }

    let final_modularity = iterations.last().map(|&(q, _)| q).unwrap_or(q_prev);
    PhaseOutcome {
        assignment,
        iterations,
        stats,
        final_modularity,
        refinement: None,
    }
}

/// Single-threaded modularity (Eq. 3) — same math as
/// [`crate::modularity::modularity`] but with plain loops so the serial
/// scheme never touches the rayon pool.
pub fn serial_modularity(g: &CsrGraph, assignment: &[Community], gamma: f64) -> f64 {
    let m = g.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let n = g.num_vertices();
    let two_m = 2.0 * m;
    let mut e_in = 0.0f64;
    let mut a = vec![0.0f64; n];
    for v in 0..n as VertexId {
        let cv = assignment[v as usize];
        a[cv as usize] += g.weighted_degree(v);
        for (u, w) in g.neighbors(v) {
            if assignment[u as usize] == cv {
                e_in += w;
            }
        }
    }
    let mut null = 0.0f64;
    for &ac in &a {
        let x = ac / two_m;
        null += x * x;
    }
    e_in / two_m - gamma * null
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};

    // The historical fixed-threshold serial entry signatures, kept local for
    // the tests; production callers go through `crate::PhaseDriver`.
    fn serial_phase(
        g: &CsrGraph,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        serial_phase_sweep(g, SweepMode::Full, threshold, max_iterations, resolution)
    }

    fn serial_phase_sweep(
        g: &CsrGraph,
        sweep: SweepMode,
        threshold: f64,
        max_iterations: usize,
        resolution: f64,
    ) -> PhaseOutcome {
        serial_scheduled_impl(
            g,
            sweep,
            &Convergence::fixed(threshold),
            max_iterations,
            resolution,
        )
    }

    #[test]
    fn serial_modularity_matches_parallel_kernel() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig::default());
        let qs = serial_modularity(&g, &truth, 1.0);
        let qp = modularity(&g, &truth);
        assert!((qs - qp).abs() < 1e-12);
    }

    #[test]
    fn recovers_ring_of_cliques() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 8,
            clique_size: 6,
            ..Default::default()
        });
        let out = serial_phase(&g, 1e-6, 1000, 1.0);
        // Every clique must be one community (optimum for this size ratio).
        for c in 0..8 {
            let members: Vec<_> = (0..48)
                .filter(|&v| truth[v] == c)
                .map(|v| out.assignment[v])
                .collect();
            assert!(
                members.windows(2).all(|w| w[0] == w[1]),
                "clique {c} split: {members:?}"
            );
        }
        assert!(out.final_modularity > 0.7);
    }

    #[test]
    fn modularity_monotone_within_phase() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 12,
            clique_size: 5,
            ..Default::default()
        });
        let out = serial_phase(&g, 1e-9, 1000, 1.0);
        for w in out.iterations.windows(2) {
            assert!(
                w[1].0 >= w[0].0 - 1e-12,
                "serial modularity decreased: {} → {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = CsrGraph::empty(0);
        let out = serial_phase(&g, 1e-6, 100, 1.0);
        assert!(out.assignment.is_empty());

        let g1 = CsrGraph::empty(5); // no edges: everyone stays singleton
        let out1 = serial_phase(&g1, 1e-6, 100, 1.0);
        assert_eq!(out1.assignment, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_vertices_merge() {
        let g = from_unweighted_edges(2, [(0, 1)]).unwrap();
        let out = serial_phase(&g, 1e-6, 100, 1.0);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert!((out.final_modularity - 0.0).abs() < 1e-12); // single community Q=0
    }

    #[test]
    fn final_modularity_matches_recomputation() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig::default());
        let out = serial_phase(&g, 1e-6, 1000, 1.0);
        let q = serial_modularity(&g, &out.assignment, 1.0);
        assert!((q - out.final_modularity).abs() < 1e-12);
    }

    #[test]
    fn threshold_limits_iterations() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 20,
            clique_size: 4,
            ..Default::default()
        });
        let loose = serial_phase(&g, 0.5, 1000, 1.0);
        let tight = serial_phase(&g, 1e-9, 1000, 1.0);
        assert!(loose.num_iterations() <= tight.num_iterations());
    }

    #[test]
    fn active_serial_matches_full_quality_and_stays_monotone() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 8,
            clique_size: 6,
            ..Default::default()
        });
        let full = serial_phase_sweep(&g, SweepMode::Full, 1e-6, 1000, 1.0);
        let active = serial_phase_sweep(&g, SweepMode::Active, 1e-6, 1000, 1.0);
        assert!(
            active.final_modularity >= 0.95 * full.final_modularity,
            "active Q {} vs full Q {}",
            active.final_modularity,
            full.final_modularity
        );
        // Immediate commits keep the monotonicity property under pruning.
        for w in active.iterations.windows(2) {
            assert!(w[1].0 >= w[0].0 - 1e-12);
        }
        // Structure recovered: every clique still lands in one community.
        for c in 0..8 {
            let members: Vec<_> = (0..48)
                .filter(|&v| truth[v] == c)
                .map(|v| active.assignment[v])
                .collect();
            assert!(members.windows(2).all(|w| w[0] == w[1]), "clique {c} split");
        }
    }

    #[test]
    fn active_serial_first_iteration_bitwise_matches_full() {
        // A saturated frontier in ascending order is exactly the full
        // serial scan, so iteration 0 is bitwise identical.
        let (g, _) = ring_of_cliques(&CliqueRingConfig::default());
        let full = serial_phase_sweep(&g, SweepMode::Full, 1e-9, 1, 1.0);
        let active = serial_phase_sweep(&g, SweepMode::Active, 1e-9, 1, 1.0);
        assert_eq!(full.assignment, active.assignment);
        assert_eq!(full.iterations, active.iterations);
    }

    #[test]
    fn respects_iteration_cap() {
        let (g, _) = ring_of_cliques(&CliqueRingConfig::default());
        let out = serial_phase(&g, 1e-12, 1, 1.0);
        assert_eq!(out.num_iterations(), 1);
    }

    #[test]
    fn gamma_zero_merges_everything_connected() {
        // With γ=0 there is no null-model penalty: any positive-weight edge
        // makes merging attractive, so a connected graph collapses fast.
        let g = from_unweighted_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let out = serial_phase(&g, 1e-9, 100, 0.0);
        let c = out.assignment[0];
        assert!(out.assignment.iter().all(|&x| x == c));
    }
}
