//! Leiden-style refinement: split every community into connected
//! sub-communities between local-moving and the inter-phase rebuild, so
//! condensation never merges internally disconnected vertex sets.
//!
//! Louvain's local-moving step is known to emit **internally disconnected**
//! communities (Traag et al.'s Leiden paper; Staudt & Meyerhenke's PLM): a
//! bridge vertex can move away and leave the rest of its community in two
//! pieces that only ever get *more* entangled once `rebuild` collapses them
//! into a single vertex. The refinement pass here runs after a phase's sweep
//! converges and before its assignment is condensed:
//!
//! 1. **Connected-component split.** Each parent community is partitioned
//!    into its connected components by a breadth-first traversal constrained
//!    to intra-parent edges. A component's label is its minimum member
//!    vertex, and vertices are seeded in ascending id order, so the labeling
//!    is a pure function of the assignment — independent of traversal order,
//!    schedule, and thread count. Splitting never lowers modularity: the
//!    intra-community weight `e_in` is unchanged (components share no
//!    edges), while the null-model term `Σ a_C²` can only shrink
//!    (`(a_A + a_B)² ≥ a_A² + a_B²`), so `Q` is non-decreasing for every
//!    `γ ≥ 0`. The traversal visits every vertex and edge exactly once, so
//!    it also accumulates the per-community degree sums, sizes, and `e_in`
//!    the later stages need — no separate rescan.
//! 2. **Crumb absorption.** The split (and the geometric gate's forfeited
//!    sub-`1/m` "crumb" moves before it) strands singleton communities whose
//!    best move was suppressed or whose parent disintegrated. A serial
//!    ascending-order sweep re-examines every *singleton* community and
//!    greedily merges it into the best adjacent community when the
//!    modularity gain is strictly positive, committing immediately through
//!    [`ModularityTracker::apply_move`]. Only singletons move, and a
//!    singleton's target is by construction adjacent to it, so absorption
//!    preserves the connectivity invariant (the source community vanishes;
//!    the target gains an adjacent vertex) while strictly increasing `Q` at
//!    every commit. Sweeps repeat over an [`ActiveSet`] frontier rebuilt
//!    from the committed movers until a pass commits nothing.
//! 3. **Polish rounds.** The gate's forfeited crumbs are not all
//!    singletons — on structure-free inputs most are ordinary vertices
//!    whose sub-`1/m` move the schedule never admitted. Each round runs one
//!    serial ascending-order sweep committing any strictly positive-gain
//!    move. Such a move can disconnect its source community, so every
//!    productive round is followed by a **re-split** restricted to the
//!    communities the round's moves touched (untouched communities cannot
//!    have changed), with the degree sums and the tracker's `Σ a_C²`
//!    adjusted in place (`e_in` is untouched: components share no edges),
//!    and then by a seeded absorption series for the crumbs the re-split
//!    stranded. Only the first round sweeps the whole graph: later rounds
//!    seed their frontier from the previous round's movers and relabeled
//!    vertices — the same neighborhood-pruning heuristic as the phase's
//!    active sweep. The loop exits on a quiescent round or on the round
//!    cap; every exit lands right after a re-split + absorption or on
//!    quiescence, so the connectivity invariant holds on exit, and since
//!    splitting is itself monotone in `Q` the alternation only climbs.
//!
//! A "constrained move within the parent" step — the literal Leiden
//! recipe — is deliberately absent: two components of the same parent share
//! no edge, so an intra-parent move between them always has
//! `e_{v→target} = 0` and never beats staying. Absorption plus polish
//! against *any* adjacent community are the steps that actually recover the
//! forfeited crumbs (pinned in `tests/properties.rs`).
//!
//! # Determinism contract
//!
//! Every stage is serial with ascending immediate commits, the component
//! labeling is order-independent (labels are set minima), and the
//! accumulated sums are produced by the same deterministic traversal — so
//! the refined assignment is bitwise identical for any thread count, which
//! the property tests pin at 1/2/4/8/16 threads.

use crate::active::ActiveSet;
use crate::modularity::{
    best_move_with_src, community_sizes, det_sum, intra_community_weight,
    modularity_with_resolution, Community, ModularityTracker, MoveContext, ScratchPool,
};
use grappolo_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// What one refinement pass did — attached to the phase outcome and the
/// dendrogram trace.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RefineStats {
    /// Parent communities entering refinement.
    pub parents: usize,
    /// Parents that were internally disconnected (split into ≥ 2
    /// components).
    pub split_parents: usize,
    /// Refined communities after the connected-component split (before
    /// absorption).
    pub sub_communities: usize,
    /// Singleton communities merged away by the absorption sweeps.
    pub absorbed: usize,
    /// Positive-gain moves committed by the polish sweeps (the re-admitted
    /// crumbs the within-phase gate forfeited).
    pub polished: usize,
    /// Absorption sweeps run (including the final empty one), summed over
    /// polish rounds.
    pub passes: usize,
    /// Modularity of the parent assignment entering refinement.
    pub pre_modularity: f64,
    /// Modularity of the refined assignment. Non-decreasing relative to
    /// `pre_modularity` for `γ ≥ 0`, up to the floating-point accumulation
    /// of the two sums.
    pub refined_modularity: f64,
}

impl RefineStats {
    /// Stats for a graph refinement never touched (empty or edgeless).
    fn trivial(parents: usize) -> Self {
        Self {
            parents,
            split_parents: 0,
            sub_communities: parents,
            absorbed: 0,
            polished: 0,
            passes: 0,
            pre_modularity: 0.0,
            refined_modularity: 0.0,
        }
    }
}

/// Sentinel for "not yet reached by the component traversal". Community
/// labels are vertex ids, so they are always `< n < u32::MAX`.
const UNSET: Community = Community::MAX;

/// Polish ⇄ re-split rounds: each round is one serial polish sweep (full
/// on the first round, frontier-seeded afterwards) followed by an
/// incremental re-split and a seeded absorption series. Only the first
/// round touches the whole graph — every later round costs work
/// proportional to the previous round's movers, and the mover count
/// shrinks geometrically in practice — so a generous cap is cheap; it is
/// purely a termination backstop.
const MAX_POLISH_ROUNDS: usize = 32;

/// Polish only moves vertices out of communities at most this large. A
/// move's source must be re-verified for connectivity, which costs a
/// traversal of the whole source community — unbounded for the giant
/// communities structure-free inputs produce, for a crumb-sized gain. The
/// gate's stranded crumbs sit in small fragments, so the cap forfeits
/// almost nothing while keeping every re-split traversal small. The test
/// depends only on the deterministic size table, so it is deterministic.
const POLISH_SOURCE_CAP: u32 = 4096;

/// Partitions every `parent`-community of `g` into its connected
/// components, writing component-minimum labels into `out` (ascending seed
/// order makes every component's label its minimum member without an
/// explicit min-reduction). The traversal touches every vertex and edge
/// exactly once, so it also fills the per-label degree sums `a` and member
/// counts `sizes`, plus the per-parent degree sums `a_parent` the caller
/// needs to reconstruct the parent assignment's null-model term (all three
/// must arrive zeroed). Returns `(parents, split_parents,
/// sub_communities)`.
fn split_components(
    g: &CsrGraph,
    parent: &[Community],
    out: &mut [Community],
    queue: &mut Vec<VertexId>,
    a: &mut [f64],
    sizes: &mut [u32],
    a_parent: &mut [f64],
) -> (usize, usize, usize) {
    let n = g.num_vertices();
    out.fill(UNSET);
    let mut components_of = vec![0u32; n];
    let mut sub_communities = 0usize;
    for v in 0..n as VertexId {
        if out[v as usize] != UNSET {
            continue;
        }
        let p = parent[v as usize];
        components_of[p as usize] += 1;
        sub_communities += 1;
        out[v as usize] = v;
        let mut a_c = 0.0f64;
        let mut size_c = 0u32;
        queue.clear();
        queue.push(v);
        let mut head = 0usize;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            a_c += g.weighted_degree(x);
            size_c += 1;
            for &u in g.neighbor_ids(x) {
                if u != x && parent[u as usize] == p && out[u as usize] == UNSET {
                    out[u as usize] = v;
                    queue.push(u);
                }
            }
        }
        a[v as usize] = a_c;
        sizes[v as usize] = size_c;
        a_parent[p as usize] += a_c;
    }
    let parents = components_of.iter().filter(|&&c| c > 0).count();
    let split_parents = components_of.iter().filter(|&&c| c > 1).count();
    (parents, split_parents, sub_communities)
}

/// Re-splits only the communities whose labels appear in `affected` — the
/// sources of a polish round's moves; a community that only gained
/// members cannot have become disconnected, and untouched communities
/// cannot have changed. Components are relabeled to their minimum member
/// (new labels cannot collide: every live label is a member of its
/// community, and communities are disjoint). `a`, `sizes`, and the
/// tracker's `Σ a_C²` are adjusted in place; `e_in` needs no adjustment
/// because splitting removes no intra-community edge. Every vertex whose
/// label changed is appended to `seed`. `touched` and `prev` are n-sized
/// scratch buffers (`touched` all-false on entry and exit).
#[allow(clippy::too_many_arguments)]
fn resplit_affected(
    g: &CsrGraph,
    refined: &mut [Community],
    affected: &mut Vec<Community>,
    touched: &mut [bool],
    prev: &mut [Community],
    members: &mut Vec<VertexId>,
    queue: &mut Vec<VertexId>,
    a: &mut [f64],
    sizes: &mut [u32],
    tracker: &mut ModularityTracker,
    seed: &mut Vec<VertexId>,
) {
    // Dedup the affected labels through the scratch bitmap.
    let mut uniq = 0usize;
    for i in 0..affected.len() {
        let l = affected[i];
        if !touched[l as usize] {
            touched[l as usize] = true;
            affected[uniq] = l;
            uniq += 1;
        }
    }
    affected.truncate(uniq);

    // Snapshot the affected members (ascending) and mark them unvisited.
    members.clear();
    for v in 0..refined.len() as VertexId {
        let l = refined[v as usize];
        if touched[l as usize] {
            members.push(v);
            prev[v as usize] = l;
            refined[v as usize] = UNSET;
        }
    }
    for &l in affected.iter() {
        tracker.null_sum -= a[l as usize] * a[l as usize];
        a[l as usize] = 0.0;
        sizes[l as usize] = 0;
        touched[l as usize] = false;
    }

    // BFS each affected old community; ascending seeds make every new
    // label its component's minimum member. `refined[u] == UNSET` holds
    // exactly for the still-unvisited members, so `prev[u]` is only read
    // where it is valid.
    for &v in members.iter() {
        if refined[v as usize] != UNSET {
            continue;
        }
        let p = prev[v as usize];
        refined[v as usize] = v;
        let mut a_c = 0.0f64;
        let mut size_c = 0u32;
        queue.clear();
        queue.push(v);
        let mut head = 0usize;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            a_c += g.weighted_degree(x);
            size_c += 1;
            for &u in g.neighbor_ids(x) {
                if u != x && refined[u as usize] == UNSET && prev[u as usize] == p {
                    refined[u as usize] = v;
                    queue.push(u);
                }
            }
        }
        a[v as usize] = a_c;
        sizes[v as usize] = size_c;
        tracker.null_sum += a_c * a_c;
    }
    for &v in members.iter() {
        if refined[v as usize] != prev[v as usize] {
            seed.push(v);
        }
    }
}

/// Refines `assignment` in place: splits every community into its connected
/// components, then absorbs profitable singleton crumbs. See the module
/// docs for the algorithm and its guarantees (connectivity of every output
/// community, `Q` non-decreasing, bitwise thread-count independence).
///
/// Labels in the refined assignment are component-minimum vertex ids; the
/// caller renumbers as usual.
pub fn refine_phase(g: &CsrGraph, assignment: &mut [Community], gamma: f64) -> RefineStats {
    refine_phase_impl(g, assignment, gamma, None)
}

/// [`refine_phase`] with the entering assignment's modularity supplied by
/// the caller (the phase driver already tracks it incrementally), skipping
/// the standalone entry point's full rescan.
pub(crate) fn refine_phase_from(
    g: &CsrGraph,
    assignment: &mut [Community],
    gamma: f64,
    pre_modularity: f64,
) -> RefineStats {
    refine_phase_impl(g, assignment, gamma, Some(pre_modularity))
}

fn refine_phase_impl(
    g: &CsrGraph,
    assignment: &mut [Community],
    gamma: f64,
    pre: Option<f64>,
) -> RefineStats {
    let n = g.num_vertices();
    let m = g.total_weight();
    debug_assert_eq!(assignment.len(), n);
    if n == 0 || m <= 0.0 {
        let parents = community_sizes(assignment)
            .iter()
            .filter(|&&s| s > 0)
            .count();
        return RefineStats::trivial(parents);
    }
    // ── 1. Connected-component split (accumulates degree sums) ──────────
    let mut refined: Vec<Community> = vec![UNSET; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut a = vec![0.0f64; n];
    let mut sizes = vec![0u32; n];
    let mut a_parent = vec![0.0f64; n];
    let (parents, split_parents, sub_communities) = split_components(
        g,
        assignment,
        &mut refined,
        &mut queue,
        &mut a,
        &mut sizes,
        &mut a_parent,
    );
    let null_sum = det_sum(n, |c| a[c] * a[c]);
    let two_m = 2.0 * m;
    // Splitting changes no intra-community edge, so the parent
    // assignment's `e_in` carries over exactly. When the caller supplies
    // the parent modularity (the driver's tracker value), invert the Q
    // formula instead of paying an O(m) edge rescan.
    let (pre_modularity, e_in) = match pre {
        Some(q) => {
            let null_parent = det_sum(n, |c| a_parent[c] * a_parent[c]);
            (q, (q + gamma * null_parent / (two_m * two_m)) * two_m)
        }
        None => (
            modularity_with_resolution(g, assignment, gamma),
            intra_community_weight(g, assignment),
        ),
    };
    let mut tracker = ModularityTracker::from_parts(g, e_in, null_sum, gamma);

    let mut movers: Vec<VertexId> = Vec::new();
    let mut scratch = ScratchPool::global().take();
    let mut absorbed = 0usize;
    let mut polished = 0usize;
    let mut passes = 0usize;

    // One absorption sweep over the frontier; returns the committed movers
    // appended to `movers` (cleared first).
    macro_rules! absorb_series {
        ($active:expr, $carry:expr) => {{
            let active: &mut ActiveSet = $active;
            loop {
                passes += 1;
                movers.clear();
                for &v in active.frontier() {
                    let cur = refined[v as usize];
                    if sizes[cur as usize] != 1 {
                        continue;
                    }
                    scratch.gather_by(g, v, |u| refined[u]);
                    if scratch.entries.is_empty() {
                        continue;
                    }
                    let k = g.weighted_degree(v);
                    let ctx = MoveContext {
                        current: cur,
                        k,
                        m,
                        a_current: a[cur as usize],
                        gamma,
                    };
                    // A singleton has no co-members, so e_src is exactly 0
                    // — but read it through the scratch like the sweeps do.
                    let e_src = scratch.weight_to(cur);
                    let d = best_move_with_src(&ctx, &scratch.entries, e_src, |c| a[c as usize]);
                    if d.target != cur && d.gain > 0.0 {
                        tracker.apply_move(k, d.e_src, d.e_tgt, cur, d.target, &mut a);
                        sizes[cur as usize] -= 1;
                        sizes[d.target as usize] += 1;
                        refined[v as usize] = d.target;
                        movers.push(v);
                        absorbed += 1;
                    }
                }
                if movers.is_empty() {
                    break;
                }
                if let Some(carry) = $carry {
                    let carry: &mut Vec<VertexId> = carry;
                    carry.extend_from_slice(&movers);
                }
                // Each pass with moves deletes ≥ 1 community, so this
                // terminates in ≤ n passes.
                active.rebuild_from_moves(g, &movers);
            }
        }};
    }

    // ── 2a. Absorption sweeps over the full frontier ────────────────────
    // Singleton communities only: moving a singleton cannot disconnect
    // anything (the source vanishes, the target gains an adjacent member).
    absorb_series!(&mut ActiveSet::full(n), None::<&mut Vec<VertexId>>);

    // ── 2b. Polish ⇄ re-split ⇄ absorb rounds ───────────────────────────
    let mut seed: Vec<VertexId> = Vec::new();
    let mut affected: Vec<Community> = Vec::new();
    let mut touched = vec![false; n];
    let mut prev: Vec<Community> = vec![UNSET; n];
    let mut members: Vec<VertexId> = Vec::new();
    let mut rounds = 0usize;
    loop {
        // One polish sweep: every frontier vertex, any strictly
        // positive-gain move — the forfeited crumbs that are not
        // singletons. May disconnect a source community, hence the
        // re-split below before any exit from a productive round.
        let active = if rounds == 0 {
            ActiveSet::full(n)
        } else {
            let mut s = ActiveSet::empty(n);
            s.rebuild_from_moves(g, &seed);
            s
        };
        movers.clear();
        affected.clear();
        for &v in active.frontier() {
            let cur = refined[v as usize];
            if sizes[cur as usize] > POLISH_SOURCE_CAP {
                continue;
            }
            scratch.gather_by(g, v, |u| refined[u]);
            if scratch.entries.is_empty() {
                continue;
            }
            let k = g.weighted_degree(v);
            let ctx = MoveContext {
                current: cur,
                k,
                m,
                a_current: a[cur as usize],
                gamma,
            };
            let e_src = scratch.weight_to(cur);
            let d = best_move_with_src(&ctx, &scratch.entries, e_src, |c| a[c as usize]);
            if d.target != cur && d.gain > 0.0 {
                tracker.apply_move(k, d.e_src, d.e_tgt, cur, d.target, &mut a);
                sizes[cur as usize] -= 1;
                sizes[d.target as usize] += 1;
                refined[v as usize] = d.target;
                movers.push(v);
                // Only the source can end up disconnected — the target
                // gains an adjacent vertex — so only sources need the
                // re-split below.
                affected.push(cur);
            }
        }
        if movers.is_empty() {
            // Quiescent round: nothing moved since the last re-split +
            // absorption, so the connectivity invariant is intact.
            break;
        }
        polished += movers.len();

        // Re-split the touched communities and re-absorb the crumbs the
        // split stranded; both feed the next round's seed frontier.
        seed.clear();
        seed.append(&mut movers);
        resplit_affected(
            g,
            &mut refined,
            &mut affected,
            &mut touched,
            &mut prev,
            &mut members,
            &mut queue,
            &mut a,
            &mut sizes,
            &mut tracker,
            &mut seed,
        );
        let mut active = ActiveSet::empty(n);
        active.rebuild_from_moves(g, &seed);
        absorb_series!(&mut active, Some(&mut seed));

        rounds += 1;
        if rounds >= MAX_POLISH_ROUNDS {
            // Exiting right after a re-split + absorption: connectivity
            // intact.
            break;
        }
    }
    debug_assert!(
        tracker.drift_from_full(g, &refined) < crate::modularity::TRACKER_DRIFT_TOLERANCE
    );

    assignment.copy_from_slice(&refined);
    RefineStats {
        parents,
        split_parents,
        sub_communities,
        absorbed,
        polished,
        passes,
        pre_modularity,
        refined_modularity: tracker.modularity(),
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::community_degrees;
    use grappolo_graph::from_unweighted_edges;
    use grappolo_graph::gen::{ring_of_cliques, CliqueRingConfig};

    /// Counts connected components inside each community; returns the number
    /// of communities with ≥ 2 (the invariant refinement must zero).
    fn disconnected_communities(g: &CsrGraph, assignment: &[Community]) -> usize {
        let n = g.num_vertices();
        let mut seen = vec![false; n];
        let mut comps = vec![0u32; n];
        let mut queue = Vec::new();
        for v in 0..n as VertexId {
            if seen[v as usize] {
                continue;
            }
            comps[assignment[v as usize] as usize] += 1;
            seen[v as usize] = true;
            queue.clear();
            queue.push(v);
            while let Some(x) = queue.pop() {
                for &u in g.neighbor_ids(x) {
                    if u != x
                        && assignment[u as usize] == assignment[v as usize]
                        && !seen[u as usize]
                    {
                        seen[u as usize] = true;
                        queue.push(u);
                    }
                }
            }
        }
        comps.iter().filter(|&&c| c > 1).count()
    }

    #[test]
    fn splits_a_disconnected_community() {
        // Two triangles with NO edge between them, forced into one parent
        // community: refinement must split them (and Q must not drop).
        let g = from_unweighted_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        let mut assignment: Vec<Community> = vec![0, 0, 0, 0, 0, 0];
        let pre = modularity_with_resolution(&g, &assignment, 1.0);
        let stats = refine_phase(&g, &mut assignment, 1.0);
        assert_eq!(stats.parents, 1);
        assert_eq!(stats.split_parents, 1);
        assert_eq!(stats.sub_communities, 2);
        assert_eq!(assignment, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(disconnected_communities(&g, &assignment), 0);
        assert_eq!(stats.pre_modularity, pre);
        assert!(stats.refined_modularity >= pre);
        assert_eq!(
            stats.refined_modularity,
            modularity_with_resolution(&g, &assignment, 1.0)
        );
    }

    #[test]
    fn absorbs_profitable_singletons() {
        // A 4-clique with a pendant vertex stranded as its own community:
        // absorption must pull it into the clique (gain = 1/m − 2k·a/(2m)²
        // > 0 here).
        let g = from_unweighted_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
            .unwrap();
        let mut assignment: Vec<Community> = vec![0, 0, 0, 0, 4];
        let stats = refine_phase(&g, &mut assignment, 1.0);
        assert_eq!(stats.absorbed, 1);
        assert_eq!(assignment, vec![0, 0, 0, 0, 0]);
        assert!(stats.refined_modularity > stats.pre_modularity);
    }

    #[test]
    fn connected_optimum_is_a_fixed_point() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 6,
            clique_size: 5,
            ..Default::default()
        });
        let mut assignment = truth.clone();
        let stats = refine_phase(&g, &mut assignment, 1.0);
        assert_eq!(stats.split_parents, 0);
        assert_eq!(stats.absorbed, 0);
        assert_eq!(stats.sub_communities, stats.parents);
        // Labels become component minima, but the partition is unchanged.
        for (i, &ci) in truth.iter().enumerate() {
            for (j, &cj) in truth.iter().enumerate() {
                assert_eq!(ci == cj, assignment[i] == assignment[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs_are_trivial() {
        let g = from_unweighted_edges(0, std::iter::empty::<(u32, u32)>()).unwrap();
        let mut empty: Vec<Community> = Vec::new();
        let stats = refine_phase(&g, &mut empty, 1.0);
        assert_eq!(stats.passes, 0);
        let g3 = from_unweighted_edges(3, std::iter::empty::<(u32, u32)>()).unwrap();
        let mut assignment = vec![0, 1, 2];
        let stats = refine_phase(&g3, &mut assignment, 1.0);
        assert_eq!(stats.passes, 0);
        assert_eq!(assignment, vec![0, 1, 2]);
    }

    #[test]
    fn chained_absorption_converges_across_passes() {
        // A path 0–1–2 where 0,1,2 start as singletons attached to a far
        // heavier clique: pass 1 may only absorb the closest crumb, later
        // passes pick up vertices re-armed by the frontier rebuild.
        let g = from_unweighted_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut assignment: Vec<Community> = vec![0, 0, 0, 3, 4, 5];
        let stats = refine_phase(&g, &mut assignment, 1.0);
        assert_eq!(disconnected_communities(&g, &assignment), 0);
        assert!(stats.refined_modularity >= stats.pre_modularity);
        assert!(stats.passes >= 1);
        // Whatever the final partition, no singleton with a strictly
        // profitable merge remains.
        let sizes = community_sizes(&assignment);
        let a = community_degrees(&g, &assignment);
        let m = g.total_weight();
        let mut scratch = crate::modularity::NeighborScratch::with_capacity(6);
        for v in 0..6u32 {
            let cur = assignment[v as usize];
            if sizes[cur as usize] != 1 {
                continue;
            }
            scratch.gather(&g, &assignment, v);
            let ctx = MoveContext {
                current: cur,
                k: g.weighted_degree(v),
                m,
                a_current: a[cur as usize],
                gamma: 1.0,
            };
            let d = best_move_with_src(&ctx, &scratch.entries, 0.0, |c| a[c as usize]);
            assert!(
                d.gain <= 0.0 || d.target == cur,
                "vertex {v} still wants to move"
            );
        }
    }
}
