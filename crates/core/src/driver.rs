//! Multi-phase driver (§5.4): VF preprocessing → phases (colored or
//! unordered or serial) → graph rebuild, repeated until the modularity
//! converges.

use crate::cancel::{CancelToken, Cancelled};
use crate::config::{ColoringSchedule, LouvainConfig, Scheme};
use crate::dendrogram::{Dendrogram, DendrogramLevel};
use crate::history::{IterationRecord, PhaseRecord, PhaseTimings, RunTrace};
use crate::modularity::{modularity_with_resolution, Community};
use crate::phase::{PhaseDriver, PhaseOutcome};
use crate::rebuild::{rebuild, renumber_communities};
use crate::serial::serial_modularity;
use crate::vf::{vf_preprocess_recursive, VfResult};
use grappolo_coloring::{
    balance_colors, color_parallel, ColorBatches, ColoringStats, ParallelColoringConfig,
};
use grappolo_graph::CsrGraph;
use rayon::prelude::*;
use std::time::Instant;

/// Result of a community-detection run.
#[derive(Clone, Debug)]
pub struct CommunityResult {
    /// Dense community labels (`0..num_communities`) on the **original**
    /// input vertices.
    pub assignment: Vec<Community>,
    /// Number of communities.
    pub num_communities: usize,
    /// Final modularity, evaluated on the original graph.
    pub modularity: f64,
    /// Per-iteration / per-phase trace.
    pub trace: RunTrace,
    /// The phase hierarchy.
    pub dendrogram: Dendrogram,
}

/// Runs community detection on `g` under `config`.
///
/// If `config.num_threads` is set, the run executes inside a dedicated rayon
/// pool of that size; otherwise a serial (`parallel = false`) run uses a
/// 1-thread pool (so "serial" never silently parallelizes) and a parallel
/// run uses the ambient pool.
pub fn detect_communities(g: &CsrGraph, config: &LouvainConfig) -> CommunityResult {
    detect_communities_cancellable(g, config, &CancelToken::new())
        .expect("a fresh CancelToken is never cancelled")
}

/// [`detect_communities`] with cooperative cancellation: the multi-phase
/// driver polls `token` at every phase boundary and stops early when it is
/// set, and the caller gets `Err(Cancelled)` instead of the partial result.
/// A run that completes with the token unset is bitwise identical to a
/// plain [`detect_communities`] run.
///
/// This is the hook long-lived supervisors (the `grappolo serve` detect
/// worker draining on SIGTERM) use to abandon an in-flight re-detection
/// without tearing down the thread pool.
pub fn detect_communities_cancellable(
    g: &CsrGraph,
    config: &LouvainConfig,
    token: &CancelToken,
) -> Result<CommunityResult, Cancelled> {
    config.validate().expect("invalid LouvainConfig");
    if token.is_cancelled() {
        return Err(Cancelled);
    }
    let result = match config.num_threads {
        Some(t) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t.max(1))
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| run_entry(g, config, token))
        }
        None if !config.parallel => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| run_entry(g, config, token))
        }
        None => run_entry(g, config, token),
    };
    if token.is_cancelled() {
        Err(Cancelled)
    } else {
        Ok(result)
    }
}

/// Entry point inside the chosen pool: component splitting when requested,
/// the plain multi-phase driver otherwise. The split path checks the token
/// only between components (each per-component run is itself bounded).
fn run_entry(g: &CsrGraph, config: &LouvainConfig, token: &CancelToken) -> CommunityResult {
    if config.split_components {
        crate::split::detect_split(g, config)
    } else {
        run_inner_cancellable(g, config, token)
    }
}

/// Convenience: runs one of the paper's four schemes with default settings.
pub fn detect_with_scheme(g: &CsrGraph, scheme: Scheme) -> CommunityResult {
    detect_communities(g, &scheme.config())
}

pub(crate) fn run_inner(g: &CsrGraph, config: &LouvainConfig) -> CommunityResult {
    run_inner_cancellable(g, config, &CancelToken::new())
}

/// The multi-phase loop, polling `token` at each phase boundary. On
/// cancellation the loop breaks immediately; the partial hierarchy is still
/// flattened so the return value is well-formed, but cancellable callers
/// discard it (see [`detect_communities_cancellable`]).
fn run_inner_cancellable(
    g: &CsrGraph,
    config: &LouvainConfig,
    token: &CancelToken,
) -> CommunityResult {
    let t_start = Instant::now();
    let mut trace = RunTrace::default();

    // m is an invariant of the whole hierarchy — VF and rebuilds only move
    // weight between edges and self-loops — so the input graph's total
    // weight is carried through every level instead of re-summed. For
    // ordinary runs the two are identical (re-summing the same quantity);
    // under component splitting the input's total weight is the *parent*
    // graph's m and must survive VF and every rebuild.
    let m0 = g.total_weight();

    // Step (1): optional VF preprocessing (§5.4).
    let t_vf = Instant::now();
    let vf: VfResult = if config.use_vf {
        let mut vf = vf_preprocess_recursive(g, config.vf_rounds);
        vf.graph = std::mem::take(&mut vf.graph).with_total_weight_override(m0);
        vf
    } else {
        VfResult::identity(g.clone())
    };
    trace.vf_time = t_vf.elapsed();
    trace.vf_merged = vf.merged;

    let mut dendrogram = Dendrogram {
        vf_mapping: vf.mapping.clone(),
        levels: Vec::new(),
    };

    let mut work = vf.graph.clone();
    let mut coloring_active = config.coloring != ColoringSchedule::Off;
    let mut prev_phase_end_q = f64::NEG_INFINITY;

    for phase_idx in 0..config.max_phases {
        if token.is_cancelled() {
            break;
        }
        let n = work.num_vertices();
        let m_edges = work.num_edges();

        // Coloring schedule (§6.1): stop once the graph is small or the
        // previous phase's gain was below the colored threshold.
        let colored = match config.coloring {
            ColoringSchedule::Off => false,
            ColoringSchedule::FirstPhaseOnly => coloring_active && phase_idx == 0,
            ColoringSchedule::MultiPhase => coloring_active && n >= config.coloring_vertex_cutoff,
        } && config.parallel;

        // Step (2): coloring preprocessing.
        let t_color = Instant::now();
        let (batches, num_colors) = if colored {
            let mut coloring = color_parallel(&work, &ParallelColoringConfig::default());
            if config.balanced_coloring {
                balance_colors(&work, &mut coloring, 0.1);
            }
            let stats = ColoringStats::compute(&coloring);
            (ColorBatches::from_coloring(&coloring), stats.num_colors)
        } else {
            (ColorBatches::default(), 0)
        };
        let coloring_time = t_color.elapsed();

        // Step (3): the phase's iteration loop, behind the unified
        // PhaseDriver. The aggregate phase θ resolves through the config's
        // schedule selection into the convergence policy the sweep runs
        // under (`Fixed` keeps the paper's aggregate stop at θ; `Geometric`
        // swaps in the per-vertex gate); the driver also applies the
        // Leiden-style refinement pass when the config asks for one.
        let threshold = if colored {
            config.colored_threshold
        } else {
            config.final_threshold
        };
        let phase_driver = PhaseDriver::from_config(config, threshold);
        let start_q = if config.parallel {
            let identity: Vec<Community> = (0..n as Community).collect();
            modularity_with_resolution(&work, &identity, config.resolution)
        } else {
            let identity: Vec<Community> = (0..n as Community).collect();
            serial_modularity(&work, &identity, config.resolution)
        };
        let t_cluster = Instant::now();
        let outcome: PhaseOutcome = if colored {
            phase_driver.run_colored(&work, &batches)
        } else {
            phase_driver.run(&work)
        };
        let clustering_time = t_cluster.elapsed();

        for (i, &(q, moves)) in outcome.iterations.iter().enumerate() {
            trace.iterations.push(IterationRecord {
                phase: phase_idx,
                iteration: i,
                modularity: q,
                moves,
            });
        }

        // With refinement the phase's end Q is the refined value (never
        // lower than the sweep's); without it, an iteration-less phase
        // reports the identity partition's Q.
        let end_q = match &outcome.refinement {
            Some(stats) => stats.refined_modularity,
            None if outcome.iterations.is_empty() => start_q,
            None => outcome.final_modularity,
        };

        // Step (4): graph rebuild — also executed for the terminal phase so
        // the dendrogram's last level has dense labels (the graph itself is
        // then discarded).
        let t_rebuild = Instant::now();
        let (renumber, num_communities) =
            renumber_communities(&outcome.assignment, config.renumber);
        let phase_gain = end_q - start_q;
        let made_progress = num_communities < n;
        let overall_gain = if prev_phase_end_q.is_finite() {
            end_q - prev_phase_end_q
        } else {
            f64::INFINITY
        };
        let is_last = !made_progress
            || phase_gain < config.final_threshold
            || overall_gain < config.final_threshold
            || phase_idx + 1 == config.max_phases;
        let next_graph = if is_last {
            None
        } else {
            Some(
                rebuild(&work, &outcome.assignment, config.rebuild, config.renumber)
                    .graph
                    .with_total_weight_override(m0),
            )
        };
        let mut rebuild_time = t_rebuild.elapsed();
        if phase_idx == 0 {
            // Paper's accounting: VF cost is folded into rebuild time.
            rebuild_time += trace.vf_time;
        }

        trace.phases.push(PhaseRecord {
            phase: phase_idx,
            num_vertices: n,
            num_edges: m_edges,
            colored,
            num_colors,
            iterations: outcome.num_iterations(),
            start_modularity: start_q,
            end_modularity: end_q,
            timings: PhaseTimings {
                coloring: coloring_time,
                clustering: clustering_time,
                rebuild: rebuild_time,
            },
        });
        dendrogram.levels.push(DendrogramLevel {
            assignment: outcome.assignment,
            renumber,
            num_communities,
        });

        // Coloring shutoff (§6.1): once the phase gain drops below the
        // colored threshold, later phases run uncolored at θ_final.
        if colored && phase_gain < config.coloring_phase_gain_cutoff {
            coloring_active = false;
        }

        match next_graph {
            Some(gn) => work = gn,
            None => break,
        }
        prev_phase_end_q = end_q;
    }

    // Project the hierarchy back to the original vertices.
    let assignment = flatten_parallel(&dendrogram);
    let num_communities = dendrogram
        .levels
        .last()
        .map(|l| l.num_communities)
        .unwrap_or_else(|| {
            // No phases ran (empty graph): each VF vertex is a community.
            vf.graph.num_vertices()
        });
    let final_q = if config.parallel {
        modularity_with_resolution(g, &assignment, config.resolution)
    } else {
        serial_modularity(g, &assignment, config.resolution)
    };
    trace.total_time = t_start.elapsed();

    CommunityResult {
        assignment,
        num_communities,
        modularity: final_q,
        trace,
        dendrogram,
    }
}

/// Parallel version of [`Dendrogram::flatten`] for the driver's hot exit
/// path.
fn flatten_parallel(d: &Dendrogram) -> Vec<Community> {
    if d.levels.is_empty() {
        return d.vf_mapping.par_iter().map(|&v| v as Community).collect();
    }
    d.vf_mapping
        .par_iter()
        .map(|&v0| {
            let mut cur = v0 as usize;
            for l in &d.levels {
                cur = l.renumber[l.assignment[cur] as usize] as usize;
            }
            cur as Community
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RebuildStrategy, RenumberStrategy};
    use grappolo_graph::gen::{
        planted_partition, ring_of_cliques, CliqueRingConfig, PlantedConfig,
    };

    fn planted() -> (CsrGraph, Vec<u32>) {
        planted_partition(&PlantedConfig {
            num_vertices: 2_000,
            num_communities: 20,
            avg_intra_degree: 12.0,
            avg_inter_degree: 1.0,
            ..Default::default()
        })
    }

    fn colored_config() -> LouvainConfig {
        LouvainConfig {
            coloring_vertex_cutoff: 64, // engage coloring at test scale
            ..Scheme::BaselineVfColor.config()
        }
    }

    #[test]
    fn all_schemes_find_planted_communities() {
        let (g, truth) = planted();
        let q_truth = modularity_with_resolution(&g, &truth, 1.0);
        for scheme in Scheme::ALL {
            let cfg = if scheme == Scheme::BaselineVfColor {
                colored_config()
            } else {
                scheme.config()
            };
            let result = detect_communities(&g, &cfg);
            assert!(
                result.modularity > 0.9 * q_truth,
                "{}: Q {} vs planted {}",
                scheme.name(),
                result.modularity,
                q_truth
            );
            // Dense labels.
            let max = *result.assignment.iter().max().unwrap() as usize;
            assert_eq!(max + 1, result.num_communities, "{}", scheme.name());
        }
    }

    #[test]
    fn reported_modularity_matches_assignment() {
        let (g, _) = planted();
        let result = detect_communities(&g, &colored_config());
        let q = modularity_with_resolution(&g, &result.assignment, 1.0);
        assert!(
            (q - result.modularity).abs() < 1e-12,
            "reported {} vs recomputed {q}",
            result.modularity
        );
    }

    #[test]
    fn last_phase_modularity_equals_final() {
        // The rebuild invariant: Q on the phase graph equals Q of the
        // projected partition on the original graph.
        let (g, _) = planted();
        let result = detect_communities(&g, &colored_config());
        let last_phase_q = result.trace.phases.last().unwrap().end_modularity;
        assert!(
            (last_phase_q - result.modularity).abs() < 1e-9,
            "phase {last_phase_q} vs final {}",
            result.modularity
        );
    }

    #[test]
    fn ring_of_cliques_exact_recovery() {
        let (g, truth) = ring_of_cliques(&CliqueRingConfig {
            num_cliques: 12,
            clique_size: 6,
            ..Default::default()
        });
        for scheme in Scheme::ALL {
            let result = detect_with_scheme(&g, scheme);
            // Each clique ends in exactly one community.
            for c in 0..12u32 {
                let members: Vec<_> = (0..72)
                    .filter(|&v| truth[v] == c)
                    .map(|v| result.assignment[v])
                    .collect();
                assert!(
                    members.windows(2).all(|w| w[0] == w[1]),
                    "{}: clique {c} split",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn baseline_stable_across_thread_counts() {
        // §5.4's stability: baseline (and +VF) outputs do not depend on the
        // number of cores.
        let (g, _) = planted();
        let mut cfg = Scheme::Baseline.config();
        cfg.num_threads = Some(1);
        let r1 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(2);
        let r2 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(4);
        let r4 = detect_communities(&g, &cfg);
        assert_eq!(r1.assignment, r2.assignment);
        assert_eq!(r1.assignment, r4.assignment);
        assert_eq!(r1.modularity, r2.modularity);
        assert_eq!(r1.modularity, r4.modularity);
        assert_eq!(r1.trace.total_iterations(), r4.trace.total_iterations());
    }

    #[test]
    fn colored_scheme_stable_across_thread_counts() {
        // PR 3: with barrier commits + incremental accounting the headline
        // colored scheme joins the §5.4 stability guarantee end to end.
        let (g, _) = planted();
        let mut cfg = colored_config();
        cfg.num_threads = Some(1);
        let r1 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(2);
        let r2 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(8);
        let r8 = detect_communities(&g, &cfg);
        assert!(r1.trace.phases[0].colored, "test must exercise coloring");
        assert_eq!(r1.assignment, r2.assignment);
        assert_eq!(r1.assignment, r8.assignment);
        assert_eq!(r1.modularity.to_bits(), r2.modularity.to_bits());
        assert_eq!(r1.modularity.to_bits(), r8.modularity.to_bits());
        assert_eq!(r1.trace.total_iterations(), r8.trace.total_iterations());
    }

    #[test]
    fn colored_accounting_modes_agree_end_to_end() {
        // The differential contract at driver level: incremental accounting
        // and the full-rescan reference walk the identical trajectory on
        // exact-weight inputs — same assignments, same per-iteration Q.
        let (g, _) = planted();
        let mut cfg = colored_config();
        let inc = detect_communities(&g, &cfg);
        cfg.colored_accounting = crate::config::ColoredAccounting::Rescan;
        let rescan = detect_communities(&g, &cfg);
        assert!(inc.trace.phases[0].colored);
        assert_eq!(inc.assignment, rescan.assignment);
        assert_eq!(inc.modularity.to_bits(), rescan.modularity.to_bits());
        let q_inc: Vec<u64> = inc
            .trace
            .iterations
            .iter()
            .map(|r| r.modularity.to_bits())
            .collect();
        let q_res: Vec<u64> = rescan
            .trace
            .iterations
            .iter()
            .map(|r| r.modularity.to_bits())
            .collect();
        assert_eq!(q_inc, q_res, "per-iteration modularity trajectories differ");
    }

    #[test]
    fn active_sweep_mode_end_to_end() {
        // The driver-level contract for the dirty-vertex schedule: every
        // scheme completes under `SweepMode::Active` with quality within
        // the paper's tolerance of the full-sweep run, and the parallel
        // schemes stay bitwise stable across thread counts.
        let (g, _) = planted();
        for scheme in Scheme::ALL {
            let mut cfg = if scheme == Scheme::BaselineVfColor {
                colored_config()
            } else {
                scheme.config()
            };
            let full = detect_communities(&g, &cfg);
            cfg.sweep_mode = crate::config::SweepMode::Active;
            let active = detect_communities(&g, &cfg);
            assert!(
                active.modularity >= 0.95 * full.modularity,
                "{}: active Q {} vs full Q {}",
                scheme.name(),
                active.modularity,
                full.modularity
            );
            if scheme != Scheme::Serial {
                cfg.num_threads = Some(1);
                let r1 = detect_communities(&g, &cfg);
                cfg.num_threads = Some(8);
                let r8 = detect_communities(&g, &cfg);
                assert_eq!(r1.assignment, r8.assignment, "{}", scheme.name());
                assert_eq!(
                    r1.modularity.to_bits(),
                    r8.modularity.to_bits(),
                    "{}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn geometric_schedule_end_to_end() {
        // The convergence engine at driver level: the geometric per-vertex
        // gate runs through VF, coloring, multi-phase rebuilds, and both
        // sweep modes, keeps quality within tolerance of the fixed
        // baseline, and stays bitwise stable across thread counts.
        let (g, _) = planted();
        let fixed = detect_communities(&g, &colored_config());
        let mut cfg = colored_config().with_geometric_schedule(g.total_weight());
        cfg.sweep_mode = crate::config::SweepMode::Active;
        let sched = detect_communities(&g, &cfg);
        assert!(
            sched.modularity >= 0.95 * fixed.modularity,
            "scheduled Q {} vs fixed Q {}",
            sched.modularity,
            fixed.modularity
        );
        cfg.num_threads = Some(1);
        let r1 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(8);
        let r8 = detect_communities(&g, &cfg);
        assert_eq!(r1.assignment, r8.assignment);
        assert_eq!(r1.modularity.to_bits(), r8.modularity.to_bits());
        assert_eq!(r1.trace.total_iterations(), r8.trace.total_iterations());
    }

    #[test]
    fn vf_scheme_stable_across_thread_counts() {
        let (g, _) = planted();
        let mut cfg = Scheme::BaselineVf.config();
        cfg.num_threads = Some(1);
        let r1 = detect_communities(&g, &cfg);
        cfg.num_threads = Some(3);
        let r3 = detect_communities(&g, &cfg);
        assert_eq!(r1.assignment, r3.assignment);
    }

    #[test]
    fn trace_is_populated() {
        let (g, _) = planted();
        let result = detect_communities(&g, &colored_config());
        assert!(!result.trace.phases.is_empty());
        assert!(!result.trace.iterations.is_empty());
        assert_eq!(
            result.trace.total_iterations(),
            result.trace.iterations.len()
        );
        // Phase 0 was colored under the test cutoff.
        assert!(result.trace.phases[0].colored);
        assert!(result.trace.phases[0].num_colors > 1);
        // Phase sizes shrink.
        let sizes: Vec<_> = result.trace.phases.iter().map(|p| p.num_vertices).collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "phase sizes must shrink: {sizes:?}");
        }
    }

    #[test]
    fn dendrogram_levels_flatten_consistently() {
        let (g, _) = planted();
        let result = detect_communities(&g, &colored_config());
        let flat = result.dendrogram.flatten();
        assert_eq!(flat, result.assignment);
        // Earlier levels are finer (more or equal communities).
        let sizes = result.dendrogram.level_sizes();
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn modularity_improves_over_levels() {
        let (g, _) = planted();
        let result = detect_communities(&g, &colored_config());
        let mut prev = f64::NEG_INFINITY;
        for lvl in 0..result.dendrogram.num_levels() {
            let flat = result.dendrogram.flatten_to_level(lvl);
            let q = modularity_with_resolution(&g, &flat, 1.0);
            assert!(
                q >= prev - 1e-9,
                "level {lvl} modularity {q} below previous {prev}"
            );
            prev = q;
        }
    }

    #[test]
    fn serial_uses_one_thread_pool() {
        // Smoke check: serial scheme completes and never panics inside the
        // forced 1-thread pool, and its trace has no colored phases.
        let (g, _) = planted();
        let result = detect_with_scheme(&g, Scheme::Serial);
        assert!(result.trace.phases.iter().all(|p| !p.colored));
        assert!(result.modularity > 0.5);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let result = detect_communities(&g, &LouvainConfig::default());
        assert!(result.assignment.is_empty());
        assert_eq!(result.num_communities, 0);
        assert_eq!(result.modularity, 0.0);
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let g = CsrGraph::empty(7);
        let result = detect_communities(&g, &LouvainConfig::default());
        assert_eq!(result.assignment, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(result.num_communities, 7);
    }

    #[test]
    fn rebuild_strategies_give_same_quality() {
        let (g, _) = planted();
        let mut cfg = colored_config();
        cfg.rebuild = RebuildStrategy::SortAggregate;
        let a = detect_communities(&g, &cfg);
        cfg.rebuild = RebuildStrategy::LockMap;
        cfg.renumber = RenumberStrategy::ParallelPrefix;
        let b = detect_communities(&g, &cfg);
        assert!((a.modularity - b.modularity).abs() < 0.05);
    }

    #[test]
    fn first_phase_only_coloring_runs() {
        let (g, _) = planted();
        let cfg = LouvainConfig {
            coloring: ColoringSchedule::FirstPhaseOnly,
            coloring_vertex_cutoff: 64,
            ..Scheme::BaselineVfColor.config()
        };
        let result = detect_communities(&g, &cfg);
        assert!(result.trace.phases[0].colored);
        for p in &result.trace.phases[1..] {
            assert!(!p.colored, "only phase 0 may be colored");
        }
        assert!(result.modularity > 0.5);
    }

    #[test]
    fn leiden_refinement_end_to_end() {
        // Refinement never lowers a phase's modularity, the driver reports
        // the refined value, and the whole refined pipeline stays bitwise
        // stable across thread counts — colored and unordered alike.
        let (g, _) = planted();
        for base in [colored_config(), Scheme::Baseline.config()] {
            let plain = detect_communities(&g, &base);
            let mut cfg = base;
            cfg.refine = crate::config::RefineMode::Leiden;
            let refined = detect_communities(&g, &cfg);
            assert!(
                refined.modularity >= 0.999 * plain.modularity,
                "refined Q {} vs plain Q {}",
                refined.modularity,
                plain.modularity
            );
            for p in &refined.trace.phases {
                assert!(
                    p.end_modularity >= p.start_modularity - 1e-12,
                    "phase {} lost modularity under refinement",
                    p.phase
                );
            }
            cfg.num_threads = Some(1);
            let r1 = detect_communities(&g, &cfg);
            cfg.num_threads = Some(2);
            let r2 = detect_communities(&g, &cfg);
            cfg.num_threads = Some(8);
            let r8 = detect_communities(&g, &cfg);
            assert_eq!(r1.assignment, r2.assignment);
            assert_eq!(r1.assignment, r8.assignment);
            assert_eq!(r1.modularity.to_bits(), r2.modularity.to_bits());
            assert_eq!(r1.modularity.to_bits(), r8.modularity.to_bits());
        }
    }

    #[test]
    fn resolution_parameter_changes_granularity() {
        let (g, _) = planted();
        let mut lo = colored_config();
        lo.resolution = 0.2;
        let mut hi = colored_config();
        hi.resolution = 4.0;
        let coarse = detect_communities(&g, &lo);
        let fine = detect_communities(&g, &hi);
        assert!(
            coarse.num_communities <= fine.num_communities,
            "γ=0.2 gave {} communities, γ=4 gave {}",
            coarse.num_communities,
            fine.num_communities
        );
    }
}
